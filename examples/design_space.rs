//! Design-space exploration: hop radius × remote switching × PE count,
//! with the area model's cost side (paper Figs. 14 K-O / 15).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use awb_gcn_repro::accel::{AccelConfig, AreaModel, Design, GcnRunner};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::pubmed().scaled(0.25);
    let data = GeneratedDataset::generate(&spec, 3)?;
    let input = GcnInput::from_dataset(&data)?;
    let area_model = AreaModel::paper_default();

    println!("dataset: {} nodes (Pubmed-like, 1/4 scale)\n", spec.nodes);
    println!(
        "{:>5} {:>10} {:>12} {:>8} {:>12} {:>12} {:>10}",
        "PEs", "design", "cycles", "util", "TQ slots", "CLB total", "CLB in TQ"
    );
    for n_pes in [128usize, 192, 256] {
        for design in [
            Design::Baseline,
            Design::LocalSharing { hop: 1 },
            Design::LocalSharing { hop: 2 },
            Design::LocalPlusRemote { hop: 1 },
            Design::LocalPlusRemote { hop: 2 },
        ] {
            let config = design.apply(AccelConfig::builder().n_pes(n_pes).build()?);
            let outcome = GcnRunner::new(config.clone()).run(&input)?;
            let tq_slots: usize = outcome
                .stats
                .spmms()
                .iter()
                .map(|s| s.total_queue_slots())
                .max()
                .unwrap_or(0);
            let area = area_model.breakdown(&config, tq_slots);
            println!(
                "{:>5} {:>10} {:>12} {:>7.1}% {:>12} {:>12.0} {:>10.0}",
                n_pes,
                design.label(),
                outcome.stats.total_cycles(),
                outcome.stats.avg_utilization() * 100.0,
                tq_slots,
                area.total(),
                area.task_queues,
            );
        }
        println!();
    }
    println!(
        "Rebalancing adds a few percent of logic but shrinks the required TQ\n\
         buffering, often *reducing* total area — the paper's Fig. 14 K-O story."
    );
    Ok(())
}
