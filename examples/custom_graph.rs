//! Bring your own graph: load an adjacency matrix from a Matrix Market
//! file (or build one programmatically) and run it through the simulated
//! accelerator.
//!
//! The synthetic datasets reproduce the paper's statistics, but if you have
//! the real Cora/Citeseer/… as `.mtx` files this is the path to simulate
//! them directly:
//!
//! ```sh
//! cargo run --release --example custom_graph             # built-in demo graph
//! cargo run --release --example custom_graph my_graph.mtx
//! ```

use awb_gcn_repro::accel::{AccelConfig, Design, GcnRunner};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;
use awb_gcn_repro::sparse::io::read_matrix_market;
use awb_gcn_repro::sparse::{Coo, Csr};

fn demo_graph() -> Csr {
    // A two-community graph with a celebrity node bridging them — enough
    // structure for the rebalancer to chew on.
    let n = 512;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let neighbours = if i == 0 { 96 } else { 4 }; // node 0 is the hub
        for k in 1..=neighbours {
            let j = (i + k * 5 + (i / 256) * 131) % n;
            if i != j {
                coo.push(i, j, 1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adjacency = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading adjacency from {path}");
            let file = std::io::BufReader::new(std::fs::File::open(&path)?);
            read_matrix_market(file)?.to_csr()
        }
        None => {
            println!("no .mtx path given; using the built-in demo graph");
            demo_graph()
        }
    };
    println!(
        "graph: {} nodes, {} edges",
        adjacency.rows(),
        adjacency.nnz()
    );

    // Feature dimensions for the GCN around the supplied graph.
    let spec = DatasetSpec::custom("custom", adjacency.rows(), (128, 16, 8), 0.0, 0.05);
    let data = GeneratedDataset::with_adjacency(&spec, adjacency, 17)?;
    let input = GcnInput::from_dataset(&data)?;

    let config = AccelConfig::builder().n_pes(64).build()?;
    for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
        let outcome = GcnRunner::new(design.apply(config.clone())).run(&input)?;
        println!(
            "{:<8} {:>9} cycles  util {:>5.1}%",
            design.label(),
            outcome.stats.total_cycles(),
            outcome.stats.avg_utilization() * 100.0
        );
    }
    let outcome = GcnRunner::new(config).run(&input)?;
    let diff = awb_gcn_repro::accel::verify_against_reference(&input, &outcome, 1e-3)?;
    println!("verified against the software reference (max |diff| {diff:.2e})");
    Ok(())
}
