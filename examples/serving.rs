//! Serving traffic on a fixed graph with the plan/execute split.
//!
//! The production shape the ROADMAP aims at: the graph and model change
//! rarely, feature-matrix requests arrive constantly. This example
//! prepares a Cora-like graph once (paying auto-tuning), then serves a
//! batch of requests against the shared plan and compares the cost with
//! re-running a fresh engine per request. It then switches to the
//! multi-tenant front-end: two tenant graphs through the
//! fingerprint-keyed plan cache (prepare-on-miss) and the admission
//! queue, with per-batch queue-wait/execute latency percentiles.
//!
//! Run: `cargo run --release --example serving`

use awb_gcn_repro::accel::{AccelConfig, Design, GcnRunner, GcnService, ServeOptions};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::cora();
    let data = GeneratedDataset::generate(&spec, 42)?;
    let input = GcnInput::from_dataset(&data)?;
    let config =
        Design::LocalPlusRemote { hop: 2 }.apply(AccelConfig::builder().n_pes(256).build()?);

    // --- Prepare: pay tuning + replay warm-up once per graph ---
    let mut service = GcnService::new(config.clone());
    let report = service.prepare("cora", &input)?;
    println!(
        "prepared cora: {} tuning rounds, {} rows switched, {:.3}s wall",
        report.tuning_rounds, report.total_switches, report.wall_s
    );

    // --- Serve: a batch of 8 requests (fresh features, fixed graph) ---
    let requests: Vec<_> = (0..8)
        .map(|i| {
            GeneratedDataset::with_adjacency(&spec, data.adjacency.clone(), 1000 + i)
                .map(|d| d.features)
        })
        .collect::<Result<_, _>>()?;
    let batch = service.serve("cora", &requests)?;
    println!(
        "served {} requests: mean {:.0} cycles ({:.4} ms @{} MHz), util {:.1}%, {:.1} req/s",
        batch.requests.len(),
        batch.mean_cycles(),
        batch.mean_latency_ms(),
        batch.freq_mhz,
        batch.avg_utilization() * 100.0,
        batch.throughput_rps()
    );

    // --- The counterfactual: a fresh runner per request ---
    let runner = GcnRunner::new(config);
    let cold_inputs: Vec<GcnInput> = requests
        .iter()
        .map(|x1| GcnInput::from_parts(input.a_norm.clone(), x1.clone(), input.weights.clone()))
        .collect::<Result<_, _>>()?;
    let start = Instant::now();
    let mut cold_cycles = 0u64;
    for (cold_input, served) in cold_inputs.iter().zip(&batch.requests) {
        let cold = runner.run(cold_input)?;
        assert_eq!(
            cold.output, served.outcome.output,
            "served outputs are bit-identical to cold runs"
        );
        cold_cycles += cold.stats.total_cycles();
    }
    let cold_wall = start.elapsed().as_secs_f64();
    println!(
        "fresh-engine comparison: {:.0} mean cycles ({:.2}x more), {:.3}s wall vs {:.3}s warm — \
         outputs bit-identical",
        cold_cycles as f64 / requests.len() as f64,
        cold_cycles as f64 / (batch.mean_cycles() * requests.len() as f64),
        cold_wall,
        batch.wall_s
    );

    // --- Multi-tenant: two graphs through the plan cache + queue ---
    // Plans are keyed on the graph's sparsity fingerprint: the first
    // touch per tenant prepares (a miss), later requests hit. The
    // admission queue bounds in-flight work with typed backpressure.
    let tenant_spec = DatasetSpec::cora().with_nodes(spec.nodes / 4);
    let tenant_data = GeneratedDataset::generate(&tenant_spec, 7)?;
    let tenant = GcnInput::from_dataset(&tenant_data)?;
    let mut front = GcnService::with_options(
        Design::LocalPlusRemote { hop: 2 }.apply(AccelConfig::builder().n_pes(256).build()?),
        ServeOptions {
            queue_depth: 16,
            cache_budget_bytes: None,
            deadline: None,
        },
    )?;
    for graph in [&input, &tenant, &input] {
        front.enqueue(graph, graph.x1.clone())?;
    }
    let mixed = front.drain()?;
    let wait = mixed.queue_wait_percentiles();
    let exec = mixed.execute_percentiles();
    let stats = front.cache_stats();
    println!(
        "multi-tenant drain: {} requests, queue-wait p50/p95/p99 {:.2}/{:.2}/{:.2} ms, \
         execute p50/p95/p99 {:.2}/{:.2}/{:.2} ms",
        mixed.requests.len(),
        wait.p50 * 1e3,
        wait.p95 * 1e3,
        wait.p99 * 1e3,
        exec.p50 * 1e3,
        exec.p95 * 1e3,
        exec.p99 * 1e3,
    );
    println!(
        "plan cache: {} hits / {} misses / {} evictions, resident {} bytes ({} plans)",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes, stats.resident_plans
    );
    Ok(())
}
