//! Citation-network inference at the paper's full Cora scale: per-SPMM
//! breakdown, auto-tuning trace, and functional verification.
//!
//! This is the workload class the paper's Fig. 14 A-C evaluates: moderate
//! power-law imbalance where 1–2-hop local sharing recovers most of the
//! lost utilization and remote switching adds the rest.
//!
//! ```sh
//! cargo run --release --example citation_inference
//! ```

use awb_gcn_repro::accel::{AccelConfig, Design, GcnRunner};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::cora(); // full 2708-node scale
    let data = GeneratedDataset::generate(&spec, 7)?;
    let input = GcnInput::from_dataset(&data)?;
    println!(
        "Cora-like graph: {} nodes, adjacency density {:.3}% (target {:.3}%)",
        spec.nodes,
        data.a_density() * 100.0,
        spec.a_density * 100.0
    );

    let config = AccelConfig::builder().n_pes(1024).build()?;
    for design in [
        Design::Baseline,
        Design::LocalSharing { hop: 1 },
        Design::LocalPlusRemote { hop: 2 },
    ] {
        let outcome = GcnRunner::new(design.apply(config.clone())).run(&input)?;
        println!(
            "\n=== {} ===  total {} cycles ({:.3} ms @275 MHz), util {:.1}%",
            design.label(),
            outcome.stats.total_cycles(),
            outcome.latency_ms(275.0),
            outcome.stats.avg_utilization() * 100.0
        );
        for spmm in outcome.stats.spmms() {
            println!(
                "  {:<10}  {:>8} tasks  {:>8} cycles (ideal {:>7}, sync {:>7})  util {:>5.1}%  TQ depth {:>5}  tuned rounds {}",
                spmm.label,
                spmm.total_tasks(),
                spmm.total_cycles(),
                spmm.ideal_cycles(),
                spmm.sync_cycles(),
                spmm.utilization() * 100.0,
                spmm.max_queue_depth(),
                spmm.tuning_rounds(),
            );
        }
        let diff = awb_gcn_repro::accel::verify_against_reference(&input, &outcome, 1e-3)?;
        println!("  verified vs software reference (max |diff| {diff:.2e})");
    }
    Ok(())
}
