//! Quickstart: simulate GCN inference on the AWB-GCN accelerator and
//! compare against the baseline without workload rebalancing.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use awb_gcn_repro::accel::{AccelConfig, Design, GcnRunner};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Cora-like citation graph, scaled to 1024 nodes for a fast demo.
    let spec = DatasetSpec::cora().with_nodes(1024);
    println!(
        "dataset: {} ({} nodes, features {}->{}->{})",
        spec.name, spec.nodes, spec.f1, spec.f2, spec.f3
    );
    let data = GeneratedDataset::generate(&spec, 42)?;
    let input = GcnInput::from_dataset(&data)?;

    let base_config = AccelConfig::builder().n_pes(256).build()?;

    // Baseline: static equal row partition (paper §3).
    let baseline = GcnRunner::new(Design::Baseline.apply(base_config.clone())).run(&input)?;
    // AWB-GCN: 2-hop local sharing + remote switching (paper Design D).
    let awb = GcnRunner::new(Design::LocalPlusRemote { hop: 2 }.apply(base_config)).run(&input)?;

    println!(
        "baseline : {:>9} cycles, {:>5.1}% PE utilization",
        baseline.stats.total_cycles(),
        baseline.stats.avg_utilization() * 100.0
    );
    println!(
        "AWB-GCN  : {:>9} cycles, {:>5.1}% PE utilization",
        awb.stats.total_cycles(),
        awb.stats.avg_utilization() * 100.0
    );
    println!(
        "speedup  : {:.2}x  (latency at 275 MHz: {:.3} ms -> {:.3} ms)",
        baseline.stats.total_cycles() as f64 / awb.stats.total_cycles() as f64,
        baseline.latency_ms(275.0),
        awb.latency_ms(275.0)
    );

    // The simulator computes real values: verify against the software GCN.
    let diff = awb_gcn_repro::accel::verify_against_reference(&input, &awb, 1e-3)?;
    println!("functional check vs software reference: max |diff| = {diff:.2e}");
    Ok(())
}
