//! Clustered-hub rebalancing: the Nell-style worst case.
//!
//! Knowledge graphs concentrate a large share of all edges on a few hub
//! entities that are adjacent in index space. Under the baseline's static
//! block partition this starves most PEs (the paper measures 13%
//! utilization); local sharing alone cannot fix it because whole PE
//! neighbourhoods are overloaded — remote switching must move rows across
//! the array. This example shows that progression and the auto-tuner's
//! convergence trace.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use awb_gcn_repro::accel::{AccelConfig, Design, GcnRunner};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Nell-like graph scaled to 1/8 size, PEs scaled alike so rows/PE (and
    // therefore the balancing problem) matches the paper's setup.
    let spec = DatasetSpec::nell().scaled(1.0 / 8.0);
    let data = GeneratedDataset::generate(&spec, 11)?;
    let input = GcnInput::from_dataset(&data)?;

    let counts = data.adjacency.row_nnz_counts();
    let stats = awb_gcn_repro::sparse::profile::workload_stats(&counts);
    println!(
        "Nell-like graph: {} nodes, {} edges, max row {} vs mean {:.1} (imbalance {:.0}x, Gini {:.2})",
        spec.nodes,
        data.adjacency.nnz(),
        stats.max,
        stats.mean,
        stats.imbalance_factor,
        stats.gini
    );

    let config = AccelConfig::builder().n_pes(128).build()?;
    println!(
        "\n{:<10} {:>12} {:>8} {:>10} {:>14}",
        "design", "cycles", "util", "speedup", "rows switched"
    );
    let mut baseline_cycles = 0u64;
    for design in [
        Design::Baseline,
        Design::LocalSharing { hop: 2 },
        Design::LocalSharing { hop: 3 },
        Design::LocalPlusRemote { hop: 2 },
        Design::LocalPlusRemote { hop: 3 },
    ] {
        let runner = GcnRunner::new(design.apply(config.clone()));
        let outcome = runner.run(&input)?;
        if design == Design::Baseline {
            baseline_cycles = outcome.stats.total_cycles();
        }
        // Count tuning rounds across the A-engine SPMMs as the trace.
        let tuned: usize = outcome
            .stats
            .spmms()
            .iter()
            .map(|s| s.tuning_rounds())
            .sum();
        println!(
            "{:<10} {:>12} {:>7.1}% {:>9.2}x {:>10} rounds",
            design.label(),
            outcome.stats.total_cycles(),
            outcome.stats.avg_utilization() * 100.0,
            baseline_cycles as f64 / outcome.stats.total_cycles() as f64,
            tuned,
        );
    }

    println!(
        "\nNote the paper's §5.2 observation reproduced here: on Nell, plain local\n\
         sharing plateaus (hubs overload whole neighbourhoods) while adding remote\n\
         switching recovers most of the remaining utilization."
    );
    Ok(())
}
