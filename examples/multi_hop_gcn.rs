//! Multi-hop aggregation: `A × (A × (X × W))` chains (paper §2.1/§3.3).
//!
//! Some GCNs aggregate 2-hop neighbourhood information by multiplying with
//! `A` twice per layer. The paper notes its column pipelining extends to
//! this case: "the three multiplications can be pipelined". This example
//! runs a 2-hop layer through the engines and compares the pipelined chain
//! latency against sequential execution.
//!
//! ```sh
//! cargo run --release --example multi_hop_gcn
//! ```

use awb_gcn_repro::accel::pipeline::pipeline_chain;
use awb_gcn_repro::accel::{AccelConfig, Design, FastEngine, SpmmEngine};
use awb_gcn_repro::datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_repro::gcn::GcnInput;
use awb_gcn_repro::sparse::spmm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::cora().with_nodes(1024);
    let data = GeneratedDataset::generate(&spec, 9)?;
    let input = GcnInput::from_dataset(&data)?;
    let config =
        Design::LocalPlusRemote { hop: 2 }.apply(AccelConfig::builder().n_pes(256).build()?);

    // Stage 1: X × W.
    let x_csc = input.x1.to_csc();
    let mut engine_x = FastEngine::new(config.clone());
    let xw = engine_x.run(&x_csc, &input.weights[0], "X*W")?;
    // Stage 2: A × (XW) — first hop.
    let mut engine_a = FastEngine::new(config.clone());
    let hop1 = engine_a.run(&input.a_norm_csc, &xw.c, "A*(XW)")?;
    // Stage 3: A × (A × (XW)) — second hop, reusing the tuned A engine.
    let hop2 = engine_a.run(&input.a_norm_csc, &hop1.c, "A*(A*(XW))")?;

    // Functional check against the reference chain.
    let expect = {
        let xw = spmm::csr_times_dense(&input.x1, &input.weights[0])?;
        let h1 = spmm::csr_times_dense(&input.a_norm, &xw)?;
        spmm::csr_times_dense(&input.a_norm, &h1)?
    };
    let diff = hop2.c.max_abs_diff(&expect)?;
    println!("2-hop layer verified: max |diff| = {diff:.2e}");

    let chain = [
        xw.stats.round_cycles(),
        hop1.stats.round_cycles(),
        hop2.stats.round_cycles(),
    ];
    let stage_refs: Vec<&[u64]> = chain.iter().map(|c| c.as_slice()).collect();
    let pipelined = pipeline_chain(&stage_refs);
    let sequential: u64 = chain.iter().map(|c| c.iter().sum::<u64>()).sum();
    println!(
        "stage cycles: X*W {} | A*(XW) {} | A*(A*(XW)) {}",
        chain[0].iter().sum::<u64>(),
        chain[1].iter().sum::<u64>(),
        chain[2].iter().sum::<u64>(),
    );
    println!(
        "sequential {} cycles -> pipelined {} cycles ({:.1}% saved);\n\
         only one column of each intermediate needs on-chip buffering.",
        sequential,
        pipelined,
        100.0 * (sequential - pipelined) as f64 / sequential as f64
    );
    // The second A multiply reuses the map tuned during the first: no new
    // tuning rounds.
    println!(
        "A-engine tuning rounds: hop1 {} hop2 {} (tuned once, reused)",
        hop1.stats.tuning_rounds(),
        hop2.stats.tuning_rounds()
    );
    Ok(())
}
