//! Offline API-compatible subset of [criterion](https://crates.io/crates/criterion).
//!
//! The container building this repository has no route to a cargo registry,
//! so the real crate cannot be fetched. This stub keeps the repository's
//! `harness = false` criterion benches compiling and producing meaningful
//! plain-text numbers: each `bench_function` is warmed up, then timed over
//! enough iterations to fill a short measurement window, and the mean
//! time per iteration (plus throughput, when set) is printed. There are no
//! statistical analyses, plots, or baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Top-level benchmark driver. [`Default`]-constructed by
/// [`criterion_group!`]; command-line filtering is not implemented.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(300),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        let (measurement_time, sample_size) = (self.measurement_time, self.sample_size);
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            measurement_time,
            sample_size,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let measurement_time = self.measurement_time;
        let sample_size = self.sample_size;
        run_one(&id, None, measurement_time, sample_size, f);
        self
    }
}

/// Work-per-iteration declaration used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes (reported in binary units).
    Bytes(u64),
    /// Iteration processes this many bytes (reported in decimal units).
    BytesDecimal(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
/// Measurement overrides are scoped to the group, as in the real crate.
pub struct BenchmarkGroup<'a> {
    // Held to mirror the real crate: a group exclusively borrows the driver.
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Override the target sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Time one function and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(
            &id,
            self.throughput,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }

    /// End the group (drop would do the same; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`] with
/// the code under test.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window is filled.
    pub fn iter<Output, Routine>(&mut self, mut routine: Routine)
    where
        Routine: FnMut() -> Output,
    {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));

        let target_iterations = (self.measurement_time.as_nanos() / estimate.as_nanos()).max(1);
        let iterations = target_iterations.min(self.sample_size.max(1) as u128 * 1000) as u64;

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn run_one<F>(
    id: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        measurement_time,
        sample_size,
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        eprintln!("  {id}: no measurement (Bencher::iter never called)");
        return;
    }
    let nanos_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / nanos_per_iter * 1e3),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!("{:.3} MB/s", n as f64 / nanos_per_iter * 1e3)
        }
    });
    match rate {
        Some(rate) => eprintln!(
            "  {id}: {:.1} ns/iter ({} iters), {rate}",
            nanos_per_iter, bencher.iterations
        ),
        None => eprintln!(
            "  {id}: {:.1} ns/iter ({} iters)",
            nanos_per_iter, bencher.iterations
        ),
    }
}

/// Collect benchmark functions into a runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
