//! Offline API-compatible subset of [proptest](https://crates.io/crates/proptest).
//!
//! The container building this repository has no route to a cargo registry,
//! so the real crate cannot be fetched. This stub implements exactly the
//! surface the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range, tuple, [`strategy::Just`], and [`collection::vec`] strategies,
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! * deterministic seeding, the `PROPTEST_CASES` environment override, and
//!   failing-seed persistence/replay under `proptest-regressions/`.
//!
//! It does **not** shrink failing inputs; the persisted seed replays the
//! original failing case instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case execution: config, error type, RNG, and the runner loop.

    use std::fmt;

    /// Deterministic splitmix64-based RNG used to generate every case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create an RNG from a case seed.
        pub fn new(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate nearby seeds.
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Per-test configuration. Named `ProptestConfig` in the prelude, like
    /// the real crate.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run (before the `PROPTEST_CASES`
        /// environment override).
        pub cases: u32,
        /// Maximum consecutive `prop_assume!` rejections per case slot.
        pub max_local_rejects: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_local_rejects: 64,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the input is discarded, not a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(message: impl Into<String>) -> Self {
            Self::Fail(message.into())
        }

        /// A rejected (assumed-away) input.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Reject(m) => write!(f, "input rejected: {m}"),
                Self::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// FNV-1a, used to derive a per-test base seed from the test name so
    /// every test explores a distinct deterministic sequence.
    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// `PROPTEST_CASES` acts as a cap on the per-test `cases` config, so CI
    /// can bound total property-test time without editing every test.
    fn effective_cases(config: &Config) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => config.cases.min(n),
            None => config.cases,
        }
    }

    /// Path of the persistence file for a source file, mirroring the real
    /// crate's `proptest-regressions/` convention. `source` is the value of
    /// `file!()` in the test, relative to the workspace root.
    fn persistence_path(source: &str) -> Option<std::path::PathBuf> {
        let root = std::env::var("CARGO_MANIFEST_DIR").ok()?;
        let rel = std::path::Path::new(source).with_extension("txt");
        Some(
            std::path::Path::new(&root)
                .join("proptest-regressions")
                .join(rel),
        )
    }

    /// Parse persisted seeds: lines of the form `cc <16-hex-digit-seed> ...`.
    pub(crate) fn parse_seeds(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                if parts.next()? != "cc" {
                    return None;
                }
                u64::from_str_radix(parts.next()?, 16).ok()
            })
            .collect()
    }

    fn persisted_seeds(source: &str) -> Vec<u64> {
        let Some(path) = persistence_path(source) else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        parse_seeds(&text)
    }

    /// Best-effort persistence of a failing seed so the next run replays it.
    fn persist_failure(source: &str, test_name: &str, seed: u64) {
        let Some(path) = persistence_path(source) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if persisted_seeds(source).contains(&seed) {
            return;
        }
        let header = if path.exists() {
            String::new()
        } else {
            "# Seeds for failing cases discovered by the vendored proptest stub.\n\
             # Format: `cc <16-hex-digit case seed> # <test that failed>`.\n\
             # Replayed (for every test in this file) before random cases.\n"
                .to_string()
        };
        let line = format!("{header}cc {seed:016x} # {test_name}\n");
        use std::io::Write as _;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = file.write_all(line.as_bytes());
        }
    }

    /// Run one property test: replay persisted seeds, then `config.cases`
    /// deterministic random cases. Panics (failing the `#[test]`) on the
    /// first case whose closure returns [`TestCaseError::Fail`].
    pub fn run<F>(source: &str, test_name: &str, config: &Config, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name);
        let replay = persisted_seeds(source);
        let cases = effective_cases(config);
        let mut executed = 0u64;

        let run_seed = |seed: u64, case: &mut F, persist: bool| {
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => true,
                Err(TestCaseError::Reject(_)) => false,
                Err(TestCaseError::Fail(message)) => {
                    if persist {
                        persist_failure(source, test_name, seed);
                    }
                    panic!(
                        "proptest `{test_name}` failed (seed cc {seed:016x}, \
                         persisted in proptest-regressions/): {message}"
                    );
                }
            }
        };

        for seed in replay {
            // Replayed seeds come from a file shared by every test in the
            // source file; a rejection here is expected and not retried.
            run_seed(seed, &mut case, false);
        }

        for index in 0..cases {
            // Each case slot gets its own seed; `prop_assume!` rejections
            // retry the slot with a derived seed a bounded number of times.
            for attempt in 0..config.max_local_rejects.max(1) {
                let seed = base
                    ^ (index as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)
                    ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                if run_seed(seed, &mut case, true) {
                    executed += 1;
                    break;
                }
            }
        }
        // A strategy whose `prop_assume!` rejects every generated input
        // would otherwise go green having tested nothing (the real crate
        // aborts with "too many global rejects" in this situation).
        assert!(
            cases == 0 || executed > 0,
            "proptest `{test_name}`: every generated input was rejected by \
             prop_assume!; the property was never actually tested"
        );
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike the real crate this stub has no value tree / shrinking;
    /// `generate` produces the value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `map_fn`.
        fn prop_map<Output, MapFn>(self, map_fn: MapFn) -> Map<Self, MapFn>
        where
            Self: Sized,
            MapFn: Fn(Self::Value) -> Output,
        {
            Map {
                source: self,
                map_fn,
            }
        }

        /// Use a generated value to pick a second strategy, then draw from it.
        fn prop_flat_map<Inner, FlatMapFn>(self, flat_map_fn: FlatMapFn) -> FlatMap<Self, FlatMapFn>
        where
            Self: Sized,
            Inner: Strategy,
            FlatMapFn: Fn(Self::Value) -> Inner,
        {
            FlatMap {
                source: self,
                flat_map_fn,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<Source, MapFn> {
        source: Source,
        map_fn: MapFn,
    }

    impl<Source, MapFn, Output> Strategy for Map<Source, MapFn>
    where
        Source: Strategy,
        MapFn: Fn(Source::Value) -> Output,
    {
        type Value = Output;

        fn generate(&self, rng: &mut TestRng) -> Output {
            (self.map_fn)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<Source, FlatMapFn> {
        source: Source,
        flat_map_fn: FlatMapFn,
    }

    impl<Source, FlatMapFn, Inner> Strategy for FlatMap<Source, FlatMapFn>
    where
        Source: Strategy,
        Inner: Strategy,
        FlatMapFn: Fn(Source::Value) -> Inner,
    {
        type Value = Inner::Value;

        fn generate(&self, rng: &mut TestRng) -> Inner::Value {
            (self.flat_map_fn)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() - *self.start()) as u64;
                    // Span may be the full domain; saturate instead of +1 overflow.
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    *self.start() + rng.below(span + 1) as $t
                }
            }
        )+};
    }

    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i64).wrapping_sub(*self.start() as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (*self.start() as i64).wrapping_add(rng.below(span + 1) as i64) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            (self.start as f64 + unit * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Uniform choice among boxed alternatives — the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<Value> {
        alternatives: Vec<Box<dyn Strategy<Value = Value>>>,
    }

    impl<Value> Union<Value> {
        /// Build from a non-empty list of alternatives.
        pub fn new(alternatives: Vec<Box<dyn Strategy<Value = Value>>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Self { alternatives }
        }
    }

    impl<Value> Strategy for Union<Value> {
        type Value = Value;

        fn generate(&self, rng: &mut TestRng) -> Value {
            let index = rng.below(self.alternatives.len() as u64) as usize;
            self.alternatives[index].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible length specifications for [`vec`]: an exact `usize`, a
    /// `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(range: ::std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec length range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty vec length range");
            Self {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<Element::Value>` with length drawn from a
    /// [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<Element> {
        element: Element,
        size: SizeRange,
    }

    impl<Element: Strategy> Strategy for VecStrategy<Element> {
        type Value = Vec<Element::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)` — a vector of values drawn
    /// from `element` with length in `len`.
    pub fn vec<Element: Strategy>(
        element: Element,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<Element> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(
                file!(),
                stringify!($name),
                &config,
                |__proptest_rng| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; failure fails the case
/// (with the case's seed in the panic message) rather than panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!(left == right)` without requiring `Debug` on the operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

/// `prop_assert!(left != right)` without requiring `Debug` on the operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discard the current case (not a failure) when its inputs don't satisfy a
/// precondition; the runner retries the slot with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let alternatives: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(alternatives)
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection;
    use crate::strategy::{Just, Strategy};
    use crate::test_runner::{parse_seeds, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let u = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let s = (-8i32..8).generate(&mut rng);
            assert!((-8..8).contains(&s));
            let f = (0.25f64..4.0).generate(&mut rng);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_honor_size_range() {
        let mut rng = TestRng::new(11);
        for _ in 0..500 {
            let exact = collection::vec(0u8..5, 16).generate(&mut rng);
            assert_eq!(exact.len(), 16);
            let ranged = collection::vec(0u8..5, 2..9).generate(&mut rng);
            assert!((2..9).contains(&ranged.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strategy = (1usize..50, 0i32..100).prop_map(|(a, b)| (a, b));
        let a: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..64).map(|_| strategy.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..64).map(|_| strategy.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn flat_map_feeds_outer_value_through() {
        let mut rng = TestRng::new(3);
        let strategy = (1usize..8).prop_flat_map(|n| collection::vec(0usize..n.max(1), n));
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len().max(1)));
        }
    }

    #[test]
    fn oneof_covers_every_alternative() {
        let mut rng = TestRng::new(9);
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn seed_file_parsing_matches_committed_format() {
        let text = "# comment line\n\
                    cc 0000000000000000 # zero\n\
                    cc 9e3779b97f4a7c15 # golden ratio\n\
                    not-a-seed-line\n\
                    cc zzzz # unparseable is skipped\n";
        assert_eq!(parse_seeds(text), vec![0, 0x9e3779b97f4a7c15]);
    }
}
