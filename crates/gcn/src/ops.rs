//! Per-layer operation analysis for the execution-order study (Table 2).
//!
//! Two entry points:
//!
//! * [`table2_analytic`] — derives the MAC counts for both orders from a
//!   [`DatasetSpec`]'s published dimensions and densities alone (this is
//!   how the paper's Table 2 follows from its Table 1),
//! * [`table2_exact`] — counts MACs on actually-generated matrices,
//!   including the measured density of the hidden features `X2`.

use awb_datasets::DatasetSpec;
use awb_sparse::ops_count::{layer_ops_analytic, layer_ops_exact, LayerOps};
use awb_sparse::{Csr, DenseMatrix};

/// Table 2 rows for one dataset: per-layer and total MAC counts under both
/// execution orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOrderAnalysis {
    /// Dataset name.
    pub name: String,
    /// Layer-1 counts.
    pub layer1: LayerOps,
    /// Layer-2 counts.
    pub layer2: LayerOps,
}

impl ExecOrderAnalysis {
    /// Whole-network counts (sum of layers) — the paper's "ALL" row.
    pub fn total(&self) -> LayerOps {
        self.layer1 + self.layer2
    }

    /// Overall ratio of naive to chosen order.
    pub fn speedup_of_xw_first(&self) -> f64 {
        self.total().ratio()
    }
}

/// Analytic Table 2 rows from the spec's published statistics.
///
/// The paper's own X2 density (Table 1) is used for layer 2 since the
/// hidden features are not generated analytically.
pub fn table2_analytic(spec: &DatasetSpec) -> ExecOrderAnalysis {
    ExecOrderAnalysis {
        name: spec.name.clone(),
        layer1: layer_ops_analytic(
            spec.nodes,
            spec.f1,
            spec.f2,
            spec.a_density,
            spec.x1_density,
        ),
        layer2: layer_ops_analytic(
            spec.nodes,
            spec.f2,
            spec.f3,
            spec.a_density,
            spec.x2_density_paper,
        ),
    }
}

/// Exact Table 2 rows from generated matrices.
///
/// `x2` is the actual hidden feature matrix from a forward pass (dense);
/// `f3` is the output feature dimension.
pub fn table2_exact(
    name: &str,
    a_norm: &Csr,
    x1: &Csr,
    f2: usize,
    x2: &DenseMatrix,
    f3: usize,
) -> ExecOrderAnalysis {
    let x2_sparse = x2.to_coo(0.0).to_csr();
    ExecOrderAnalysis {
        name: name.into(),
        layer1: layer_ops_exact(a_norm, x1, f2),
        layer2: layer_ops_exact(a_norm, &x2_sparse, f3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcnInput, GcnModel};
    use awb_datasets::GeneratedDataset;

    /// Paper Table 2 "ALL" row, within rounding of the analytic formulas:
    /// the chosen order wins by large factors on every dataset.
    #[test]
    fn analytic_matches_paper_table2_totals() {
        // (dataset, paper ALL (AxX)xW, paper ALL Ax(XxW)), values in MACs.
        let cases: [(DatasetSpec, f64, f64); 3] = [
            (DatasetSpec::cora(), 62.8e6, 1.33e6),
            (DatasetSpec::citeseer(), 198.0e6, 2.23e6),
            (DatasetSpec::pubmed(), 165.5e6, 18.6e6),
        ];
        for (spec, paper_naive, paper_chosen) in cases {
            let a = table2_analytic(&spec);
            let total = a.total();
            let rel_naive = (total.ax_w as f64 - paper_naive).abs() / paper_naive;
            let rel_chosen = (total.a_xw as f64 - paper_chosen).abs() / paper_chosen;
            assert!(
                rel_naive < 0.10,
                "{}: naive {} vs paper {paper_naive}",
                a.name,
                total.ax_w
            );
            assert!(
                rel_chosen < 0.10,
                "{}: chosen {} vs paper {paper_chosen}",
                a.name,
                total.a_xw
            );
        }
    }

    #[test]
    fn xw_first_always_wins_on_paper_datasets() {
        for d in awb_datasets::PaperDataset::all() {
            let a = table2_analytic(&d.spec());
            assert!(
                a.speedup_of_xw_first() > 1.0,
                "{}: ratio {}",
                a.name,
                a.speedup_of_xw_first()
            );
        }
    }

    #[test]
    fn exact_analysis_on_generated_data() {
        let spec = DatasetSpec::cora().with_nodes(128);
        let data = GeneratedDataset::generate(&spec, 3).unwrap();
        let input = GcnInput::from_dataset(&data).unwrap();
        let fwd = GcnModel::two_layer().forward(&input).unwrap();
        let x2 = fwd.layer_inputs[1].as_ref().unwrap();
        let exact = table2_exact("cora-128", &input.a_norm, &input.x1, 16, x2, 7);
        assert!(exact.layer1.a_xw > 0);
        assert!(exact.layer2.a_xw > 0);
        // The naive order must be costlier on a power-law graph with sparse
        // features and f1 >> f2.
        assert!(exact.total().ax_w > exact.total().a_xw);
    }
}
