//! Software reference for spectral GCN inference (paper Eq. 1):
//!
//! ```text
//! X(l+1) = σ( Ã · X(l) · W(l) ),   Ã = D^(-1/2) (A + I) D^(-1/2)
//! ```
//!
//! This crate provides:
//!
//! * [`normalize::normalize_adjacency`] — the offline Ã computation the
//!   paper performs before inference (§2.1),
//! * [`GcnModel`] / [`GcnInput`] — a 2-layer (or deeper) GCN whose forward
//!   pass is the functional ground truth for the accelerator simulator,
//!   supporting both execution orders of §3.1,
//! * [`ops`] — per-layer MAC counting under both orders (Table 2).
//!
//! # Example
//!
//! ```
//! use awb_datasets::{DatasetSpec, GeneratedDataset};
//! use awb_gcn_model::{GcnInput, GcnModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 3)?;
//! let input = GcnInput::from_dataset(&data)?;
//! let fwd = GcnModel::two_layer().forward(&input)?;
//! assert_eq!(fwd.output.shape(), (128, 7));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
pub mod normalize;
pub mod ops;

pub use model::{Activation, ExecOrder, GcnForward, GcnInput, GcnModel};
