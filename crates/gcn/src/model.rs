use crate::normalize::normalize_adjacency;
use awb_datasets::GeneratedDataset;
use awb_sparse::{spmm, Csc, Csr, DenseMatrix, SparseError};

/// Non-linear activation applied at the end of a GCN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `max(0, x)` — the paper's σ.
    #[default]
    Relu,
    /// Identity (used on the output layer).
    None,
}

impl Activation {
    /// Applies the activation in place.
    pub fn apply(&self, m: &mut DenseMatrix) {
        match self {
            Activation::Relu => m.relu_in_place(),
            Activation::None => {}
        }
    }
}

/// Which association order a layer's `A · X · W` product is evaluated in
/// (paper §3.1, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecOrder {
    /// `A × (X × W)` — the order the paper (and the accelerator) uses.
    #[default]
    XwFirst,
    /// `(A × X) × W` — the naive order, kept for the Table 2 comparison and
    /// as an independent functional cross-check.
    AxFirst,
}

/// Inference-ready input: normalized adjacency (in both compressed forms)
/// plus sparse input features and dense layer weights.
#[derive(Debug, Clone)]
pub struct GcnInput {
    /// Normalized adjacency `Ã`, CSR view.
    pub a_norm: Csr,
    /// Normalized adjacency `Ã`, CSC view (the accelerator's native format).
    pub a_norm_csc: Csc,
    /// Sparse input feature matrix `X1`.
    pub x1: Csr,
    /// Dense weight matrices, one per layer.
    pub weights: Vec<DenseMatrix>,
}

impl GcnInput {
    /// Builds inference input from a generated dataset (normalizes the
    /// adjacency once, offline, as the paper does).
    ///
    /// # Errors
    ///
    /// Propagates [`SparseError`] from normalization (non-square adjacency).
    pub fn from_dataset(data: &GeneratedDataset) -> Result<Self, SparseError> {
        let a_norm = normalize_adjacency(&data.adjacency)?;
        let a_norm_csc = a_norm.to_csc();
        Ok(GcnInput {
            a_norm,
            a_norm_csc,
            x1: data.features.clone(),
            weights: data.weights.clone(),
        })
    }

    /// Builds input from pre-normalized parts (used by tests and custom
    /// pipelines).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a_norm` is not square,
    /// its side differs from `x1.rows()`, or consecutive weight shapes do
    /// not chain (`x1.cols() → w1.rows()`, `w1.cols() → w2.rows()`, …).
    pub fn from_parts(
        a_norm: Csr,
        x1: Csr,
        weights: Vec<DenseMatrix>,
    ) -> Result<Self, SparseError> {
        if a_norm.rows() != a_norm.cols() || a_norm.rows() != x1.rows() {
            return Err(SparseError::DimensionMismatch {
                left: a_norm.shape(),
                right: x1.shape(),
                op: "gcn_input",
            });
        }
        let mut f_in = x1.cols();
        for w in &weights {
            if w.rows() != f_in {
                return Err(SparseError::DimensionMismatch {
                    left: (f_in, f_in),
                    right: w.shape(),
                    op: "gcn_input_weights",
                });
            }
            f_in = w.cols();
        }
        let a_norm_csc = a_norm.to_csc();
        Ok(GcnInput {
            a_norm,
            a_norm_csc,
            x1,
            weights,
        })
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.a_norm.rows()
    }

    /// Number of layers (= number of weight matrices).
    pub fn layers(&self) -> usize {
        self.weights.len()
    }
}

/// Result of a forward pass, retaining per-layer inputs for profiling and
/// for driving the accelerator layer by layer.
#[derive(Debug, Clone)]
pub struct GcnForward {
    /// Dense input feature matrix of each layer *after* the previous
    /// layer's activation: `layer_inputs[0]` is dense `X1`,
    /// `layer_inputs[1]` is `X2`, … (length = layers).
    ///
    /// For layer 0 only the sparse `X1` is stored in [`GcnInput`]; this
    /// dense copy is omitted when the feature matrix is too large to
    /// materialize (entry is `None`).
    pub layer_inputs: Vec<Option<DenseMatrix>>,
    /// Densities of each layer's input feature matrix (`x_density[0]` = X1).
    pub x_density: Vec<f64>,
    /// Final output features.
    pub output: DenseMatrix,
}

impl GcnForward {
    /// Density of the hidden feature matrix `X2` (None for 1-layer nets) —
    /// compared against the paper's Table 1 "X2" row.
    pub fn x2_density(&self) -> Option<f64> {
        self.x_density.get(1).copied()
    }
}

/// A multi-layer spectral GCN (the paper's networks are 2-layer with ReLU
/// between layers and no activation after the last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcnModel {
    activations: Vec<Activation>,
    order: ExecOrder,
    /// Threshold below which the dense per-layer inputs are materialized in
    /// [`GcnForward::layer_inputs`] (entries count).
    materialize_limit: usize,
}

impl Default for GcnModel {
    fn default() -> Self {
        GcnModel::two_layer()
    }
}

impl GcnModel {
    /// The paper's 2-layer network: ReLU after layer 1, no activation after
    /// layer 2, `A × (X × W)` order.
    pub fn two_layer() -> Self {
        GcnModel {
            activations: vec![Activation::Relu, Activation::None],
            order: ExecOrder::XwFirst,
            materialize_limit: 64 << 20,
        }
    }

    /// A deeper network: ReLU after every layer except the last.
    pub fn with_layers(n_layers: usize) -> Self {
        assert!(n_layers > 0, "at least one layer");
        let mut activations = vec![Activation::Relu; n_layers];
        activations[n_layers - 1] = Activation::None;
        GcnModel {
            activations,
            order: ExecOrder::XwFirst,
            materialize_limit: 64 << 20,
        }
    }

    /// Overrides the execution order.
    pub fn with_order(mut self, order: ExecOrder) -> Self {
        self.order = order;
        self
    }

    /// Per-layer activations.
    pub fn activations(&self) -> &[Activation] {
        &self.activations
    }

    /// Configured execution order.
    pub fn order(&self) -> ExecOrder {
        self.order
    }

    /// Runs the forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `input.weights`
    /// length differs from the model's layer count or shapes do not chain.
    pub fn forward(&self, input: &GcnInput) -> Result<GcnForward, SparseError> {
        if input.weights.len() != self.activations.len() {
            return Err(SparseError::DimensionMismatch {
                left: (input.weights.len(), 0),
                right: (self.activations.len(), 0),
                op: "gcn_forward_layers",
            });
        }
        let mut layer_inputs: Vec<Option<DenseMatrix>> = Vec::with_capacity(self.activations.len());
        let mut x_density: Vec<f64> = Vec::with_capacity(self.activations.len());

        // Layer 1 input is the sparse X1.
        x_density.push(input.x1.density());
        let n_entries = input.x1.rows() * input.x1.cols();
        layer_inputs.push(if n_entries <= self.materialize_limit {
            Some(input.x1.to_dense())
        } else {
            None
        });

        let mut x = self.layer_forward_sparse(&input.a_norm, &input.x1, &input.weights[0])?;
        self.activations[0].apply(&mut x);

        for (l, w) in input.weights.iter().enumerate().skip(1) {
            x_density.push(x.density());
            layer_inputs.push(Some(x.clone()));
            let mut next = self.layer_forward_dense(&input.a_norm, &x, w)?;
            self.activations[l].apply(&mut next);
            x = next;
        }
        Ok(GcnForward {
            layer_inputs,
            x_density,
            output: x,
        })
    }

    /// One layer with sparse X (layer 1): `act` is applied by the caller.
    fn layer_forward_sparse(
        &self,
        a: &Csr,
        x: &Csr,
        w: &DenseMatrix,
    ) -> Result<DenseMatrix, SparseError> {
        match self.order {
            ExecOrder::XwFirst => {
                let xw = spmm::csr_times_dense(x, w)?;
                spmm::csr_times_dense(a, &xw)
            }
            ExecOrder::AxFirst => {
                let ax = spmm::csr_times_csr(a, x)?;
                ax.matmul(w)
            }
        }
    }

    /// One layer with dense X (layers ≥ 2).
    fn layer_forward_dense(
        &self,
        a: &Csr,
        x: &DenseMatrix,
        w: &DenseMatrix,
    ) -> Result<DenseMatrix, SparseError> {
        match self.order {
            ExecOrder::XwFirst => {
                let xw = x.matmul(w)?;
                spmm::csr_times_dense(a, &xw)
            }
            ExecOrder::AxFirst => {
                let ax = spmm::csr_times_dense(a, x)?;
                ax.matmul(w)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_datasets::{DatasetSpec, GeneratedDataset};

    fn tiny_input() -> GcnInput {
        let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(96), 11).unwrap();
        GcnInput::from_dataset(&data).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let input = tiny_input();
        let fwd = GcnModel::two_layer().forward(&input).unwrap();
        assert_eq!(fwd.output.shape(), (96, 7));
        assert_eq!(fwd.layer_inputs.len(), 2);
        assert_eq!(fwd.x_density.len(), 2);
        assert_eq!(fwd.layer_inputs[1].as_ref().unwrap().shape(), (96, 16));
    }

    #[test]
    fn both_orders_agree() {
        let input = tiny_input();
        let a = GcnModel::two_layer()
            .with_order(ExecOrder::XwFirst)
            .forward(&input)
            .unwrap();
        let b = GcnModel::two_layer()
            .with_order(ExecOrder::AxFirst)
            .forward(&input)
            .unwrap();
        assert!(
            a.output.approx_eq(&b.output, 1e-3),
            "max diff {}",
            a.output.max_abs_diff(&b.output).unwrap()
        );
    }

    #[test]
    fn hidden_density_in_plausible_range() {
        let input = tiny_input();
        let fwd = GcnModel::two_layer().forward(&input).unwrap();
        let d = fwd.x2_density().unwrap();
        // ReLU of positively-biased features: well above half, below 1.
        assert!(d > 0.4 && d <= 1.0, "x2 density {d}");
    }

    #[test]
    fn relu_applied_between_layers() {
        let input = tiny_input();
        let fwd = GcnModel::two_layer().forward(&input).unwrap();
        let x2 = fwd.layer_inputs[1].as_ref().unwrap();
        assert!(x2.as_slice().iter().all(|&v| v >= 0.0));
        // Output layer has no activation: negatives should exist.
        assert!(fwd.output.as_slice().iter().any(|&v| v < 0.0));
    }

    #[test]
    fn layer_count_mismatch_rejected() {
        let input = tiny_input();
        let model = GcnModel::with_layers(3);
        assert!(model.forward(&input).is_err());
    }

    #[test]
    fn from_parts_validates_chaining() {
        let input = tiny_input();
        // Swap the weights: shapes no longer chain.
        let res = GcnInput::from_parts(
            input.a_norm.clone(),
            input.x1.clone(),
            vec![input.weights[1].clone(), input.weights[0].clone()],
        );
        assert!(res.is_err());
    }

    #[test]
    fn from_parts_validates_square() {
        let input = tiny_input();
        let rect = awb_sparse::Csr::empty(4, 5);
        assert!(GcnInput::from_parts(rect, input.x1.clone(), vec![]).is_err());
    }

    #[test]
    fn with_layers_builds_activation_chain() {
        let m = GcnModel::with_layers(3);
        assert_eq!(
            m.activations(),
            &[Activation::Relu, Activation::Relu, Activation::None]
        );
    }

    #[test]
    fn deeper_network_runs() {
        let data =
            GeneratedDataset::generate(&DatasetSpec::custom("t", 64, (32, 8, 8), 0.05, 0.2), 2)
                .unwrap();
        // Build 3 chained weights 32->8->8->4.
        let mut weights = data.weights.clone(); // 32x8, 8x8... custom gives f2=8,f3=8
        let w3 = DenseMatrix::from_vec(8, 4, vec![0.1; 32]).unwrap();
        weights.push(w3);
        let a_norm = crate::normalize::normalize_adjacency(&data.adjacency).unwrap();
        let input = GcnInput::from_parts(a_norm, data.features.clone(), weights).unwrap();
        let fwd = GcnModel::with_layers(3).forward(&input).unwrap();
        assert_eq!(fwd.output.shape(), (64, 4));
        assert_eq!(fwd.x_density.len(), 3);
    }
}
