//! Symmetric adjacency normalization (paper §2.1).
//!
//! `Ã = D^(-1/2) (A + I) D^(-1/2)` with `D_ii = Σ_j (A + I)_ij`. The paper
//! computes this offline once; `Ã` then stays constant for all layers and
//! all inference runs — which is what makes the accelerator's auto-tuned
//! configuration reusable.

use awb_sparse::{Coo, Csr, SparseError};

/// Computes `Ã = D^(-1/2) (A + I) D^(-1/2)` from a raw adjacency matrix.
///
/// Self-loops already present in `a` are merged with the added identity
/// (the entry is clamped to 1 before normalization).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a` is not square.
///
/// # Example
///
/// ```
/// use awb_sparse::Coo;
/// use awb_gcn_model::normalize::normalize_adjacency;
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let mut a = Coo::new(2, 2);
/// a.push(0, 1, 1.0)?;
/// a.push(1, 0, 1.0)?;
/// let norm = normalize_adjacency(&a.to_csr())?;
/// // Each node has degree 2 (neighbour + self-loop): entries are 1/2.
/// assert!((norm.to_dense().get(0, 1) - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn normalize_adjacency(a: &Csr) -> Result<Csr, SparseError> {
    if a.rows() != a.cols() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "normalize_adjacency",
        });
    }
    let n = a.rows();
    // Row sums of (A + I), treating any existing entry as unit weight.
    let mut degree = vec![1.0f64; n]; // the +I contribution
    let mut has_self_loop = vec![false; n];
    for (r, c, _) in a.iter() {
        if r == c {
            has_self_loop[r] = true; // merged with identity, not double-counted
        } else {
            degree[r] += 1.0;
        }
    }
    let inv_sqrt: Vec<f64> = degree.iter().map(|d| 1.0 / d.sqrt()).collect();
    let mut out = Coo::new(n, n);
    out.reserve(a.nnz() + n);
    for (r, c, _) in a.iter() {
        if r != c {
            out.push(r, c, (inv_sqrt[r] * inv_sqrt[c]) as f32)?;
        }
    }
    for (i, inv) in inv_sqrt.iter().enumerate() {
        out.push(i, i, (inv * inv) as f32)?;
    }
    Ok(out.to_csr())
}

/// Row sums of a normalized adjacency — used in tests: for `Ã` derived from
/// a regular graph they are ≈ 1.
pub fn row_sums(m: &Csr) -> Vec<f64> {
    (0..m.rows())
        .map(|r| m.row_entries(r).map(|(_, v)| v as f64).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_sparse::Coo;

    fn path_graph(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n - 1 {
            a.push(i, i + 1, 1.0).unwrap();
            a.push(i + 1, i, 1.0).unwrap();
        }
        a.to_csr()
    }

    #[test]
    fn rejects_non_square() {
        let a = Coo::new(2, 3).to_csr();
        assert!(normalize_adjacency(&a).is_err());
    }

    #[test]
    fn isolated_node_gets_unit_self_loop() {
        let a = Coo::new(3, 3).to_csr(); // empty graph
        let norm = normalize_adjacency(&a).unwrap();
        let d = norm.to_dense();
        for i in 0..3 {
            assert!((d.get(i, i) - 1.0).abs() < 1e-6);
        }
        assert_eq!(norm.nnz(), 3);
    }

    #[test]
    fn two_node_clique_values() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 1.0).unwrap();
        a.push(1, 0, 1.0).unwrap();
        let d = normalize_adjacency(&a.to_csr()).unwrap().to_dense();
        // degrees 2 and 2 -> off-diagonal 1/2, diagonal 1/2.
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!(
                (d.get(r, c) - 0.5).abs() < 1e-6,
                "({r},{c}) = {}",
                d.get(r, c)
            );
        }
    }

    #[test]
    fn existing_self_loops_not_double_counted() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0).unwrap(); // explicit self loop
        a.push(0, 1, 1.0).unwrap();
        a.push(1, 0, 1.0).unwrap();
        let norm = normalize_adjacency(&a.to_csr()).unwrap();
        // Node 0: neighbours = {1}, self-loop merged -> degree 2.
        let d = norm.to_dense();
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalization_is_symmetric_for_symmetric_input() {
        let norm = normalize_adjacency(&path_graph(6)).unwrap().to_dense();
        for r in 0..6 {
            for c in 0..6 {
                assert!((norm.get(r, c) - norm.get(c, r)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn regular_graph_rows_sum_to_one() {
        // Ring graph: every node has degree 3 including self-loop.
        let n = 8;
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, (i + 1) % n, 1.0).unwrap();
            a.push((i + 1) % n, i, 1.0).unwrap();
        }
        let norm = normalize_adjacency(&a.to_csr()).unwrap();
        for s in row_sums(&norm) {
            assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
        }
    }

    #[test]
    fn values_bounded_by_one() {
        let norm = normalize_adjacency(&path_graph(10)).unwrap();
        for (_, _, v) in norm.iter() {
            assert!(v > 0.0 && v <= 1.0);
        }
    }
}
