use crate::workload::SpmmWorkload;

/// Analytic GPU latency model (Tesla P100 + cuSPARSE through PyTorch).
///
/// Per SPMM kernel: a fixed launch/setup overhead plus the MACs at a
/// throughput that depends on the sparse operand's density — cuSPARSE on a
/// near-dense operand behaves like a dense kernel (high rate), whereas an
/// ultra-sparse operand is memory-bound (low rate). Calibrated against the
/// paper's Table 3 GPU column (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Fixed per-kernel overhead in ms (launch + format handling).
    pub kernel_overhead_ms: f64,
    /// Throughput on ultra-sparse operands, MACs per second.
    pub sparse_rate: f64,
    /// Throughput on near-dense operands, MACs per second.
    pub dense_rate: f64,
    /// Density above which an operand counts as near-dense.
    pub dense_threshold: f64,
}

impl GpuModel {
    /// Calibration from the paper's Table 3 (see module docs).
    pub fn paper_calibrated() -> Self {
        GpuModel {
            kernel_overhead_ms: 0.35,
            sparse_rate: 2.2e9,
            dense_rate: 6.0e9,
            dense_threshold: 0.3,
        }
    }

    /// Predicted inference latency in milliseconds for a workload.
    pub fn latency_ms(&self, spmms: &[SpmmWorkload]) -> f64 {
        spmms
            .iter()
            .map(|s| {
                let rate = if s.density > self.dense_threshold {
                    self.dense_rate
                } else {
                    self.sparse_rate
                };
                self.kernel_overhead_ms + s.ops as f64 / rate * 1e3
            })
            .sum()
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_spmms;
    use awb_datasets::DatasetSpec;

    /// Within ~2.2× of every Table 3 GPU row; in particular the model
    /// reproduces the paper's finding that the GPU beats the CPU everywhere
    /// but still trails the accelerator by orders of magnitude.
    #[test]
    fn tracks_paper_table3_gpu_column() {
        let cases = [
            (DatasetSpec::cora(), 1.78),
            (DatasetSpec::citeseer(), 2.09),
            (DatasetSpec::pubmed(), 7.71),
            (DatasetSpec::nell(), 130.65),
            (DatasetSpec::reddit(), 2.43e3),
        ];
        let model = GpuModel::paper_calibrated();
        for (spec, paper_ms) in cases {
            let pred = model.latency_ms(&workload_spmms(&spec));
            let ratio = pred / paper_ms;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: predicted {pred:.2} ms vs paper {paper_ms} ms",
                spec.name
            );
        }
    }

    #[test]
    fn gpu_beats_cpu_model_on_every_dataset() {
        let gpu = GpuModel::paper_calibrated();
        let cpu = crate::CpuModel::paper_calibrated();
        for d in awb_datasets::PaperDataset::all() {
            let w = workload_spmms(&d.spec());
            assert!(
                gpu.latency_ms(&w) < cpu.latency_ms(&w),
                "{}: GPU should win",
                d.name()
            );
        }
    }

    #[test]
    fn dense_operands_run_faster() {
        let sparse = [SpmmWorkload {
            label: "s",
            ops: 1_000_000_000,
            density: 0.001,
        }];
        let dense = [SpmmWorkload {
            label: "d",
            ops: 1_000_000_000,
            density: 0.8,
        }];
        let m = GpuModel::paper_calibrated();
        assert!(m.latency_ms(&dense) < m.latency_ms(&sparse));
    }

    #[test]
    fn empty_workload_is_free() {
        assert_eq!(GpuModel::paper_calibrated().latency_ms(&[]), 0.0);
    }
}
