use crate::workload::SpmmWorkload;
use awb_gcn_model::{GcnInput, GcnModel};

/// Analytic CPU latency model (Xeon E5-2698 v4 + PyTorch).
///
/// A power-law fit `t_ms = c · ops^p` against the paper's own Table 3
/// (Cora 3.9 ms @ 1.33 M MACs … Reddit 10.8 s @ 6.6 G MACs) gives
/// `p ≈ 0.93`: PyTorch's per-op cost falls slowly with scale but stays two
/// orders of magnitude above the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Scale coefficient (ms per ops^p).
    pub coefficient: f64,
    /// Power-law exponent.
    pub exponent: f64,
}

impl CpuModel {
    /// Calibration from the paper's Table 3 (see module docs).
    pub fn paper_calibrated() -> Self {
        CpuModel {
            coefficient: 7.7e-6,
            exponent: 0.931,
        }
    }

    /// Predicted inference latency in milliseconds for a workload.
    pub fn latency_ms(&self, spmms: &[SpmmWorkload]) -> f64 {
        let ops: u64 = spmms.iter().map(|s| s.ops).sum();
        if ops == 0 {
            return 0.0;
        }
        self.coefficient * (ops as f64).powf(self.exponent)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::paper_calibrated()
    }
}

/// Actually measures this machine's software GCN forward pass (Rust
/// reference implementation), returning milliseconds.
///
/// This is the reproduction's *sanity path*: absolute numbers depend on the
/// host, so Table 3 reports the calibrated model, with this measurement
/// available for cross-checking orders of magnitude.
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn measure_software_gcn_ms(input: &GcnInput) -> Result<f64, awb_sparse::SparseError> {
    let model = GcnModel::with_layers(input.layers());
    let start = std::time::Instant::now();
    let _ = model.forward(input)?;
    Ok(start.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload_spmms;
    use awb_datasets::DatasetSpec;

    /// The calibrated model lands within ~45% of every Table 3 CPU row —
    /// good enough to preserve the two-orders-of-magnitude gap to the
    /// accelerator.
    #[test]
    fn tracks_paper_table3_cpu_column() {
        let cases = [
            (DatasetSpec::cora(), 3.90),
            (DatasetSpec::citeseer(), 4.33),
            (DatasetSpec::pubmed(), 34.15),
            (DatasetSpec::nell(), 1.61e3),
            (DatasetSpec::reddit(), 1.08e4),
        ];
        let model = CpuModel::paper_calibrated();
        for (spec, paper_ms) in cases {
            let pred = model.latency_ms(&workload_spmms(&spec));
            let ratio = pred / paper_ms;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: predicted {pred:.2} ms vs paper {paper_ms} ms",
                spec.name
            );
        }
    }

    #[test]
    fn monotone_in_ops() {
        let model = CpuModel::paper_calibrated();
        let small = model.latency_ms(&workload_spmms(&DatasetSpec::cora()));
        let large = model.latency_ms(&workload_spmms(&DatasetSpec::reddit()));
        assert!(large > small * 100.0);
    }

    #[test]
    fn zero_workload_zero_latency() {
        assert_eq!(CpuModel::paper_calibrated().latency_ms(&[]), 0.0);
    }

    #[test]
    fn measured_path_returns_positive() {
        use awb_datasets::GeneratedDataset;
        let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 2).unwrap();
        let input = GcnInput::from_dataset(&data).unwrap();
        let ms = measure_software_gcn_ms(&input).unwrap();
        assert!(ms > 0.0);
    }
}
