//! Cross-platform latency/energy models for the paper's Table 3.
//!
//! The paper compares its accelerator against an Intel Xeon E5-2698 v4
//! (PyTorch) and an NVIDIA Tesla P100 (cuSPARSE), plus an EIE-derived FPGA
//! reference. Neither device is available here, so this crate provides
//! **analytic latency models calibrated against the paper's own Table 3**
//! (see `DESIGN.md` for the calibration): what matters for the reproduction
//! is the *ratio* between platforms, which these models preserve.
//!
//! * [`CpuModel`] — power-law fit `t = c · ops^p` capturing PyTorch's
//!   sub-linear efficiency growth with problem size,
//! * [`GpuModel`] — per-kernel launch overhead plus ops at a
//!   density-dependent throughput (cuSPARSE is far more efficient on
//!   near-dense operands),
//! * [`workload_spmms`] — the per-SPMM `(ops, density)` decomposition both
//!   models consume, derived from a [`DatasetSpec`]'s Table 1 statistics,
//! * [`PlatformResult`] / [`Platform`] — Table 3 row assembly.
//!
//! An in-process measured CPU path ([`measure_software_gcn_ms`]) is
//! provided as a sanity check; the analytic models are what the Table 3
//! bench reports, for reproducibility across machines.
//!
//! [`DatasetSpec`]: awb_datasets::DatasetSpec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod gpu;
mod report;
mod workload;

pub use cpu::{measure_software_gcn_ms, CpuModel};
pub use gpu::GpuModel;
pub use report::{Platform, PlatformResult, SpeedupSummary};
pub use workload::{workload_spmms, SpmmWorkload};
