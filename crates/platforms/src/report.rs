//! Table 3 row assembly and speedup summaries.

use awb_accel::EnergyModel;

/// The five platforms of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Xeon E5-2698 v4, PyTorch.
    Cpu,
    /// NVIDIA Tesla P100, PyTorch + cuSPARSE.
    Gpu,
    /// EIE-derived FPGA reference (285 MHz).
    EieLike,
    /// The §3 baseline accelerator without rebalancing (275 MHz).
    FpgaBaseline,
    /// AWB-GCN with local sharing + remote switching (275 MHz).
    AwbGcn,
}

impl Platform {
    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::Cpu => "Intel Xeon E5-2698V4",
            Platform::Gpu => "NVIDIA Tesla P100",
            Platform::EieLike => "EIE-like: VCU118 FPGA",
            Platform::FpgaBaseline => "Baseline: VCU118 FPGA",
            Platform::AwbGcn => "AWB-GCN: VCU118 FPGA",
        }
    }

    /// Frequency label for the table.
    pub fn freq_label(&self) -> &'static str {
        match self {
            Platform::Cpu => "2.2-3.6 GHz",
            Platform::Gpu => "1328-1481 MHz",
            Platform::EieLike => "285 MHz",
            Platform::FpgaBaseline | Platform::AwbGcn => "275 MHz",
        }
    }

    /// The platform's energy model.
    pub fn energy_model(&self) -> EnergyModel {
        match self {
            Platform::Cpu => EnergyModel::cpu(),
            Platform::Gpu => EnergyModel::gpu(),
            _ => EnergyModel::fpga(),
        }
    }
}

/// One Table 3 cell pair: latency and energy efficiency on one platform
/// for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformResult {
    /// Which platform.
    pub platform: Platform,
    /// Dataset name.
    pub dataset: String,
    /// Inference latency, milliseconds.
    pub latency_ms: f64,
    /// Graph inferences per kilojoule.
    pub inferences_per_kj: f64,
}

impl PlatformResult {
    /// Builds a result, deriving energy from the platform's power model.
    pub fn new(platform: Platform, dataset: &str, latency_ms: f64) -> Self {
        PlatformResult {
            platform,
            dataset: dataset.to_owned(),
            latency_ms,
            inferences_per_kj: platform.energy_model().inferences_per_kj(latency_ms),
        }
    }
}

/// Arithmetic-mean speedups of AWB-GCN over each comparison platform —
/// the paper's headline "246.7×, 78.9×, 2.7×" numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSummary {
    /// Mean speedup over the CPU.
    pub vs_cpu: f64,
    /// Mean speedup over the GPU.
    pub vs_gpu: f64,
    /// Mean speedup over the FPGA baseline.
    pub vs_baseline: f64,
    /// Mean speedup over the EIE-like reference.
    pub vs_eie: f64,
}

impl SpeedupSummary {
    /// Computes the summary from per-dataset results. Every slice must be
    /// ordered identically by dataset and non-empty.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or any latency is non-positive.
    pub fn from_results(
        awb: &[PlatformResult],
        cpu: &[PlatformResult],
        gpu: &[PlatformResult],
        baseline: &[PlatformResult],
        eie: &[PlatformResult],
    ) -> Self {
        let mean_ratio = |others: &[PlatformResult]| -> f64 {
            assert_eq!(others.len(), awb.len(), "result slices must align");
            assert!(!awb.is_empty(), "need at least one dataset");
            others
                .iter()
                .zip(awb)
                .map(|(o, a)| {
                    assert!(a.latency_ms > 0.0 && o.latency_ms > 0.0);
                    o.latency_ms / a.latency_ms
                })
                .sum::<f64>()
                / awb.len() as f64
        };
        SpeedupSummary {
            vs_cpu: mean_ratio(cpu),
            vs_gpu: mean_ratio(gpu),
            vs_baseline: mean_ratio(baseline),
            vs_eie: mean_ratio(eie),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(p: Platform, ms: f64) -> PlatformResult {
        PlatformResult::new(p, "x", ms)
    }

    #[test]
    fn energy_derived_from_power_model() {
        let r = result(Platform::AwbGcn, 0.011);
        // 38 W × 11 µs ≈ 0.418 mJ -> ~2.39e6 inf/kJ (paper: 2.38e6).
        assert!((r.inferences_per_kj - 2.38e6).abs() / 2.38e6 < 0.02);
    }

    #[test]
    fn names_and_freqs() {
        assert!(Platform::Cpu.name().contains("Xeon"));
        assert_eq!(Platform::EieLike.freq_label(), "285 MHz");
        assert_eq!(Platform::AwbGcn.freq_label(), "275 MHz");
    }

    #[test]
    fn speedup_summary_means() {
        let awb = vec![result(Platform::AwbGcn, 1.0), result(Platform::AwbGcn, 2.0)];
        let cpu = vec![result(Platform::Cpu, 100.0), result(Platform::Cpu, 400.0)];
        let gpu = vec![result(Platform::Gpu, 10.0), result(Platform::Gpu, 20.0)];
        let base = vec![
            result(Platform::FpgaBaseline, 3.0),
            result(Platform::FpgaBaseline, 6.0),
        ];
        let eie = vec![
            result(Platform::EieLike, 2.0),
            result(Platform::EieLike, 4.0),
        ];
        let s = SpeedupSummary::from_results(&awb, &cpu, &gpu, &base, &eie);
        assert_eq!(s.vs_cpu, 150.0);
        assert_eq!(s.vs_gpu, 10.0);
        assert_eq!(s.vs_baseline, 3.0);
        assert_eq!(s.vs_eie, 2.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let awb = vec![result(Platform::AwbGcn, 1.0)];
        let empty: Vec<PlatformResult> = Vec::new();
        SpeedupSummary::from_results(&awb, &empty, &empty, &empty, &empty);
    }
}
