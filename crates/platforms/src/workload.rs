use awb_datasets::DatasetSpec;

/// One SPMM's workload as the platform models see it: scalar MAC count and
/// the density of the sparse operand (which determines how efficiently a
/// library kernel can run it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmmWorkload {
    /// Stage label (`"L1:X*W"` etc.).
    pub label: &'static str,
    /// Multiply-accumulate operations.
    pub ops: u64,
    /// Density of the sparse operand.
    pub density: f64,
}

/// Decomposes a 2-layer GCN into its four SPMMs analytically from the
/// spec's published statistics (paper Tables 1 → 2).
///
/// Uses the chosen order `A × (X × W)`:
/// `ops(X×W) = nnz(X)·f_out`, `ops(A×XW) = nnz(A)·f_out`.
///
/// # Example
///
/// ```
/// use awb_datasets::DatasetSpec;
/// use awb_platforms::workload_spmms;
///
/// let spmms = workload_spmms(&DatasetSpec::cora());
/// let total: u64 = spmms.iter().map(|s| s.ops).sum();
/// // Paper Table 2 "ALL" for Cora: 1.33M MACs.
/// assert!((total as f64 - 1.33e6).abs() / 1.33e6 < 0.05);
/// ```
pub fn workload_spmms(spec: &DatasetSpec) -> Vec<SpmmWorkload> {
    let n = spec.nodes as f64;
    let nnz_a = n * n * spec.a_density;
    let nnz_x1 = n * spec.f1 as f64 * spec.x1_density;
    let nnz_x2 = n * spec.f2 as f64 * spec.x2_density_paper;
    vec![
        SpmmWorkload {
            label: "L1:X*W",
            ops: (nnz_x1 * spec.f2 as f64).round() as u64,
            density: spec.x1_density,
        },
        SpmmWorkload {
            label: "L1:A*(XW)",
            ops: (nnz_a * spec.f2 as f64).round() as u64,
            density: spec.a_density,
        },
        SpmmWorkload {
            label: "L2:X*W",
            ops: (nnz_x2 * spec.f3 as f64).round() as u64,
            density: spec.x2_density_paper,
        },
        SpmmWorkload {
            label: "L2:A*(XW)",
            ops: (nnz_a * spec.f3 as f64).round() as u64,
            density: spec.a_density,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_table2() {
        // (spec, paper ALL Ax(XxW) MACs)
        let cases = [
            (DatasetSpec::cora(), 1.33e6),
            (DatasetSpec::citeseer(), 2.23e6),
            (DatasetSpec::pubmed(), 18.6e6),
            (DatasetSpec::nell(), 782e6),
            (DatasetSpec::reddit(), 6.6e9),
        ];
        for (spec, paper) in cases {
            let total: u64 = workload_spmms(&spec).iter().map(|s| s.ops).sum();
            let rel = (total as f64 - paper).abs() / paper;
            // 15%: the paper's Table 2 does not perfectly reconcile with
            // its own Table 1 densities for Reddit layer 2 (see
            // EXPERIMENTS.md); every other dataset is within a few percent.
            assert!(rel < 0.15, "{}: {total} vs paper {paper}", spec.name);
        }
    }

    #[test]
    fn four_spmms_in_order() {
        let s = workload_spmms(&DatasetSpec::pubmed());
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].label, "L1:X*W");
        assert_eq!(s[3].label, "L2:A*(XW)");
        // Layer-2 adjacency pass is cheaper than layer-1 (f3 < f2).
        assert!(s[3].ops < s[1].ops);
    }
}
