//! Calibrated analytical cost model behind [`StrategyPolicy::Auto`].
//!
//! The paper's thesis is that workload structure, measured at run time,
//! should drive execution strategy. This module closes that loop one level
//! up from the rebalancer: instead of hand-picking the design point, shard
//! counts, and replay flag per run, [`select`] scores every candidate
//! configuration against the input's sparsity profile and freezes the
//! predicted-fastest one into the plan that `GcnRunner::prepare` builds.
//!
//! The model has two independent parts:
//!
//! * **Cycle terms** (architectural, host-independent). A round of one
//!   SPMM costs the busiest PE's task count after the design point's
//!   rebalancing smooths it — the raw per-PE maximum for `Base`, the
//!   busiest hop-window average under local sharing, and near the mean
//!   (a small residual above it) once remote switching converges — or the
//!   off-chip delivery floor `nnz / bandwidth` when the operand does not
//!   fit the [`MemoryModel`]'s on-chip budget, whichever is larger.
//!   Column-sharding an operand `s` ways divides both the per-PE load and
//!   the per-shard nnz by `s` (the shard critical path), which is exactly
//!   why sharding only wins when it lifts the delivery floor: candidates
//!   on each shard axis are the *memory-feasible* counts, so a graph that
//!   fits one device is never split across phantom devices for a free
//!   predicted speedup.
//! * **A host calibration** (measured once per process). A handful of
//!   timed [`csc_times_dense_blocked`] probe calls yield `secs_per_mac`,
//!   which converts the candidate's MAC volume (discounted under replay,
//!   whose cache skips re-simulating repeated column patterns) into a
//!   predicted wall time — the tie-breaker among candidates with equal
//!   predicted cycles, and the "predicted" half of the
//!   predicted-vs-measured line in `PrepareReport`.
//!
//! Auto only *selects among existing kernels*: the execution order is the
//! implemented `A × (X × W)` schedule (the `(A × X) × W` alternative is
//! scored and reported per layer, never executed), and the pinned
//! ascending-`j` reduction order is untouched, so an Auto run is
//! bit-identical to hand-specifying the same configuration.

use crate::config::{AccelConfig, Design, ShardPolicy, StrategyPolicy};
use awb_gcn_model::GcnInput;
use awb_hw::{MemoryModel, BYTES_PER_NNZ};
use awb_sparse::profile::{col_nnz_stats, workload_stats, NnzStats};
use awb_sparse::{spmm, Coo, DenseMatrix};
use std::sync::OnceLock;

/// Fixed per-round launch/sync overhead in cycles (distributor restart +
/// column broadcast). Keeps every prediction strictly positive.
const ROUND_OVERHEAD: f64 = 8.0;

/// Fraction of the post-local-sharing imbalance that survives remote
/// switching once the auto-tuner converges (switching chases the residual
/// but never fully erases it within the tracking window).
const RS_RESIDUAL: f64 = 0.15;

/// Per-phase cycle penalty for remote switching on operands that re-tune
/// every request (the per-layer `X × W` engines are fresh each request, so
/// their tuning rounds land on the warm path, unlike the frozen `A` plan).
const RS_TUNE_CYCLES: f64 = 16.0;

/// Fraction of simulation work left after the replay cache deduplicates
/// repeated column patterns (dense `B` operands repeat heavily).
const REPLAY_MISS_FACTOR: f64 = 0.1;

/// Relative tolerance under which two cycle predictions count as tied and
/// the wall-time prediction breaks the tie.
const CYCLE_TIE_EPS: f64 = 1e-6;

/// The host calibration: measured cost of one MAC on this machine's warm
/// kernel path, from a few timed [`csc_times_dense_blocked`] probe runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Seconds per multiply-accumulate on the blocked kernel (best of the
    /// probe runs, floored at 1 fs so downstream products stay positive).
    pub secs_per_mac: f64,
    /// Wall time of the best probe run, in seconds.
    pub probe_wall_s: f64,
    /// MACs executed by one probe run.
    pub probe_macs: u64,
    /// Measured sequential read bandwidth of the host's temp filesystem
    /// in bytes/second (best of a few timed 1 MiB re-reads — warm-cache,
    /// so an optimistic bound, which is all the warn-only I/O term
    /// needs). Falls back to [`FALLBACK_READ_BW`] when probing fails.
    pub read_bytes_per_s: f64,
}

/// Read-bandwidth fallback when the I/O probe cannot run (read-only or
/// full temp dir): 2 GB/s, a mid-range NVMe figure.
const FALLBACK_READ_BW: f64 = 2.0e9;

/// Times a few 1 MiB reads of a just-written temp file; `None` when the
/// temp dir is unusable.
fn probe_read_bandwidth() -> Option<f64> {
    let path = std::env::temp_dir().join(format!("awb-io-probe-{}", std::process::id()));
    let payload = vec![0xA5u8; 1 << 20];
    std::fs::write(&path, &payload).ok()?;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let data = std::fs::read(&path).ok()?;
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(data);
    }
    let _ = std::fs::remove_file(&path);
    Some((payload.len() as f64 / best.max(1e-9)).max(1.0))
}

/// Runs (once per process) and returns the host micro-probe: a small
/// deterministic synthetic operand through [`csc_times_dense_blocked`],
/// timed over a few repetitions. Cached in a `OnceLock`, so every prepare
/// after the first reads it for free.
pub fn host_calibration() -> &'static Calibration {
    static CALIBRATION: OnceLock<Calibration> = OnceLock::new();
    CALIBRATION.get_or_init(|| {
        // 256 columns x 8 nnz each, dense B with 16 columns: 32768 MACs —
        // big enough to dwarf timer noise, small enough to be invisible in
        // prepare latency.
        let (n, per_col, b_cols) = (256usize, 8usize, 16usize);
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            for k in 0..per_col {
                let r = (c * 7 + k * 31) % n;
                // Duplicate (r, c) pushes coalesce in to_csc; the pattern
                // above never collides for per_col < 9.
                coo.push(r, c, 1.0 + (k as f32) * 0.5).expect("in bounds");
            }
        }
        let a = coo.to_csc();
        let b = DenseMatrix::from_vec(
            n,
            b_cols,
            (0..n * b_cols).map(|i| ((i % 7) as f32) - 3.0).collect(),
        )
        .expect("probe B well-formed");
        let probe_macs = (a.nnz() * b_cols) as u64;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let out = spmm::csc_times_dense_blocked(&a, &b).expect("probe SPMM");
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        let secs_per_mac = (best / probe_macs as f64).max(1e-15);
        Calibration {
            secs_per_mac,
            probe_wall_s: best,
            probe_macs,
            read_bytes_per_s: probe_read_bandwidth().unwrap_or(FALLBACK_READ_BW),
        }
    })
}

/// The sparsity-structure inputs the model scores against, computed once
/// per graph (an `O(n + nnz)` scan) and shared across every candidate —
/// and, via `GcnRunner::prepare_profiled`, across every `DesignSweep`
/// point on the same input.
#[derive(Debug, Clone)]
pub struct CostProfile {
    n: usize,
    a_nnz: usize,
    a_row_nnz: Vec<usize>,
    a_row_stats: NnzStats,
    a_col_stats: NnzStats,
    x1_nnz: usize,
    x1_cols: usize,
    x1_row_nnz: Vec<usize>,
    x1_row_stats: NnzStats,
    /// `(f_in, f_out)` per layer, from the weight shapes.
    layer_dims: Vec<(usize, usize)>,
    /// Exact MAC count of the unimplemented `(A × X1)` product — the
    /// layer-1 input to the execution-order comparison.
    ax_l1_macs: u64,
}

impl CostProfile {
    /// Profiles `input`: row-nnz vectors and summary stats for `A` and
    /// `X1`, column-side stats for `A`, layer dimensions, and the
    /// execution-order MAC counts.
    pub fn of_input(input: &GcnInput) -> Self {
        let a_row_nnz = input.a_norm.row_nnz_counts();
        let x1_row_nnz = input.x1.row_nnz_counts();
        let ax_l1_macs = input
            .a_norm
            .iter()
            .map(|(_, c, _)| x1_row_nnz[c] as u64)
            .sum();
        CostProfile {
            n: input.a_norm.rows(),
            a_nnz: input.a_norm.nnz(),
            a_row_stats: workload_stats(&a_row_nnz),
            a_col_stats: col_nnz_stats(&input.a_norm_csc),
            x1_nnz: input.x1.nnz(),
            x1_cols: input.x1.cols(),
            x1_row_stats: workload_stats(&x1_row_nnz),
            layer_dims: input.weights.iter().map(|w| w.shape()).collect(),
            a_row_nnz,
            x1_row_nnz,
            ax_l1_macs,
        }
    }

    /// Node count (rows/cols of `A`).
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Row-nnz summary of the adjacency (the accumulation-side skew the
    /// rebalancer fights).
    pub fn a_row_stats(&self) -> &NnzStats {
        &self.a_row_stats
    }

    /// Column-nnz summary of the adjacency (the delivery-side view).
    pub fn a_col_stats(&self) -> &NnzStats {
        &self.a_col_stats
    }

    /// Row-nnz summary of the layer-1 feature matrix.
    pub fn x1_row_stats(&self) -> &NnzStats {
        &self.x1_row_stats
    }

    /// `(f_in, f_out)` per layer.
    pub fn layer_dims(&self) -> &[(usize, usize)] {
        &self.layer_dims
    }
}

/// The execution order of one GCN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOrder {
    /// `A × (X × W)` — the paper's (and this repo's) implemented schedule.
    XwFirst,
    /// `(A × X) × W` — scored for the per-layer comparison, not executed
    /// (no kernel implements it; Auto only selects among existing ones).
    AxFirst,
}

/// Per-layer forecast attached to the winning candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerForecast {
    /// Predicted `X × W` cycles.
    pub xw_cycles: f64,
    /// Predicted `A × (XW)` cycles.
    pub a_xw_cycles: f64,
    /// MAC volume of the implemented `A × (X × W)` order.
    pub a_xw_macs: u64,
    /// MAC volume the unimplemented `(A × X) × W` order would cost — when
    /// this is lower the order comparison favours the other schedule, but
    /// Auto still executes [`ExecOrder::XwFirst`] (see [`ExecOrder`]).
    pub ax_w_macs: u64,
    /// The order Auto executes (always [`ExecOrder::XwFirst`] today).
    pub order: ExecOrder,
}

/// Host I/O forecast attached to an [`AutoDecision`] when the
/// configuration streams `A` from an on-disk store
/// ([`AccelConfig::store`]). **Warn-only**: the term is added to the
/// winner's wall prediction *after* selection and is identical for every
/// candidate (the store and pass count are properties of the input, not
/// of the candidate knobs), so it never changes the ranking — and with no
/// store configured it does not exist at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoForecast {
    /// Estimated bytes streamed from the store per full pass over `A`
    /// (raw chunk payloads: values + indices + column pointer).
    pub bytes_per_pass: u64,
    /// Streaming passes per warm request — one per layer's `A × (XW)`.
    pub passes: u64,
    /// Calibrated host read bandwidth the conversion used (bytes/s).
    pub read_bytes_per_s: f64,
    /// Predicted store-read seconds per warm request.
    pub read_s: f64,
}

/// The frozen outcome of Auto selection: the winning knobs, the model's
/// predictions for them, and the per-layer breakdown. `apply` turns it
/// into the concrete `Manual` configuration the plan executes.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoDecision {
    /// Winning design point.
    pub design: Design,
    /// Winning aggregation-side shard policy (resolved to a concrete
    /// count; `Single` when the adjacency fits one device).
    pub shards: ShardPolicy,
    /// Winning combination-side shard policy (`MemoryBudget` when some
    /// layer's feature matrix overflows on-chip memory, else `Single`).
    pub combination_shards: ShardPolicy,
    /// Whether the steady-state replay cache is enabled.
    pub replay: bool,
    /// Predicted end-to-end warm-path cycles for the winner.
    pub predicted_cycles: f64,
    /// Predicted host wall seconds for one warm request (MAC volume times
    /// the host calibration, replay-discounted).
    pub predicted_wall_s: f64,
    /// Per-layer cycle/MAC forecast for the winner.
    pub layers: Vec<LayerForecast>,
    /// How many candidate configurations were scored.
    pub candidates_scored: usize,
    /// True when this decision was re-scored against the unsharded
    /// candidate set after a degraded sharded prepare (DESIGN.md §10's
    /// fallback rung) — the sharded predictions above would be stale.
    pub rescored_unsharded: bool,
    /// The warn-only host I/O forecast, when the configuration streams
    /// `A` from a store; `None` (and nothing changes anywhere in the
    /// scoring) for resident configurations.
    pub io: Option<IoForecast>,
}

impl AutoDecision {
    /// One-line human label of the chosen configuration, e.g.
    /// `"LS2+RS | A unsharded | X unsharded | replay on"`.
    pub fn label(&self) -> String {
        format!(
            "{} | A {} | X {} | replay {}",
            self.design.label(),
            self.shards.label(),
            self.combination_shards.label(),
            if self.replay { "on" } else { "off" }
        )
    }

    /// The concrete configuration the decision resolves to: `base` with
    /// the winning design/shards/replay applied and the strategy set back
    /// to [`StrategyPolicy::Manual`] — running it hand-specified is
    /// bit-identical to the Auto run (and re-preparing it never
    /// re-resolves).
    pub fn apply(&self, base: &AccelConfig) -> AccelConfig {
        let mut config = self.design.apply(base.clone());
        config.shards = self.shards;
        config.combination_shards = self.combination_shards;
        config.replay = self.replay;
        config.strategy = StrategyPolicy::Manual;
        config
    }

    /// Stable FNV-1a hash of the resolved choice, mixed into the serving
    /// plan-cache key so plans prepared under different Auto resolutions
    /// (e.g. before/after a memory-model change) never alias.
    pub fn choice_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.label().bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// `(local_hop, remote_switching)` a design point resolves to.
fn design_knobs(design: Design) -> (usize, bool) {
    match design {
        Design::Baseline | Design::EieLike => (0, false),
        Design::LocalSharing { hop } => (hop, false),
        Design::LocalPlusRemote { hop } => (hop, true),
    }
}

/// Folds per-row workloads into per-PE loads under the block mapping
/// (row `r` belongs to PE `r * n_pes / n`).
fn pe_loads(row_loads: &[usize], n_pes: usize) -> Vec<f64> {
    let n_pes = n_pes.max(1);
    let n = row_loads.len().max(1);
    let mut loads = vec![0.0f64; n_pes];
    for (r, &c) in row_loads.iter().enumerate() {
        loads[r * n_pes / n] += c as f64;
    }
    loads
}

/// The busiest PE's effective load after the design point's rebalancing:
/// raw max for `Base`, busiest hop-window average under local sharing
/// (work can only spread within the window), and mean plus a small
/// residual once remote switching converges.
fn effective_max(loads: &[f64], hop: usize, remote: bool) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    let smoothed = if hop == 0 {
        loads.iter().copied().fold(0.0, f64::max)
    } else {
        let mut busiest = 0.0f64;
        for p in 0..loads.len() {
            let lo = p.saturating_sub(hop);
            let hi = (p + hop).min(loads.len() - 1);
            let window = loads[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64;
            busiest = busiest.max(window);
        }
        busiest.max(mean)
    };
    if remote {
        mean + (smoothed - mean) * RS_RESIDUAL
    } else {
        smoothed
    }
}

/// Predicted cycles for one SPMM phase: `rounds` rounds of the larger of
/// the busiest-PE load and the memory delivery floor, plus the one-time
/// operand fill. `shards` divides both the per-PE load and the per-shard
/// nnz (shard devices run in parallel; the prediction is their critical
/// path, matching how `ShardedEngine` accounts cycles).
fn phase_cycles(
    eff_max: f64,
    nnz: usize,
    rounds: usize,
    shards: usize,
    n_pes: usize,
    memory: &MemoryModel,
) -> f64 {
    let s = shards.max(1) as f64;
    let shard_nnz = (nnz as f64 / s).ceil() as usize;
    let bandwidth = memory.delivery_rate_limit(shard_nnz, n_pes.max(1)).max(1) as f64;
    let round = (eff_max / s).max(shard_nnz as f64 / bandwidth) + ROUND_OVERHEAD;
    rounds.max(1) as f64 * round + memory.fill_cycles(shard_nnz) as f64
}

/// Predicted cycles for one unsharded SPMM on an idealized (unbounded)
/// memory: the model's public single-phase form, exposed for property
/// tests and exploration. Finite, strictly positive, and monotone
/// non-decreasing in any row's nnz at fixed shape.
///
/// # Example
///
/// ```
/// use awb_accel::cost::predict_spmm_cycles;
/// use awb_accel::Design;
///
/// let skewed = predict_spmm_cycles(&[100, 1, 1, 1], 4, 16, Design::Baseline);
/// let balanced = predict_spmm_cycles(&[26, 26, 26, 26], 4, 16, Design::Baseline);
/// assert!(skewed > balanced);
/// let rebalanced = predict_spmm_cycles(&[100, 1, 1, 1], 4, 16, Design::LocalPlusRemote { hop: 1 });
/// assert!(rebalanced < skewed);
/// ```
pub fn predict_spmm_cycles(
    row_loads: &[usize],
    n_pes: usize,
    rounds: usize,
    design: Design,
) -> f64 {
    let (hop, remote) = design_knobs(design);
    let loads = pe_loads(row_loads, n_pes);
    let eff = effective_max(&loads, hop, remote);
    let nnz: usize = row_loads.iter().sum();
    phase_cycles(eff, nnz, rounds, 1, n_pes, &MemoryModel::unbounded())
}

/// Combines the two phase predictions of one layer under the configured
/// inter-SPMM pipelining (overlap bounded below by the longer stage plus
/// one round of the shorter, matching `pipeline_two_stage`'s bounds).
fn combine_layer(xw: f64, a_xw: f64, rounds: usize, pipelined: bool) -> f64 {
    if pipelined {
        xw.max(a_xw) + xw.min(a_xw) / rounds.max(1) as f64
    } else {
        xw + a_xw
    }
}

/// Memory-feasible shard counts for an operand of `nnz` non-zeros over
/// `cols` columns: just `[1]` when it fits on chip (sharding is a
/// capacity mechanism — splitting a resident operand across phantom
/// devices is never a real speedup), else the unsharded fallback plus the
/// minimal fitting count and one finer cut for the model to arbitrate.
fn shard_candidates(memory: &MemoryModel, nnz: usize, cols: usize) -> Vec<usize> {
    if memory.fits_on_chip(nnz) {
        return vec![1];
    }
    let budget = (memory.on_chip_bytes / BYTES_PER_NNZ).max(1);
    let need = nnz.div_ceil(budget).clamp(1, cols.max(1));
    let mut candidates = vec![1, need, (need + 1).min(cols.max(1))];
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

/// Scores one candidate; returns `(total_cycles, wall_s, per-layer)`.
#[allow(clippy::too_many_arguments)]
fn score_candidate(
    config: &AccelConfig,
    profile: &CostProfile,
    eff_a: f64,
    eff_x1: f64,
    a_shards: usize,
    x_policy: ShardPolicy,
    replay: bool,
    remote: bool,
    secs_per_mac: f64,
) -> (f64, f64, Vec<LayerForecast>) {
    let n_pes = config.n_pes;
    let memory = &config.memory;
    let x_budget_nnz = (memory.on_chip_bytes / BYTES_PER_NNZ).max(1);
    let mut total_cycles = 0.0;
    let mut total_macs = 0u64;
    let mut layers = Vec::with_capacity(profile.layer_dims.len());
    for (l, &(f_in, f_out)) in profile.layer_dims.iter().enumerate() {
        // X operand: the sparse X1 on layer 1, ReLU-dense features after.
        let (x_nnz, x_cols, x_eff) = if l == 0 {
            (profile.x1_nnz, profile.x1_cols, eff_x1)
        } else {
            let nnz = profile.n * f_in;
            // Uniform rows: every design's effective max is the mean.
            (nnz, f_in, nnz as f64 / n_pes.max(1) as f64)
        };
        let x_shards = match x_policy {
            ShardPolicy::MemoryBudget => x_nnz.div_ceil(x_budget_nnz).clamp(1, x_cols.max(1)),
            ShardPolicy::Fixed(s) => s.max(1),
            ShardPolicy::Single => 1,
        };
        let mut xw_cycles = phase_cycles(x_eff, x_nnz, f_out, x_shards, n_pes, memory);
        if remote {
            // Per-layer X engines are fresh each request: their remote
            // switching re-tunes on the warm path, unlike the frozen A plan.
            xw_cycles += RS_TUNE_CYCLES;
        }
        let a_xw_cycles = phase_cycles(eff_a, profile.a_nnz, f_out, a_shards, n_pes, memory);
        total_cycles += combine_layer(xw_cycles, a_xw_cycles, f_out, config.pipeline_spmms);

        let a_xw_macs = (x_nnz as u64 + profile.a_nnz as u64) * f_out as u64;
        let ax_macs = if l == 0 {
            profile.ax_l1_macs
        } else {
            profile.a_nnz as u64 * f_in as u64
        };
        let ax_w_macs = ax_macs + (profile.n * f_in * f_out) as u64;
        total_macs += a_xw_macs;
        layers.push(LayerForecast {
            xw_cycles,
            a_xw_cycles,
            a_xw_macs,
            ax_w_macs,
            order: ExecOrder::XwFirst,
        });
    }
    // Host wall: the numeric MAC work always runs; the simulation side is
    // replay-discounted because dense B columns repeat their nnz patterns.
    let sim_factor = if replay { REPLAY_MISS_FACTOR } else { 1.0 };
    let wall_s = secs_per_mac * total_macs as f64 * (1.0 + sim_factor);
    (total_cycles, wall_s, layers)
}

/// Predicted warm-path cycles for one *concrete* configuration — the same
/// score [`select`] would assign it as a candidate. Lets sweeps and tools
/// put the model's prediction next to each measured point without
/// enumerating the candidate space.
pub fn predict_config_cycles(config: &AccelConfig, profile: &CostProfile) -> f64 {
    let n_pes = config.n_pes;
    let remote = config.remote_switching;
    let a_pe = pe_loads(&profile.a_row_nnz, n_pes);
    let x1_pe = pe_loads(&profile.x1_row_nnz, n_pes);
    let eff_a = effective_max(&a_pe, config.local_hop, remote);
    let eff_x1 = effective_max(&x1_pe, config.local_hop, remote);
    let a_shards = match config.shards {
        ShardPolicy::Single => 1,
        ShardPolicy::Fixed(s) => s.max(1),
        ShardPolicy::MemoryBudget => {
            let budget = (config.memory.on_chip_bytes / BYTES_PER_NNZ).max(1);
            profile.a_nnz.div_ceil(budget).clamp(1, profile.n.max(1))
        }
    };
    let (cycles, _, _) = score_candidate(
        config,
        profile,
        eff_a,
        eff_x1,
        a_shards,
        config.combination_shards,
        config.replay,
        remote,
        host_calibration().secs_per_mac,
    );
    cycles
}

/// Scores the full candidate space for `config` against `profile` and
/// returns the winner. Deterministic for a given profile and config
/// (the host calibration scales every wall prediction equally, so the
/// ranking is host-independent). Infallible: the candidate space always
/// contains at least the baseline design, unsharded.
pub fn select(config: &AccelConfig, profile: &CostProfile) -> AutoDecision {
    select_constrained(config, profile, true)
}

/// [`select`] restricted to the unsharded candidate set — the re-scoring
/// path after a degraded sharded prepare (the sharded candidates' plans
/// can no longer be built, so keeping their predictions would be stale).
/// The returned decision has
/// [`rescored_unsharded`](AutoDecision::rescored_unsharded) set.
pub fn select_unsharded(config: &AccelConfig, profile: &CostProfile) -> AutoDecision {
    let mut decision = select_constrained(config, profile, false);
    decision.rescored_unsharded = true;
    decision
}

fn select_constrained(
    config: &AccelConfig,
    profile: &CostProfile,
    allow_sharded: bool,
) -> AutoDecision {
    let n_pes = config.n_pes;
    let secs_per_mac = host_calibration().secs_per_mac;
    let a_pe = pe_loads(&profile.a_row_nnz, n_pes);
    let x1_pe = pe_loads(&profile.x1_row_nnz, n_pes);

    // Design candidates: the paper's five-way lineup (hops that fit the
    // PE count). EIE-like is a reference datapath, not a strategy.
    let designs: Vec<(Design, f64, f64)> = Design::paper_lineup(1)
        .into_iter()
        .filter(|d| design_knobs(*d).0 < n_pes)
        .map(|d| {
            let (hop, remote) = design_knobs(d);
            (
                d,
                effective_max(&a_pe, hop, remote),
                effective_max(&x1_pe, hop, remote),
            )
        })
        .collect();

    let a_shard_options: Vec<usize> = if allow_sharded {
        shard_candidates(&config.memory, profile.a_nnz, profile.n)
    } else {
        vec![1]
    };
    // Combination axis: binary — unsharded, or the per-layer memory-derived
    // split when some layer's feature matrix overflows on-chip memory.
    let x_overflows = allow_sharded
        && profile
            .layer_dims
            .iter()
            .enumerate()
            .any(|(l, &(f_in, _))| {
                let nnz = if l == 0 {
                    profile.x1_nnz
                } else {
                    profile.n * f_in
                };
                !config.memory.fits_on_chip(nnz)
            });
    let x_options: Vec<ShardPolicy> = if x_overflows {
        vec![ShardPolicy::Single, ShardPolicy::MemoryBudget]
    } else {
        vec![ShardPolicy::Single]
    };

    let mut best: Option<AutoDecision> = None;
    let mut candidates_scored = 0usize;
    for &(design, eff_a, eff_x1) in &designs {
        let (_, remote) = design_knobs(design);
        for &a_shards in &a_shard_options {
            for &x_policy in &x_options {
                for replay in [true, false] {
                    let (cycles, wall_s, layers) = score_candidate(
                        config,
                        profile,
                        eff_a,
                        eff_x1,
                        a_shards,
                        x_policy,
                        replay,
                        remote,
                        secs_per_mac,
                    );
                    candidates_scored += 1;
                    let wins = match &best {
                        None => true,
                        Some(b) => {
                            let tie = (cycles - b.predicted_cycles).abs()
                                <= CYCLE_TIE_EPS * b.predicted_cycles.max(1.0);
                            (cycles < b.predicted_cycles && !tie)
                                || (tie && wall_s < b.predicted_wall_s)
                        }
                    };
                    if wins {
                        best = Some(AutoDecision {
                            design,
                            shards: if a_shards == 1 {
                                ShardPolicy::Single
                            } else {
                                ShardPolicy::Fixed(a_shards)
                            },
                            combination_shards: x_policy,
                            replay,
                            predicted_cycles: cycles,
                            predicted_wall_s: wall_s,
                            layers,
                            candidates_scored: 0,
                            rescored_unsharded: false,
                            io: None,
                        });
                    }
                }
            }
        }
    }
    let mut decision = best.expect("candidate space is never empty");
    decision.candidates_scored = candidates_scored;
    // Warn-only I/O term: applied to the already-chosen winner, identical
    // for any candidate it could have been, absent without a store — so
    // the resident ranking is provably untouched.
    decision.io = io_forecast(config, profile);
    if let Some(io) = &decision.io {
        decision.predicted_wall_s += io.read_s;
    }
    decision
}

/// Estimates the streaming I/O of one warm request when `config` names a
/// store: one pass over `A`'s chunk payloads (values + indices + column
/// pointer, the raw sizes — compression only shrinks them) per layer,
/// converted through the calibrated read bandwidth.
fn io_forecast(config: &AccelConfig, profile: &CostProfile) -> Option<IoForecast> {
    config.store.as_ref()?;
    let bytes_per_pass = (profile.a_nnz * (size_of::<u32>() + size_of::<f32>())
        + (profile.n + 1) * size_of::<u64>()) as u64;
    let passes = profile.layer_dims.len().max(1) as u64;
    let read_bytes_per_s = host_calibration().read_bytes_per_s.max(1.0);
    Some(IoForecast {
        bytes_per_pass,
        passes,
        read_bytes_per_s,
        read_s: (bytes_per_pass * passes) as f64 / read_bytes_per_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_datasets::{DatasetSpec, GeneratedDataset};
    use awb_sparse::Coo;

    fn profile_for(nodes: usize, seed: u64) -> CostProfile {
        let data =
            GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(nodes), seed).unwrap();
        CostProfile::of_input(&GcnInput::from_dataset(&data).unwrap())
    }

    #[test]
    fn calibration_is_positive_and_cached() {
        let c1 = host_calibration();
        let c2 = host_calibration();
        assert!(std::ptr::eq(c1, c2), "OnceLock must cache the probe");
        assert!(c1.secs_per_mac > 0.0 && c1.secs_per_mac.is_finite());
        assert!(c1.probe_macs > 0);
        assert!(c1.read_bytes_per_s >= 1.0 && c1.read_bytes_per_s.is_finite());
    }

    #[test]
    fn io_term_is_absent_without_a_store_and_ranking_neutral_with_one() {
        let profile = profile_for(192, 7);
        let resident = AccelConfig::builder().n_pes(32).build().unwrap();
        let resident_decision = select(&resident, &profile);
        assert_eq!(resident_decision.io, None);

        let streamed = AccelConfig::builder()
            .n_pes(32)
            .store(Some("graphs/test.store".into()))
            .build()
            .unwrap();
        let streamed_decision = select(&streamed, &profile);
        // Same knobs win — the I/O term never reorders candidates…
        assert_eq!(streamed_decision.design, resident_decision.design);
        assert_eq!(streamed_decision.shards, resident_decision.shards);
        assert_eq!(
            streamed_decision.combination_shards,
            resident_decision.combination_shards
        );
        assert_eq!(streamed_decision.replay, resident_decision.replay);
        assert_eq!(
            streamed_decision.predicted_cycles,
            resident_decision.predicted_cycles
        );
        // …it only annotates the winner's wall prediction.
        let io = streamed_decision.io.expect("store configured");
        assert!(io.bytes_per_pass > 0);
        assert_eq!(io.passes, profile.layer_dims().len() as u64);
        assert!(io.read_s > 0.0 && io.read_s.is_finite());
        let expected = resident_decision.predicted_wall_s + io.read_s;
        assert!((streamed_decision.predicted_wall_s - expected).abs() <= 1e-12 * expected);
    }

    #[test]
    fn predictions_finite_positive_and_design_ordered() {
        let loads = vec![40usize, 1, 1, 1, 1, 1, 1, 1];
        let base = predict_spmm_cycles(&loads, 8, 16, Design::Baseline);
        let ls = predict_spmm_cycles(&loads, 8, 16, Design::LocalSharing { hop: 1 });
        let rs = predict_spmm_cycles(&loads, 8, 16, Design::LocalPlusRemote { hop: 1 });
        for v in [base, ls, rs] {
            assert!(v.is_finite() && v > 0.0);
        }
        // Rebalancing can only help a skewed workload, and more of it more.
        assert!(ls < base);
        assert!(rs < ls);
    }

    #[test]
    fn prediction_monotone_in_nnz() {
        let mut loads = vec![3usize; 32];
        let before = predict_spmm_cycles(&loads, 8, 8, Design::LocalPlusRemote { hop: 2 });
        loads[5] += 10;
        let after = predict_spmm_cycles(&loads, 8, 8, Design::LocalPlusRemote { hop: 2 });
        assert!(after >= before);
    }

    #[test]
    fn select_prefers_rebalancing_on_skewed_graph() {
        // Nell-like clustering: heavy hub rows on a few PEs.
        let data = GeneratedDataset::generate(&DatasetSpec::nell().with_nodes(256), 8).unwrap();
        let profile = CostProfile::of_input(&GcnInput::from_dataset(&data).unwrap());
        let config = AccelConfig::builder().n_pes(64).build().unwrap();
        let decision = select(&config, &profile);
        assert!(
            decision.design != Design::Baseline,
            "skewed graph must not pick Base: {}",
            decision.label()
        );
        assert!(decision.predicted_cycles > 0.0);
        assert!(decision.predicted_wall_s > 0.0);
        assert!(decision.candidates_scored >= 10);
        assert_eq!(decision.layers.len(), 2);
        // Fits on chip: no phantom shard devices.
        assert_eq!(decision.shards, ShardPolicy::Single);
        assert_eq!(decision.combination_shards, ShardPolicy::Single);
        assert!(decision.replay, "replay never hurts predicted wall");
    }

    #[test]
    fn select_shards_only_when_memory_bound() {
        let profile = profile_for(256, 9);
        let mut config = AccelConfig::builder().n_pes(32).build().unwrap();
        config.memory = awb_hw::MemoryModel {
            // A tiny on-chip budget: the adjacency cannot fit one device.
            on_chip_bytes: 64 * awb_hw::BYTES_PER_NNZ,
            off_chip_bytes_per_cycle: 16.0,
        };
        let decision = select(&config, &profile);
        assert!(
            matches!(decision.shards, ShardPolicy::Fixed(s) if s > 1),
            "memory-bound adjacency must shard: {}",
            decision.label()
        );
        // The unsharded re-score is forced back onto one device and must
        // predict slower (the delivery floor binds).
        let rescored = select_unsharded(&config, &profile);
        assert!(rescored.rescored_unsharded);
        assert_eq!(rescored.shards, ShardPolicy::Single);
        assert_eq!(rescored.combination_shards, ShardPolicy::Single);
        assert!(rescored.predicted_cycles > decision.predicted_cycles);
    }

    #[test]
    fn apply_freezes_choice_into_manual_config() {
        let profile = profile_for(192, 4);
        let base = AccelConfig::builder()
            .n_pes(32)
            .strategy(StrategyPolicy::Auto)
            .build()
            .unwrap();
        let decision = select(&base, &profile);
        let resolved = decision.apply(&base);
        assert_eq!(resolved.strategy, StrategyPolicy::Manual);
        assert_eq!(resolved.shards, decision.shards);
        assert_eq!(resolved.combination_shards, decision.combination_shards);
        assert_eq!(resolved.replay, decision.replay);
        let (hop, remote) = design_knobs(decision.design);
        assert_eq!(resolved.local_hop, hop);
        assert_eq!(resolved.remote_switching, remote);
    }

    #[test]
    fn choice_hash_distinguishes_choices() {
        let profile = profile_for(192, 4);
        let config = AccelConfig::builder().n_pes(32).build().unwrap();
        let d = select(&config, &profile);
        let mut other = d.clone();
        other.replay = !other.replay;
        assert_ne!(d.choice_hash(), other.choice_hash());
        assert_eq!(d.choice_hash(), select(&config, &profile).choice_hash());
    }

    #[test]
    fn forecast_orders_both_schedules() {
        // A dense X1 makes (A×X)×W strictly more expensive per layer 1.
        let n = 32;
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, (i + 1) % n, 1.0).unwrap();
        }
        let mut x = Coo::new(n, 8);
        for i in 0..n {
            for c in 0..8 {
                x.push(i, c, 1.0).unwrap();
            }
        }
        let w1 = DenseMatrix::from_vec(8, 4, vec![1.0; 32]).unwrap();
        let input = GcnInput::from_parts(a.to_csr(), x.to_csr(), vec![w1]).unwrap();
        let profile = CostProfile::of_input(&input);
        let config = AccelConfig::builder().n_pes(8).build().unwrap();
        let decision = select(&config, &profile);
        let layer = &decision.layers[0];
        assert_eq!(layer.order, ExecOrder::XwFirst);
        // a_xw: (x_nnz + a_nnz) * f_out = (256 + 32) * 4; ax_w: a.iter over
        // x rows (32 * 8) + n * f_in * f_out (32 * 8 * 4).
        assert_eq!(layer.a_xw_macs, (256 + 32) * 4);
        assert_eq!(layer.ax_w_macs, 32 * 8 + 32 * 8 * 4);
    }

    #[test]
    fn empty_pe_load_fold_is_safe() {
        assert_eq!(pe_loads(&[], 4), vec![0.0; 4]);
        assert_eq!(effective_max(&[], 2, true), 0.0);
        let cycles = predict_spmm_cycles(&[], 4, 4, Design::Baseline);
        assert!(cycles > 0.0, "round overhead keeps predictions positive");
    }
}
