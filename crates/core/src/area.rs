//! Hardware area model (paper Fig. 14 K-O, Fig. 15 bars).
//!
//! The paper normalizes area to Configurable Logic Blocks (CLBs) and splits
//! it into (red) the task queues — whose required depth *shrinks* under
//! rebalancing because queues no longer absorb huge imbalances — and
//! (green) everything else, which grows only by the small rebalancing-logic
//! overheads it quotes: 2.7% for 1-hop sharing, 4.3% for 2-hop, and 1.9%
//! for remote switching, relative to the baseline.
//!
//! Vivado is not available here, so the per-component CLB constants are
//! documented model parameters; the *relative* picture (TQ shrinkage vs.
//! tiny logic overhead) is what the experiments reproduce.

use crate::config::AccelConfig;

/// Per-component CLB cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// CLBs per PE (MAC + AGU + ACC-bank control).
    pub clb_per_pe: f64,
    /// CLBs per 2×2 Omega-network switch.
    pub clb_per_switch: f64,
    /// CLBs per task-queue slot (distributed RAM + pointers).
    pub clb_per_tq_slot: f64,
    /// Fixed CLBs (SPMMeM/DCM controllers, top-level glue).
    pub clb_fixed: f64,
    /// Local-sharing logic overhead per hop as a fraction of baseline
    /// non-TQ area (paper: 2.7% for 1-hop, 4.3% for 2-hop → ≈1.6%/hop
    /// increment; we use the paper's two anchors and extrapolate linearly).
    pub local_overhead_per_hop: [f64; 2],
    /// Remote-switching logic overhead fraction (paper: 1.9%).
    pub remote_overhead: f64,
}

impl AreaModel {
    /// Constants calibrated to keep proportions in line with the paper's
    /// Fig. 14 K-O.
    pub fn paper_default() -> Self {
        AreaModel {
            clb_per_pe: 120.0,
            clb_per_switch: 8.0,
            clb_per_tq_slot: 0.55,
            clb_fixed: 6_000.0,
            local_overhead_per_hop: [0.027, 0.043],
            remote_overhead: 0.019,
        }
    }

    /// Local-sharing overhead fraction for a hop radius (0 → none).
    pub fn local_overhead(&self, hop: usize) -> f64 {
        match hop {
            0 => 0.0,
            1 => self.local_overhead_per_hop[0],
            2 => self.local_overhead_per_hop[1],
            // Linear extrapolation beyond the paper's two anchors.
            h => {
                let step = self.local_overhead_per_hop[1] - self.local_overhead_per_hop[0];
                self.local_overhead_per_hop[1] + step * (h as f64 - 2.0)
            }
        }
    }

    /// Computes the breakdown for a configuration and the measured total
    /// TQ slot requirement (from [`SpmmStats::total_queue_slots`]).
    ///
    /// [`SpmmStats::total_queue_slots`]: crate::stats::SpmmStats::total_queue_slots
    pub fn breakdown(&self, config: &AccelConfig, tq_slots: usize) -> AreaBreakdown {
        let n = config.n_pes as f64;
        let pe_array = self.clb_per_pe * n;
        // Omega network: n/2 switches per stage, log2(n) stages.
        let network = self.clb_per_switch * (n / 2.0) * (config.n_pes.trailing_zeros() as f64);
        let base_logic = pe_array + network + self.clb_fixed;
        let mut overhead_fraction = self.local_overhead(config.local_hop);
        if config.remote_switching {
            overhead_fraction += self.remote_overhead;
        }
        AreaBreakdown {
            pe_array,
            network,
            fixed: self.clb_fixed,
            rebalance_logic: base_logic * overhead_fraction,
            task_queues: self.clb_per_tq_slot * tq_slots as f64,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_default()
    }
}

/// CLB cost split by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// PE array CLBs.
    pub pe_array: f64,
    /// Interconnect CLBs.
    pub network: f64,
    /// Fixed controller CLBs.
    pub fixed: f64,
    /// Rebalancing logic CLBs (comparators, PESM, SLT, shuffle switches).
    pub rebalance_logic: f64,
    /// Task-queue CLBs (the paper's red bars).
    pub task_queues: f64,
}

impl AreaBreakdown {
    /// Total CLBs.
    pub fn total(&self) -> f64 {
        self.pe_array + self.network + self.fixed + self.rebalance_logic + self.task_queues
    }

    /// Everything except the task queues (the paper's green bars).
    pub fn non_tq(&self) -> f64 {
        self.total() - self.task_queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    fn config(n_pes: usize) -> AccelConfig {
        AccelConfig::builder().n_pes(n_pes).build().unwrap()
    }

    #[test]
    fn local_overhead_anchors_match_paper() {
        let m = AreaModel::paper_default();
        assert_eq!(m.local_overhead(0), 0.0);
        assert!((m.local_overhead(1) - 0.027).abs() < 1e-12);
        assert!((m.local_overhead(2) - 0.043).abs() < 1e-12);
        // 3-hop extrapolates beyond 2-hop.
        assert!(m.local_overhead(3) > m.local_overhead(2));
    }

    #[test]
    fn baseline_has_no_rebalance_logic() {
        let m = AreaModel::paper_default();
        let cfg = Design::Baseline.apply(config(64));
        let b = m.breakdown(&cfg, 1000);
        assert_eq!(b.rebalance_logic, 0.0);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn rebalance_overhead_is_small_fraction() {
        let m = AreaModel::paper_default();
        let base = m.breakdown(&Design::Baseline.apply(config(1024)), 0);
        let tuned = m.breakdown(&Design::LocalPlusRemote { hop: 2 }.apply(config(1024)), 0);
        let overhead = (tuned.total() - base.total()) / base.total();
        // 4.3% + 1.9% = 6.2%.
        assert!((overhead - 0.062).abs() < 0.005, "overhead {overhead}");
    }

    #[test]
    fn tq_area_scales_with_slots() {
        let m = AreaModel::paper_default();
        let cfg = config(64);
        let small = m.breakdown(&cfg, 1_000);
        let large = m.breakdown(&cfg, 100_000);
        assert!(large.task_queues > small.task_queues * 50.0);
        assert!((small.non_tq() - large.non_tq()).abs() < 1e-6);
    }

    #[test]
    fn network_grows_with_pe_count() {
        let m = AreaModel::paper_default();
        let a = m.breakdown(&config(256), 0);
        let b = m.breakdown(&config(1024), 0);
        assert!(b.network > a.network);
        assert!(b.pe_array > a.pe_array);
    }
}
