//! Host-parallel execution substrate.
//!
//! The simulator's workloads are embarrassingly parallel at several
//! granularities — frozen-phase rounds inside [`FastEngine`](crate::FastEngine)
//! (each round owns one output column), [`DesignSweep`](crate::DesignSweep)
//! grid points, and whole design×dataset grids in the bench harness. This
//! module provides the one primitive they all share: a deterministic-order
//! `par_map` built on [`std::thread::scope`], with no dependency outside
//! `std` (the build environment has no cargo-registry route).
//!
//! # Determinism contract
//!
//! `par_map(items, f)[i] == f(&items[i])` for every `i`, independent of the
//! thread count: only the *assignment of items to worker threads* varies,
//! never the result order, and `f` receives each item exactly once. Callers
//! that keep `f` a pure function of its item (as every caller in this
//! workspace does) therefore get bit-identical results whether
//! `AWB_THREADS=1` or 64. Worker panics propagate to the caller — except
//! through [`par_map_isolated`], which catches them per item so a fault in
//! one request cannot take down the rest of a serving batch.
//!
//! # Thread-count policy
//!
//! [`num_threads`] honours the `AWB_THREADS` environment variable when it
//! parses as a positive integer, and falls back to
//! [`std::thread::available_parallelism`] otherwise. Work is pulled from a
//! shared atomic cursor, so uneven item costs (e.g. Reddit vs Cora grid
//! points) self-balance without any up-front partitioning. Nested calls —
//! a `par_map` reached from inside a worker — run inline on that worker,
//! so composing parallel layers (bench grid → sweep → engine) never
//! oversubscribes the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "AWB_THREADS";

thread_local! {
    /// True on a `par_map` worker thread. Nested `par_map` calls (e.g. a
    /// `FastEngine` frozen phase inside a `DesignSweep` grid point) run
    /// inline instead of spawning another full complement of workers —
    /// otherwise an outer N-way fan-out would oversubscribe the machine
    /// with up to N×N CPU-bound threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Parses an `AWB_THREADS`-style value: positive integers pass through,
/// anything else (absent, empty, zero, garbage) yields `None`.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The worker-thread count to use: `AWB_THREADS` when set to a positive
/// integer, else the machine's available parallelism (at least 1). On a
/// `par_map` worker thread this is always 1 (see `IN_WORKER`).
pub fn num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on [`num_threads`] workers, returning results in
/// item order (see the module-level determinism contract).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// True on a [`par_map`] worker thread, where nested parallel maps run
/// inline — callers claiming concurrency (e.g. the streaming engine's
/// prefetch overlap accounting) must not when this holds.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// [`par_map`] with an explicit worker count (used by tests and by engines
/// carrying a per-instance thread override).
///
/// `threads <= 1` (or a single-item input) runs inline on the calling
/// thread — the guaranteed-sequential reference path.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    // Each worker claims items from the shared cursor and tags results with
    // their item index; reassembly below restores item order exactly.
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });

    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for shard in shards {
        for (i, r) in shard {
            debug_assert!(out[i].is_none(), "item {i} computed twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("cursor hands every index to exactly one worker"))
        .collect()
}

/// [`par_map_threads`], but with each item's computation *isolated*: a
/// panic inside `f` is caught at the item boundary and surfaces as that
/// item's `Err(message)` while every other item still completes and the
/// calling thread never unwinds. This is the request-isolation primitive
/// for the serving front-end — one poisoned request must not take down a
/// batch of healthy tenants.
///
/// The determinism contract is unchanged: `out[i]` is `f(&items[i])`
/// (or its caught panic) independent of the thread count, and both the
/// inline (`threads <= 1`) and threaded paths catch panics identically.
///
/// `AssertUnwindSafe` rationale: `f` is only observed *through shared
/// references*, and every caller in this workspace either keeps `f` pure
/// per item or guards interior mutability with poison-recovering locks
/// (see `ReplayCache`), so state witnessed after a caught panic is always
/// a consistent prefix of completed work.
pub fn par_map_isolated<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let f = &f;
    par_map_threads(threads, items, move |item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// Stringifies a caught panic payload (the two forms `panic!` produces,
/// with a fallback for exotic `panic_any` payloads).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map_threads(threads, &items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        // f32 work: identical results regardless of worker count, because
        // each item's computation is self-contained.
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let f = |x: &f32| (0..50).fold(*x, |acc, i| acc + (i as f32).sqrt() * acc.sin());
        let seq = par_map_threads(1, &items, f);
        let par = par_map_threads(8, &items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 16 ")), Some(16));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn uneven_work_self_balances() {
        // Costs differ by 1000x across items; result order must not.
        let items: Vec<usize> = (0..32).collect();
        let out = par_map_threads(4, &items, |&i| {
            let spins = if i % 7 == 0 { 100_000 } else { 100 };
            (0..spins).fold(i as u64, |a, b| a.wrapping_add(b))
        });
        let seq: Vec<u64> = items
            .iter()
            .map(|&i| {
                let spins = if i % 7 == 0 { 100_000 } else { 100 };
                (0..spins).fold(i as u64, |a, b| a.wrapping_add(b))
            })
            .collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        // Inside a worker, num_threads() collapses to 1 and the inner
        // par_map spawns nothing — but results are still correct.
        let outer: Vec<u32> = (0..8).collect();
        let out = par_map_threads(4, &outer, |&x| {
            assert_eq!(num_threads(), 1, "worker must report a 1-thread budget");
            let inner: Vec<u32> = (0..5).collect();
            par_map_threads(4, &inner, move |&y| x * 10 + y)
        });
        assert_eq!(out[3], vec![30, 31, 32, 33, 34]);
        assert_eq!(out.len(), 8);
        // Back on the caller thread the budget is restored.
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        par_map_threads(2, &items, |&x| {
            if x == 5 {
                panic!("deliberate");
            }
            x
        });
    }

    #[test]
    fn isolated_panics_become_item_errors() {
        let items: Vec<u32> = (0..16).collect();
        // Inline and threaded paths must behave identically.
        for threads in [1, 2, 4] {
            let out = par_map_isolated(threads, &items, |&x| {
                if x % 5 == 3 {
                    panic!("bad item {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    assert_eq!(
                        r.as_ref().map_err(String::as_str),
                        Err(format!("bad item {i}").as_str())
                    );
                } else {
                    assert_eq!(*r, Ok(i as u32 * 2));
                }
            }
        }
    }

    #[test]
    fn isolated_all_panic_still_returns() {
        let items: Vec<u32> = (0..4).collect();
        let out = par_map_isolated(3, &items, |_| -> u32 { panic!("every item") });
        assert!(out
            .iter()
            .all(|r| r.as_ref().map_err(String::as_str) == Err("every item")));
    }

    #[test]
    fn isolated_string_and_str_payloads_stringify() {
        let out = par_map_isolated(1, &[0u8, 1], |&x| -> u8 {
            if x == 0 {
                panic!("static str")
            } else {
                panic!("{}", format!("formatted {x}"))
            }
        });
        assert_eq!(out[0].as_ref().map_err(String::as_str), Err("static str"));
        assert_eq!(out[1].as_ref().map_err(String::as_str), Err("formatted 1"));
    }
}
