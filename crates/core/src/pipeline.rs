//! Inter-SPMM coarse-grained pipelining (paper §3.3, Fig. 8).
//!
//! "When a column of `(XW)` has finished computing, and `A` is constant and
//! ready, we can already start the multiplication of `A` with that column,
//! without the need to wait for the entire `XW`." The paper chains SPMM
//! engines so that column `k` of stage `s+1` starts once stage `s` has
//! produced it and stage `s+1` finished its own column `k−1`; besides the
//! latency win, only a single column of `XW` needs on-chip buffering.
//!
//! The same pattern extends to multi-hop layers
//! `A × (A × (X × W))` — [`pipeline_chain`] handles any depth.

/// Latency of two chained SPMMs with column handoff.
///
/// `stage1[k]` / `stage2[k]` are the per-round (per-column) cycle counts of
/// the producer and consumer. If the consumer has more rounds than the
/// producer, the extra rounds only wait on their predecessor within the
/// consumer.
///
/// # Example
///
/// ```
/// use awb_accel::pipeline::pipeline_two_stage;
///
/// // Producer columns take 10 cycles each; consumer 4: the consumer hides
/// // entirely behind the producer except its final column.
/// assert_eq!(pipeline_two_stage(&[10, 10, 10], &[4, 4, 4]), 34);
/// // Sequential would be 30 + 12 = 42.
/// ```
pub fn pipeline_two_stage(stage1: &[u64], stage2: &[u64]) -> u64 {
    pipeline_chain(&[stage1, stage2])
}

/// Latency of an arbitrary chain of column-pipelined SPMM stages.
///
/// Classic pipeline recurrence:
/// `end[s][k] = max(end[s−1][k], end[s][k−1]) + cycles[s][k]`.
/// Stages with fewer rounds than their consumer release the missing
/// columns at their own completion time.
///
/// Returns 0 for an empty chain.
pub fn pipeline_chain(stages: &[&[u64]]) -> u64 {
    let mut prev_end: Vec<u64> = match stages.first() {
        None => return 0,
        Some(first) => {
            let mut acc = 0u64;
            first
                .iter()
                .map(|&c| {
                    acc += c;
                    acc
                })
                .collect()
        }
    };
    // The chain is not complete before every stage has drained — relevant
    // when a consumer has fewer rounds than its producer.
    let mut chain_total = prev_end.last().copied().unwrap_or(0);
    for stage in &stages[1..] {
        let producer_total = prev_end.last().copied().unwrap_or(0);
        let mut ends = Vec::with_capacity(stage.len());
        let mut last_end = 0u64;
        for (k, &cycles) in stage.iter().enumerate() {
            let available = prev_end.get(k).copied().unwrap_or(producer_total);
            let start = available.max(last_end);
            last_end = start + cycles;
            ends.push(last_end);
        }
        chain_total = chain_total.max(last_end);
        prev_end = ends;
    }
    chain_total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_zero() {
        assert_eq!(pipeline_chain(&[]), 0);
        assert_eq!(pipeline_two_stage(&[], &[]), 0);
    }

    #[test]
    fn single_stage_is_sum() {
        assert_eq!(pipeline_chain(&[&[3, 4, 5]]), 12);
    }

    #[test]
    fn consumer_hides_behind_slow_producer() {
        // Last consumer column starts at producer total (30) and adds 4.
        assert_eq!(pipeline_two_stage(&[10, 10, 10], &[4, 4, 4]), 34);
    }

    #[test]
    fn producer_hides_behind_slow_consumer() {
        // Consumer dominates: first column waits for producer col 0 (2),
        // then runs back-to-back: 2 + 3*10 = 32.
        assert_eq!(pipeline_two_stage(&[2, 2, 2], &[10, 10, 10]), 32);
    }

    #[test]
    fn pipelined_never_worse_than_max_stage_nor_better_than_critical_path() {
        let s1 = [7u64, 1, 9, 3];
        let s2 = [2u64, 8, 2, 6];
        let total = pipeline_two_stage(&s1, &s2);
        let sum1: u64 = s1.iter().sum();
        let sum2: u64 = s2.iter().sum();
        assert!(total >= sum1.max(sum2));
        assert!(total <= sum1 + sum2);
        // Lower bound: first producer column + all consumer work.
        assert!(total >= s1[0] + sum2);
    }

    #[test]
    fn three_stage_chain() {
        // A x (A x (X x W)): three stages of equal rounds.
        let total = pipeline_chain(&[&[5, 5], &[5, 5], &[5, 5]]);
        // Fill 2 stages (10) then drain: 5+5+5 +5... recurrence:
        // s0 ends: 5,10; s1 ends: 10,15; s2 ends: 15,20.
        assert_eq!(total, 20);
    }

    #[test]
    fn mismatched_round_counts() {
        // Producer has 2 columns, consumer 4: extra consumer columns only
        // chain on themselves after the producer completes.
        let total = pipeline_two_stage(&[10, 10], &[1, 1, 1, 1]);
        // ends1: 10, 20. consumer: c0 10->11, c1 20->21, c2 max(20,21)+1=22, c3 23.
        assert_eq!(total, 23);
    }

    #[test]
    fn zero_cycle_rounds_pass_through() {
        assert_eq!(pipeline_two_stage(&[0, 0], &[0, 0]), 0);
        assert_eq!(pipeline_two_stage(&[5, 0], &[0, 5]), 10);
    }
}
