//! Shared steady-state round machinery: the queue-dynamics round model,
//! the replay cache, and the frozen-map round executor.
//!
//! Everything here is the *per-round* half of the fast engine, factored
//! out so that two callers can share it byte-for-byte:
//!
//! * [`FastEngine`](super::FastEngine) — after its auto-tuner freezes, it
//!   executes the remaining rounds through [`execute_steady`],
//! * [`SpmmSession`](super::SpmmSession) — a per-request executor over a
//!   shared [`TunedPlan`](super::TunedPlan), where *every* round is
//!   steady-state.
//!
//! [`ReplayCache`] is interior-mutable (`RwLock` + atomic counters) so a
//! plan can be shared (`&TunedPlan`) across concurrently executing
//! sessions: all sessions read and warm one cache. Timings are pure
//! functions of the round's non-zero pattern under the frozen map, so
//! concurrent insertion of the same key writes the same value and results
//! stay bit-identical regardless of interleaving (only the hit/miss
//! *counters* can differ between schedules, since two sessions racing on
//! an uncached pattern both count a miss).

use crate::config::{AccelConfig, StallMode};
use crate::engine::arena::ScratchArena;
use crate::exec;
use crate::rebalance::local::LocalSharing;
use crate::stats::RoundStats;
use awb_sparse::spmm::{csc_accumulate_block, csc_axpy_column, drain_block_into, ACC_BLOCK_LANES};
use awb_sparse::{Csc, DenseMatrix};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Replay-cache entry cap. GCN workloads need a handful of patterns (most
/// rounds are fully dense in `b[:, k]`); an operand producing thousands of
/// distinct patterns gains nothing from memoization, so past the cap fresh
/// timings are kept for the current call only instead of growing the
/// cache's footprint without bound.
pub(crate) const REPLAY_CACHE_CAP: usize = 1024;

/// Memoized timing of one simulated round (cycles exclude the round-0
/// SPMMeM fill, which is charged at use).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RoundTiming {
    /// Barrier cycles (`max_completion`), without any fill charge.
    pub cycles: u64,
    /// MAC tasks executed.
    pub tasks: u64,
    /// Busiest PE's executed-task count.
    pub max_pe_busy: u64,
    /// Least-busy PE's executed-task count.
    pub min_pe_busy: u64,
    /// Largest queue occupancy on any PE.
    pub max_queue_depth: usize,
    /// RaW-hazard stall cycles.
    pub raw_stalls: u64,
    /// Per-PE queue high-water marks (merged into the SPMM-level vector
    /// for steady-state rounds).
    pub queue_high_water: Vec<u32>,
}

impl RoundTiming {
    pub(crate) fn to_stats(&self, cycles: u64, tuning_active: bool) -> RoundStats {
        RoundStats {
            cycles,
            tasks: self.tasks,
            busy_cycles: self.tasks,
            max_pe_busy: self.max_pe_busy,
            min_pe_busy: self.min_pe_busy,
            max_queue_depth: self.max_queue_depth,
            raw_stalls: self.raw_stalls,
            tuning_active,
        }
    }
}

/// Result of simulating one round: the memoizable timing plus the
/// owner-attributed load profile the auto-tuner consumes.
pub(crate) struct SimRound {
    pub timing: RoundTiming,
    pub owner_busy: Vec<u64>,
}

/// Fixed per-run simulation parameters shared by every round.
#[derive(Clone, Copy)]
pub(crate) struct SimParams {
    pub n_pes: usize,
    pub lat: u64,
    pub bandwidth: u64,
    pub stall_mode: StallMode,
    pub sharing: Option<LocalSharing>,
}

/// The memory-model quantities of one sparse operand under one config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MemoryParams {
    /// Distributor delivery rate (tasks advance `1/bandwidth` per cycle).
    pub bandwidth: u64,
    /// Whether SPMMeM holds the operand on chip.
    pub on_chip: bool,
    /// One-time fill charge for an on-chip operand (charged to round 0).
    pub fill_cycles: u64,
}

impl MemoryParams {
    pub(crate) fn for_operand(config: &AccelConfig, nnz: usize) -> MemoryParams {
        MemoryParams {
            bandwidth: config.memory.delivery_rate_limit(nnz, config.n_pes).max(1) as u64,
            on_chip: config.memory.fits_on_chip(nnz),
            fill_cycles: config.memory.fill_cycles(nnz),
        }
    }
}

/// Simulates the queue dynamics of one round: the tasks of sparse columns
/// `pattern` (ascending, the non-zero `b(j, k)` positions) streamed in CSC
/// order against the given frozen-or-current row map. Timing only — the
/// numerics are handled by the column-accumulate kernel.
pub(crate) fn simulate_round(
    a: &Csc,
    pattern: &[u32],
    pe_of_row: &[u32],
    p: SimParams,
    mut row_tasks: Option<&mut [u32]>,
    arena: &ScratchArena,
) -> SimRound {
    let n_pes = p.n_pes;
    let lat = p.lat;
    let bandwidth = p.bandwidth;

    // Per-PE and per-row scratch, checked out (zeroed) from the plan's
    // arena — only the vectors that stay internal to the round.
    // `owner_busy` and the queue high-water marks are *moved out* in the
    // return value, so they must own their allocations.
    let mut pending = arena.checkout_u32(n_pes);
    let mut sim_u64 = arena.checkout_u64(3 * n_pes + a.rows());
    let (last_seen, rest) = sim_u64.split_at_mut(n_pes);
    let (issue_until, rest) = rest.split_at_mut(n_pes);
    // `ready` is the per-row half (the big one on graph-sized operands).
    let (busy, ready) = rest.split_at_mut(n_pes);
    // Owner-attributed load: the distributor counts every task against
    // the PE that *owns* its row, before any local-sharing diversion.
    // The PESM profiles on this view — under sharing, executed-load
    // plateaus across a hot neighbourhood and would hide which PE's
    // rows cause the overload (see DESIGN.md, remote switching).
    let mut owner_busy = vec![0u64; n_pes];
    let mut max_q = vec![0u32; n_pes];

    let a_row_idx = a.row_idx();
    let a_col_ptr = a.col_ptr();

    let mut t: u64 = 0;
    let mut max_completion: u64 = 0;
    let mut raw_stalls: u64 = 0;

    for &j in pattern {
        let j = j as usize;
        for &row_id in &a_row_idx[a_col_ptr[j]..a_col_ptr[j + 1]] {
            let row = row_id as usize;
            let arrival = t / bandwidth;
            let owner = pe_of_row[row];
            owner_busy[owner as usize] += 1;
            let dest = match p.sharing {
                Some(sharing) => sharing.choose(owner, |q| {
                    let pe = q as usize;
                    (pending[pe] as u64).saturating_sub(arrival - last_seen[pe]) as usize
                }),
                None => owner,
            } as usize;

            // Commit the enqueue: lazily drain, then push.
            let drained = arrival - last_seen[dest];
            pending[dest] = (pending[dest] as u64).saturating_sub(drained) as u32 + 1;
            last_seen[dest] = arrival;
            if pending[dest] > max_q[dest] {
                max_q[dest] = pending[dest];
            }

            // Serial issue with RaW scoreboard. In `Park` mode the
            // stall buffer + accumulator forwarding hide the hazard
            // (the PE keeps issuing; we only count the event) — the
            // paper's design, without which a Nell hub row would
            // serialize at T cycles per non-zero and dwarf the
            // reported latencies. `Block` models the naive
            // head-of-line serialization as an ablation.
            let start = (issue_until[dest] + 1).max(arrival);
            let r_ready = ready[row];
            let (issue_cycle, complete) = if r_ready > start {
                raw_stalls += r_ready - start;
                match p.stall_mode {
                    StallMode::Block => (r_ready, r_ready + lat),
                    StallMode::Park => (start, start + lat),
                }
            } else {
                (start, start + lat)
            };
            issue_until[dest] = issue_cycle;
            ready[row] = complete;
            busy[dest] += 1;
            if complete > max_completion {
                max_completion = complete;
            }

            if let Some(rt) = row_tasks.as_deref_mut() {
                rt[row] += 1;
            }
            t += 1;
        }
    }

    SimRound {
        timing: RoundTiming {
            cycles: max_completion,
            tasks: t,
            max_pe_busy: busy.iter().copied().max().unwrap_or(0),
            min_pe_busy: busy.iter().copied().min().unwrap_or(0),
            max_queue_depth: max_q.iter().copied().max().unwrap_or(0) as usize,
            raw_stalls,
            queue_high_water: max_q,
        },
        owner_busy,
    }
}

/// Collects the non-zero pattern (ascending positions) and values of
/// `b[:, k]` — one "round" worth of dense-operand input.
pub(crate) fn column_pattern(b: &DenseMatrix, k: usize) -> (Vec<u32>, Vec<f32>) {
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for j in 0..b.rows() {
        let bjk = b.get(j, k);
        if bjk != 0.0 {
            cols.push(j as u32);
            vals.push(bjk);
        }
    }
    (cols, vals)
}

/// The non-zero positions of `b[:, k]` alone — the pattern half of
/// [`column_pattern`], for timing-only execution which never reads the
/// values (timing is a pure function of the pattern).
pub(crate) fn column_pattern_cols(b: &DenseMatrix, k: usize) -> Vec<u32> {
    (0..b.rows())
        .filter(|&j| b.get(j, k) != 0.0)
        .map(|j| j as u32)
        .collect()
}

/// Accumulates one round's numerics into `acc` (same f32 addition order as
/// the pre-replay per-task loop: `j` ascending, CSC index order).
pub(crate) fn accumulate_round(a: &Csc, cols: &[u32], vals: &[f32], acc: &mut [f32]) {
    for (&j, &bjk) in cols.iter().zip(vals) {
        csc_axpy_column(a, j as usize, bjk, acc);
    }
}

/// Writes the non-zero entries of a column accumulator into `c[:, k]`,
/// resetting the accumulator for reuse. Delegates to the shared sparse
/// kernel so the engine's emit/reset semantics (unconditional reset — a
/// `-0.0` cancellation residue must not leak across round-columns) can
/// never drift from the reference kernels'.
pub(crate) fn emit_column(c: &mut DenseMatrix, k: usize, acc: &mut [f32]) {
    awb_sparse::spmm::drain_column_into(c, k, acc);
}

/// The `(k0, width)` column blocks covering `start..end` in
/// [`ACC_BLOCK_LANES`]-wide steps (narrower final block for ranges not
/// divisible by the lane count).
pub(crate) fn block_spans(start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut k0 = start;
    while k0 < end {
        let width = ACC_BLOCK_LANES.min(end - k0);
        spans.push((k0, width));
        k0 += width;
    }
    spans
}

/// Computes every output column of `C = A × B` through the shared
/// blocked-accumulate kernel, fanning column *blocks* out on the [`exec`]
/// substrate with per-worker scratch checked out of `arena`. This is
/// exactly the numerics half of [`execute_steady`] (the blocked kernel's
/// pinned reduction order keeps it bit-identical to the per-column scalar
/// path — see `csc_accumulate_block`), exposed so the sharded executor
/// can pin its merged output bit-identical to the unsharded engines while
/// simulating timing per shard.
pub(crate) fn compute_columns(
    a: &Csc,
    b: &DenseMatrix,
    threads: usize,
    arena: &ScratchArena,
    c: &mut DenseMatrix,
) {
    let n_rows = a.rows();
    let blocks = block_spans(0, b.cols());
    let accs = exec::par_map_threads(threads, &blocks, |&(k0, width)| {
        let mut acc = arena.checkout_f32(n_rows * width);
        csc_accumulate_block(a, b, k0, width, &mut acc);
        acc
    });
    for (&(k0, width), mut acc) in blocks.iter().zip(accs) {
        drain_block_into(c, k0, width, &mut acc);
    }
}

/// FNV-1a over the operand's sparsity structure (shape, column pointers,
/// row indices). Values are excluded on purpose: timing never depends on
/// them, only the numerics — which are recomputed every round.
pub(crate) fn structure_fingerprint(a: &Csc) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(a.rows() as u64);
    mix(a.cols() as u64);
    mix(a.nnz() as u64);
    for &p in a.col_ptr() {
        mix(p as u64);
    }
    for &i in a.row_idx() {
        mix(i as u64);
    }
    h
}

/// The steady-state replay cache: memoized round timings keyed by the
/// round's non-zero column pattern, guarded by the operand's structure
/// fingerprint (see module docs for the sharing model).
#[derive(Debug, Default)]
pub(crate) struct ReplayCache {
    timings: RwLock<HashMap<Vec<u32>, RoundTiming>>,
    /// Structure fingerprint the cached timings describe (None = empty).
    fingerprint: Mutex<Option<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for ReplayCache {
    /// Snapshots the cache contents; the hit/miss counters restart at zero
    /// (they count activity *on this instance*, e.g. a freshly extracted
    /// plan's serving traffic).
    fn clone(&self) -> Self {
        ReplayCache {
            timings: RwLock::new(self.read_timings().clone()),
            fingerprint: Mutex::new(*self.lock_fingerprint()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl ReplayCache {
    pub(crate) fn new() -> Self {
        ReplayCache::default()
    }

    /// Poison-recovering read lock on the timing map.
    ///
    /// A worker that panics while holding a guard (e.g. a fault-injected
    /// request on a shared cached plan) poisons the `RwLock`; recovering
    /// via `into_inner` is sound here because the map only ever holds
    /// *complete* key→value pairs of deterministic timings — inserts are
    /// single `HashMap::insert` calls, and timings are pure functions of
    /// their key — so the post-panic state is always a consistent prefix
    /// of completed work, never a torn entry.
    fn read_timings(&self) -> RwLockReadGuard<'_, HashMap<Vec<u32>, RoundTiming>> {
        self.timings.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Poison-recovering write lock (see [`ReplayCache::read_timings`]).
    fn write_timings(&self) -> RwLockWriteGuard<'_, HashMap<Vec<u32>, RoundTiming>> {
        self.timings.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Poison-recovering lock on the guarding fingerprint: the value is a
    /// plain `Option<u64>` written atomically, so recovery is trivially
    /// sound.
    fn lock_fingerprint(&self) -> MutexGuard<'_, Option<u64>> {
        self.fingerprint
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Ensures the cache describes the operand with fingerprint `fp`,
    /// clearing stale timings from a structurally different operand.
    pub(crate) fn guard(&self, fp: u64) {
        let mut current = self.lock_fingerprint();
        if *current != Some(fp) {
            self.write_timings().clear();
            *current = Some(fp);
        }
    }

    /// Drops all cached timings and the fingerprint.
    pub(crate) fn clear(&self) {
        self.write_timings().clear();
        *self.lock_fingerprint() = None;
    }

    /// Rounds served from the cache.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Rounds that had to be simulated and were then memoized.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached distinct patterns.
    pub(crate) fn len(&self) -> usize {
        self.read_timings().len()
    }

    /// Approximate heap bytes held by the memoized timings: per entry, the
    /// key's pattern (`u32` per non-zero position), the per-PE queue
    /// high-water vector (`u32` per PE), and the fixed `RoundTiming`
    /// scalars. An estimate for plan-cache memory budgeting, not an
    /// allocator-exact figure.
    pub(crate) fn approx_bytes(&self) -> usize {
        let timings = self.read_timings();
        timings
            .iter()
            .map(|(key, timing)| {
                (key.len() + timing.queue_high_water.len()) * std::mem::size_of::<u32>()
                    + std::mem::size_of::<RoundTiming>()
            })
            .sum()
    }
}

/// Inputs of one steady-state (frozen-map) execution span.
pub(crate) struct SteadySpan<'a> {
    pub a: &'a Csc,
    pub b: &'a DenseMatrix,
    /// First column index of the span (columns `start..b.cols()` run).
    pub start: usize,
    pub pe_of_row: &'a [u32],
    pub params: SimParams,
    pub memory: MemoryParams,
    pub threads: usize,
    /// `None` disables replay (straight simulation of every round).
    pub cache: Option<&'a ReplayCache>,
    /// Scratch pool for accumulator/simulator buffers (the plan's arena,
    /// or the engine's own for cold runs).
    pub arena: &'a ScratchArena,
    /// When `false`, the numerics half is skipped entirely (timing-only
    /// execution): no accumulate fan-out, no column writes — `c` is left
    /// untouched. Timing is a pure function of the non-zero *pattern*, so
    /// every statistic is bit-identical either way. Used by shard-member
    /// engines whose partial numerics the pinned merge would discard.
    pub compute_values: bool,
}

/// Executes columns `start..b.cols()` under a frozen row map: repeated
/// patterns replay from the cache, fresh work fans out on the
/// [`exec`] substrate, and each round's output column is accumulated
/// through the tight slice kernel. Appends to `rounds`, merges per-PE
/// queue high-water marks, and writes output columns of `c`.
pub(crate) fn execute_steady(
    span: SteadySpan<'_>,
    c: &mut DenseMatrix,
    rounds: &mut Vec<RoundStats>,
    queue_high_water: &mut [u32],
) {
    let b = span.b;
    if span.start >= b.cols() {
        return;
    }
    let n_rows = span.a.rows();
    // The timing rounds need only the non-zero *patterns*; the numerics
    // below read the values straight out of `b` per block.
    let patterns: Vec<Vec<u32>> = (span.start..b.cols())
        .map(|k| column_pattern_cols(b, k))
        .collect();

    let timings: Vec<RoundTiming> = match span.cache {
        Some(cache) => {
            // First occurrence of an uncached pattern is a miss and is
            // simulated (in parallel across distinct patterns); every
            // other round replays.
            let mut to_sim: Vec<Vec<u32>> = Vec::new();
            {
                let cached = cache.read_timings();
                let mut queued: HashSet<&[u32]> = HashSet::new();
                for cols in &patterns {
                    if !cached.contains_key(cols.as_slice()) && queued.insert(cols.as_slice()) {
                        to_sim.push(cols.clone());
                    }
                }
            }
            cache
                .misses
                .fetch_add(to_sim.len() as u64, Ordering::Relaxed);
            cache
                .hits
                .fetch_add((patterns.len() - to_sim.len()) as u64, Ordering::Relaxed);
            let fresh = exec::par_map_threads(span.threads, &to_sim, |cols| {
                simulate_round(span.a, cols, span.pe_of_row, span.params, None, span.arena).timing
            });
            // Promote fresh timings into the shared cache up to the size
            // cap; past it (an all-distinct-patterns operand that would
            // never replay anyway) they only serve this call, bounding
            // the cache's memory. Timings are deterministic per key, so
            // a concurrent session inserting the same key writes the
            // same value.
            let mut overflow: HashMap<Vec<u32>, RoundTiming> = HashMap::new();
            {
                let mut cached = cache.write_timings();
                for (key, timing) in to_sim.into_iter().zip(fresh) {
                    if cached.len() < REPLAY_CACHE_CAP || cached.contains_key(&key) {
                        cached.insert(key, timing);
                    } else {
                        overflow.insert(key, timing);
                    }
                }
            }
            let cached = cache.read_timings();
            patterns
                .iter()
                .map(|cols| {
                    cached
                        .get(cols.as_slice())
                        .or_else(|| overflow.get(cols.as_slice()))
                        .expect("simulated above")
                        .clone()
                })
                .collect()
        }
        None => exec::par_map_threads(span.threads, &patterns, |cols| {
            simulate_round(span.a, cols, span.pe_of_row, span.params, None, span.arena).timing
        }),
    };

    // Numerics: B-columns in ACC_BLOCK_LANES-wide blocks, one worker per
    // block accumulating into arena scratch (skipped wholesale in
    // timing-only mode — see `SteadySpan::compute_values`). The blocked
    // kernel's pinned reduction order keeps the output bit-identical to
    // the per-column scalar path (see `csc_accumulate_block`).
    let blocks = block_spans(span.start, b.cols());
    let block_accs = if span.compute_values {
        exec::par_map_threads(span.threads, &blocks, |&(k0, width)| {
            let mut acc = span.arena.checkout_f32(n_rows * width);
            csc_accumulate_block(span.a, b, k0, width, &mut acc);
            acc
        })
    } else {
        Vec::new()
    };

    for (i, timing) in timings.iter().enumerate() {
        let k = span.start + i;
        // TQ sizing (the area model's input) uses steady-state rounds
        // only: the converged configuration is what production TQs are
        // provisioned for, exactly as the paper's §5.2 depth figures
        // (tuning-phase overflow is absorbed by backpressure).
        for (hw, &q) in queue_high_water.iter_mut().zip(&timing.queue_high_water) {
            *hw = (*hw).max(q);
        }
        // An on-chip operand pays its SPMMeM fill once (charged to round
        // 0); an off-chip operand's per-round streaming cost is already
        // captured by the throttled arrival rate.
        let fill = if k == 0 && span.memory.on_chip && timing.tasks > 0 {
            span.memory.fill_cycles
        } else {
            0
        };
        rounds.push(timing.to_stats(timing.cycles + fill, false));
    }
    for (&(k0, width), mut acc) in blocks.iter().zip(block_accs) {
        drain_block_into(c, k0, width, &mut acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(cycles: u64) -> RoundTiming {
        RoundTiming {
            cycles,
            tasks: 3,
            max_pe_busy: 2,
            min_pe_busy: 1,
            max_queue_depth: 4,
            raw_stalls: 0,
            queue_high_water: vec![1, 2],
        }
    }

    /// Poison both ReplayCache locks with a deliberate mid-guard panic and
    /// prove every operation still works afterwards — a panicked session
    /// must never brick a shared cached plan.
    #[test]
    fn poisoned_locks_recover_with_contents_intact() {
        let cache = ReplayCache::new();
        cache.guard(7);
        cache.write_timings().insert(vec![0, 1, 2], timing(42));

        std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                let _write = cache.timings.write().unwrap();
                panic!("deliberate poison");
            });
            assert!(h.join().is_err());
            let h = scope.spawn(|| {
                let _lock = cache.fingerprint.lock().unwrap();
                panic!("deliberate poison");
            });
            assert!(h.join().is_err());
        });
        assert!(cache.timings.is_poisoned());
        assert!(cache.fingerprint.is_poisoned());

        // Reads recover and see the pre-panic entry (inserts are atomic:
        // complete key→value pairs only).
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.read_timings().get([0, 1, 2].as_slice()),
            Some(&timing(42))
        );
        assert!(cache.approx_bytes() > 0);

        // A matching guard keeps the entry; the clone snapshots it.
        cache.guard(7);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clone().len(), 1);

        // Writes recover too: re-guard to a new fingerprint, then clear.
        cache.guard(8);
        assert_eq!(cache.len(), 0);
        cache.write_timings().insert(vec![5], timing(9));
        cache.clear();
        assert_eq!(cache.len(), 0);
    }
}
