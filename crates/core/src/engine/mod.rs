//! SPMM engine implementations and the plan/execute split.
//!
//! Two engines simulate the same architecture at different fidelity/cost
//! points:
//!
//! * [`FastEngine`] — O(1)-per-task queue-dynamics model; used for
//!   dataset-scale sweeps (millions to billions of MAC tasks),
//! * [`DetailedEngine`] — cycle-stepped simulation wiring the real
//!   `awb-hw` components (task queues, Omega network, MAC pipeline with
//!   RaW scoreboard); used for component-level studies and to validate the
//!   fast engine.
//!
//! Both implement [`SpmmEngine`]: an engine instance embodies one piece of
//! hardware *tuned to one sparse matrix* — running it again (e.g. `A` in
//! layer 2 after layer 1) reuses the auto-tuned row map, exactly the reuse
//! the paper's auto-tuning paradigm is about.
//!
//! That reuse is made first-class by the plan/execute split: a warm-up
//! phase ([`SpmmEngine::plan`]) produces a frozen, shareable [`TunedPlan`]
//! (row map + replay cache + structure fingerprint + config), and cheap
//! per-request [`SpmmSession`]s execute against `&TunedPlan` — so N
//! requests on one graph pay tuning once and hit the replay cache from
//! request 1. See `DESIGN.md` §6.
//!
//! The sharded layer ([`ShardedEngine`] → [`ShardedPlan`] →
//! [`ShardedSession`]) mirrors that shape across column-shard devices —
//! one timing-only `FastEngine`/session per shard, merged numerics
//! through the pinned global-order kernel — and serves both phases:
//! `A × (XW)` under `AccelConfig.shards`, each layer's `X × W` under
//! `AccelConfig.combination_shards`. See `DESIGN.md` §7/§8.
//!
//! The streaming layer ([`StreamingEngine`] → [`StreamedPlan`] →
//! [`StreamedSession`]) lifts the same shard pipeline out of core: shards
//! are planned from a chunked on-disk store's manifest and materialized
//! two at a time (compute on one, prefetch the next), so peak resident
//! sparse bytes stay under a host-memory budget while outputs remain
//! bit-identical. See `DESIGN.md` §13.

pub(crate) mod arena;
mod detailed;
mod fast;
mod plan;
mod sharded;
pub(crate) mod steady;
pub(crate) mod streaming;

pub use arena::{ArenaStats, Scratch, ScratchArena};
pub use detailed::{DetailedEngine, TdqMode};
pub use fast::FastEngine;
pub use plan::{SpmmSession, TunedPlan};
pub use sharded::{PlanShard, ShardedEngine, ShardedOutcome, ShardedPlan, ShardedSession};
pub use streaming::{StreamPlanShard, StreamStats, StreamedPlan, StreamedSession, StreamingEngine};

use crate::config::AccelConfig;
use crate::error::AccelError;
use crate::stats::SpmmStats;
use awb_sparse::{Csc, DenseMatrix};

/// Result of simulating one SPMM: the functional product and the cycle
/// statistics.
#[derive(Debug, Clone)]
pub struct SpmmOutcome {
    /// The computed `C = A × B`.
    pub c: DenseMatrix,
    /// Cycle/utilization statistics.
    pub stats: SpmmStats,
}

/// Result of a warm-up/plan phase: the reusable [`TunedPlan`] plus the
/// warm-up SPMM's own outcome (so the tuning pass is never wasted work).
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The frozen, shareable per-operand plan.
    pub plan: TunedPlan,
    /// The warm-up SPMM's result (tuning-phase rounds included).
    pub warmup: SpmmOutcome,
}

/// A simulated SPMM engine (one per sparse operand).
pub trait SpmmEngine {
    /// Simulates `C = A × B`, streaming `B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Shape`] on operand shape mismatch and
    /// [`AccelError::InvalidConfig`] when the engine is reused with a
    /// sparse operand of a different row count than it was tuned for.
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError>;

    /// Runs `warmup` as an auto-tuning warm-up on `a` and extracts a
    /// frozen [`TunedPlan`] for `a`: the converged row map (force-frozen
    /// if the warm-up had too few columns for natural convergence), the
    /// replay cache as warmed, the structure fingerprint, and the
    /// configuration. Subsequent requests execute via
    /// [`TunedPlan::session`] without re-paying tuning.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](SpmmEngine::run).
    fn plan(
        &mut self,
        a: &Csc,
        warmup: &DenseMatrix,
        label: &str,
    ) -> Result<PlanOutcome, AccelError>;

    /// The engine's configuration.
    fn config(&self) -> &AccelConfig;
}

pub(crate) fn check_shapes(a: &Csc, b: &DenseMatrix) -> Result<(), AccelError> {
    if a.cols() != b.rows() {
        return Err(AccelError::Shape(
            awb_sparse::SparseError::DimensionMismatch {
                left: a.shape(),
                right: b.shape(),
                op: "spmm_engine",
            },
        ));
    }
    Ok(())
}
