//! The tuned-plan layer: frozen per-operand tuning state, shareable across
//! requests.
//!
//! AWB-GCN's auto-tuning converges in a few rounds and the frozen row map
//! is then "used for the remaining iterations" (paper §4.4). A
//! [`TunedPlan`] is that converged artifact made first-class: the frozen
//! row→PE map, the steady-state replay cache, the operand's sparsity
//! fingerprint, and the configuration — everything that is a function of
//! *the graph*, none of what is a function of *one request*. Plans are
//! produced once per sparse operand by [`SpmmEngine::plan`] (a warm-up
//! phase on either engine) and then executed against any number of times
//! through cheap per-request [`SpmmSession`]s.
//!
//! # Concurrency contract
//!
//! A plan is `Sync`: any number of sessions may execute against one
//! `&TunedPlan` concurrently (the serving front-end fans request batches
//! out on [`exec`](crate::exec)). The frozen map and fingerprint are
//! immutable; the replay cache is interior-mutable and *monotone* — all
//! sessions read and warm the same cache, and because a pattern's timing
//! is a pure function of (operand structure, frozen map, pattern),
//! concurrent insertion of the same key writes the same value. Outcomes
//! (stats and output matrices) are therefore bit-identical regardless of
//! scheduling; only the aggregate hit/miss counters can vary when two
//! sessions race on the same uncached pattern (both count a miss).

use crate::config::AccelConfig;
use crate::engine::arena::{ArenaStats, ScratchArena};
use crate::engine::steady::{execute_steady, MemoryParams, ReplayCache, SimParams, SteadySpan};
use crate::engine::{check_shapes, PlanOutcome, SpmmEngine, SpmmOutcome};
use crate::error::AccelError;
use crate::exec;
use crate::mapping::RowMap;
use crate::rebalance::local::LocalSharing;
use crate::stats::SpmmStats;
use awb_sparse::{Csc, DenseMatrix};
use std::sync::Arc;

pub(crate) use crate::engine::steady::structure_fingerprint;

/// Frozen per-operand tuning state (see module docs): the reusable product
/// of a warm-up phase, executed against via [`SpmmSession`]s.
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, Design, FastEngine, SpmmEngine};
/// use awb_sparse::{Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Coo::new(4, 4);
/// a.push(0, 1, 2.0)?;
/// a.push(3, 0, 1.0)?;
/// let a = a.to_csc();
/// let warmup = DenseMatrix::from_rows(&[&[1.0], &[3.0], &[1.0], &[2.0]])?;
/// let config = Design::LocalPlusRemote { hop: 1 }.apply(AccelConfig::builder().n_pes(2).build()?);
///
/// // Pay tuning once…
/// let planned = FastEngine::new(config).plan(&a, &warmup, "warmup")?;
/// // …then serve N requests against the shared plan.
/// let b = DenseMatrix::from_rows(&[&[2.0], &[5.0], &[0.5], &[1.0]])?;
/// let out = planned.plan.session().run(&a, &b, "request")?;
/// assert_eq!(out.c.get(0, 0), 10.0);
/// assert_eq!(out.stats.tuning_rounds(), 0); // sessions never re-tune
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TunedPlan {
    config: AccelConfig,
    row_map: RowMap,
    fingerprint: u64,
    nnz: usize,
    memory: MemoryParams,
    tuning_rounds: usize,
    total_switches: u64,
    replay_enabled: bool,
    cache: ReplayCache,
    /// Scratch pool shared with the engine that froze this plan: every
    /// session checks its accumulator/simulator/output buffers out of
    /// here, so the buffers warmed during planning serve all later
    /// requests. Arena scratch is transient (bounded by the concurrent
    /// worker count) and deliberately *not* part of
    /// [`memory_bytes`](TunedPlan::memory_bytes) — the plan-cache budget
    /// tracks resident per-plan state, and evicting a plan frees its
    /// arena anyway; observe it via
    /// [`scratch_stats`](TunedPlan::scratch_stats).
    arena: Arc<ScratchArena>,
}

impl TunedPlan {
    /// Assembles a plan from an engine's frozen state (crate-internal; use
    /// [`SpmmEngine::plan`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_frozen(
        config: AccelConfig,
        row_map: RowMap,
        a: &Csc,
        tuning_rounds: usize,
        total_switches: u64,
        replay_enabled: bool,
        cache: ReplayCache,
        arena: Arc<ScratchArena>,
    ) -> Self {
        let fingerprint = structure_fingerprint(a);
        // The snapshot may hold timings for a *different* operand the
        // engine saw last; re-guard so the plan's cache only ever
        // describes its own operand.
        cache.guard(fingerprint);
        TunedPlan {
            memory: MemoryParams::for_operand(&config, a.nnz()),
            config,
            row_map,
            fingerprint,
            nnz: a.nnz(),
            tuning_rounds,
            total_switches,
            replay_enabled,
            cache,
            arena,
        }
    }

    /// The configuration the plan was tuned under.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The frozen row→PE map.
    pub fn row_map(&self) -> &RowMap {
        &self.row_map
    }

    /// FNV-1a fingerprint of the operand structure the plan is valid for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Non-zeros of the planned operand.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Auto-tuning rounds the warm-up spent before freezing.
    pub fn tuning_rounds(&self) -> usize {
        self.tuning_rounds
    }

    /// Rows exchanged by remote switching during the warm-up.
    pub fn total_switches(&self) -> u64 {
        self.total_switches
    }

    /// True when `a` has the structure this plan was tuned for.
    pub fn matches(&self, a: &Csc) -> bool {
        a.nnz() == self.nnz && structure_fingerprint(a) == self.fingerprint
    }

    /// Estimated heap bytes this plan holds resident: the frozen row→PE
    /// map (`u32` per row) plus the replay cache's memoized timings. The
    /// serving front-end's plan-cache budget is derived from these
    /// estimates (`DESIGN.md` §9); they track the dominant arrays, not
    /// allocator-exact overheads.
    pub fn memory_bytes(&self) -> u64 {
        (std::mem::size_of_val(self.row_map.pe_of_row()) + self.cache.approx_bytes()) as u64
    }

    /// Steady-state rounds served from the shared replay cache (summed
    /// over all sessions on this plan).
    pub fn replay_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Steady-state rounds that had to be simulated (and were memoized).
    pub fn replay_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Distinct memoized patterns currently held.
    pub fn cached_patterns(&self) -> usize {
        self.cache.len()
    }

    /// Allocation/reuse counters of the plan's scratch arena (shared by
    /// every session on this plan).
    pub fn scratch_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// The plan's scratch arena (crate-internal: the GCN layers recycle
    /// consumed intermediates into it).
    pub(crate) fn arena(&self) -> &Arc<ScratchArena> {
        &self.arena
    }

    /// Returns a finished output matrix's buffer to the plan's arena. A
    /// serving loop that hands back each response it is done with makes
    /// the steady state *exactly* allocation-free — without this, the one
    /// escaping output per request is the only fresh allocation left.
    pub fn recycle_output(&self, c: DenseMatrix) {
        self.arena.recycle_f32(c.into_vec());
    }

    /// Opens a per-request execution session against this plan.
    pub fn session(&self) -> SpmmSession<'_> {
        SpmmSession {
            plan: self,
            threads: self.config.threads,
            verify_operand: true,
            compute_values: true,
        }
    }

    /// A session that skips the per-run O(nnz) fingerprint re-hash.
    /// Crate-internal: only for callers that hold the exact operand the
    /// plan was built from (e.g. `GcnPlan`, which owns both the plan and
    /// its adjacency) — the shape/row-count checks still run.
    pub(crate) fn session_trusted(&self) -> SpmmSession<'_> {
        SpmmSession {
            plan: self,
            threads: self.config.threads,
            verify_operand: false,
            compute_values: true,
        }
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            n_pes: self.config.n_pes,
            lat: self.config.mac_latency as u64,
            bandwidth: self.memory.bandwidth,
            stall_mode: self.config.stall_mode,
            sharing: (self.config.local_hop > 0)
                .then(|| LocalSharing::new(self.config.local_hop, self.config.n_pes)),
        }
    }
}

/// A cheap per-request executor over a shared [`TunedPlan`].
///
/// Every round runs under the frozen map (no tuning, ever), so repeated
/// patterns replay from the plan's cache starting with the very first
/// request. Implements [`SpmmEngine`], so a session is a drop-in engine
/// wherever one is expected.
#[derive(Debug, Clone)]
pub struct SpmmSession<'p> {
    plan: &'p TunedPlan,
    threads: Option<usize>,
    /// Whether `run` re-hashes the operand's structure against the plan's
    /// fingerprint (false only via `TunedPlan::session_trusted`).
    verify_operand: bool,
    /// Whether `run` computes the numerics (false = timing-only, `c`
    /// stays all-zeros; stats are bit-identical either way).
    compute_values: bool,
}

impl SpmmSession<'_> {
    /// The plan this session executes against.
    pub fn plan(&self) -> &TunedPlan {
        self.plan
    }

    /// Overrides the worker-thread count for this session (`None` restores
    /// the [`exec::num_threads`] default). Results are bit-identical at
    /// any setting; this only affects wall-clock.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Enables or disables the numerics half of [`run`](SpmmEngine::run)
    /// (enabled by default) — the session analogue of
    /// [`FastEngine::set_values_enabled`](crate::FastEngine::set_values_enabled).
    /// With values disabled the returned `c` is all-zeros while every
    /// statistic (and the shared replay cache's behaviour) stays
    /// bit-identical. Shard-member sessions run timing-only because the
    /// sharded merge recomputes the output through the pinned
    /// global-order kernel.
    pub fn set_values_enabled(&mut self, on: bool) {
        self.compute_values = on;
    }
}

impl SpmmEngine for SpmmSession<'_> {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        check_shapes(a, b)?;
        let plan = self.plan;
        if a.rows() != plan.row_map.n_rows() {
            return Err(AccelError::InvalidConfig(format!(
                "plan tuned for {} rows used with {} rows",
                plan.row_map.n_rows(),
                a.rows()
            )));
        }
        if self.verify_operand {
            let fingerprint = structure_fingerprint(a);
            if a.nnz() != plan.nnz || fingerprint != plan.fingerprint {
                return Err(AccelError::InvalidConfig(format!(
                    "operand structure fingerprint {:#018x} does not match the plan's {:#018x} \
                     (plans are valid for exactly one sparsity structure)",
                    fingerprint, plan.fingerprint
                )));
            }
        }
        let n_pes = plan.config.n_pes;
        // Output and scratch come from the plan's shared arena: a warm
        // arena makes the per-request steady path allocation-free.
        let mut c =
            DenseMatrix::from_vec(a.rows(), b.cols(), plan.arena.take_f32(a.rows() * b.cols()))
                .expect("arena buffer sized to the output matrix");
        let mut rounds = Vec::with_capacity(b.cols());
        let mut queue_high_water = vec![0u32; n_pes];
        // The cache is shared only when the operand is resident on chip
        // (the same validity condition as the engine's replay path).
        let cache = (plan.replay_enabled && plan.memory.on_chip).then_some(&plan.cache);
        execute_steady(
            SteadySpan {
                a,
                b,
                start: 0,
                pe_of_row: plan.row_map.pe_of_row(),
                params: plan.sim_params(),
                memory: plan.memory,
                threads: self.threads.unwrap_or_else(exec::num_threads),
                cache,
                arena: &plan.arena,
                compute_values: self.compute_values,
            },
            &mut c,
            &mut rounds,
            &mut queue_high_water,
        );
        Ok(SpmmOutcome {
            c,
            stats: SpmmStats {
                label: label.to_owned(),
                n_pes,
                rounds,
                queue_high_water,
            },
        })
    }

    fn plan(
        &mut self,
        a: &Csc,
        warmup: &DenseMatrix,
        label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        // A session is already backed by a plan; "planning" on it runs the
        // warm-up through the session and hands back a snapshot of the
        // underlying plan (cache included).
        let outcome = self.run(a, warmup, label)?;
        Ok(PlanOutcome {
            plan: self.plan.clone(),
            warmup: outcome,
        })
    }

    fn config(&self) -> &AccelConfig {
        &self.plan.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use crate::engine::FastEngine;
    use awb_sparse::Coo;

    fn skewed(n: usize, heavy_nnz: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..heavy_nnz.min(n) {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, (c + 1) % n, 0.5).unwrap();
        }
        for r in 2..n {
            coo.push(r, (r * 7) % n, 1.0).unwrap();
        }
        coo.to_csc()
    }

    fn dense(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) - 3.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    /// A zero-free dense operand: every column shares the all-rows
    /// pattern, so a plan warmed with it has the pattern of any other
    /// zero-free request already cached.
    fn dense_full(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) + 1.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    fn planned(n: usize, heavy: usize, n_pes: usize) -> (Csc, TunedPlan) {
        let a = skewed(n, heavy);
        let warmup = dense_full(n, 8);
        let config = Design::LocalPlusRemote { hop: 1 }
            .apply(AccelConfig::builder().n_pes(n_pes).build().unwrap());
        let out = FastEngine::new(config).plan(&a, &warmup, "warmup").unwrap();
        (a, out.plan)
    }

    #[test]
    fn plan_freezes_tuning_and_sessions_never_tune() {
        let (a, plan) = planned(128, 100, 16);
        assert!(plan.tuning_rounds() > 0);
        assert!(plan.total_switches() > 0);
        let out = plan.session().run(&a, &dense(128, 6), "req").unwrap();
        assert_eq!(out.stats.tuning_rounds(), 0);
        assert_eq!(out.stats.rounds.len(), 6);
    }

    #[test]
    fn session_matches_warm_engine_bitwise() {
        // A session over a frozen plan must reproduce exactly what the
        // engine that built the plan produces on its next (fully frozen)
        // run.
        let a = skewed(96, 60);
        let b = dense(96, 10);
        let config = Design::LocalPlusRemote { hop: 2 }
            .apply(AccelConfig::builder().n_pes(8).build().unwrap());
        let mut engine = FastEngine::new(config);
        let planned = engine.plan(&a, &b, "warmup").unwrap();
        let from_engine = engine.run(&a, &b, "req").unwrap();
        let from_session = planned.plan.session().run(&a, &b, "req").unwrap();
        assert_eq!(from_engine.stats, from_session.stats);
        assert_eq!(from_engine.c, from_session.c);
    }

    #[test]
    fn shared_cache_warms_across_sessions() {
        let (a, plan) = planned(64, 40, 8);
        let b = DenseMatrix::from_vec(64, 4, vec![1.0; 256]).unwrap();
        let before = plan.replay_hits();
        plan.session().run(&a, &b, "r1").unwrap();
        let after_first = plan.replay_hits();
        plan.session().run(&a, &b, "r2").unwrap();
        let after_second = plan.replay_hits();
        // All four columns share one (fully dense) pattern; the warm-up
        // already cached it, so hits strictly increase from request 1 on.
        assert!(after_first > before, "{before} -> {after_first}");
        assert!(after_second > after_first);
        assert_eq!(plan.replay_misses(), 0);
    }

    #[test]
    fn plan_rejects_mismatched_structure() {
        let (_, plan) = planned(64, 40, 8);
        // Same shape and row count, different sparsity structure.
        let other = skewed(64, 20);
        let err = plan.session().run(&other, &dense(64, 2), "req");
        assert!(matches!(err, Err(AccelError::InvalidConfig(_))));
        assert!(!plan.matches(&other));
        // Different row count is also rejected.
        let small = skewed(32, 10);
        assert!(matches!(
            plan.session().run(&small, &dense(32, 2), "req"),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn concurrent_sessions_agree_with_sequential() {
        let (a, plan) = planned(96, 60, 8);
        let requests: Vec<DenseMatrix> = (0..6)
            .map(|i| {
                DenseMatrix::from_vec(
                    96,
                    5,
                    (0..96 * 5).map(|j| ((i + j) % 5) as f32 - 1.0).collect(),
                )
                .unwrap()
            })
            .collect();
        let sequential: Vec<SpmmOutcome> = requests
            .iter()
            .map(|b| plan.session().run(&a, b, "req").unwrap())
            .collect();
        let concurrent =
            exec::par_map_threads(4, &requests, |b| plan.session().run(&a, b, "req").unwrap());
        for (s, p) in sequential.iter().zip(&concurrent) {
            assert_eq!(s.stats, p.stats);
            assert_eq!(s.c, p.c);
        }
    }
}
