//! The fast SPMM engine: O(1) work per MAC task.
//!
//! Models the architecture at queue-dynamics granularity:
//!
//! * the distributor delivers `n_pes` non-zero tasks per cycle in stream
//!   order (TDQ-1's rate-matched fetch and TDQ-2's CSC stream both sustain
//!   this in the paper's design),
//! * every PE issues at most one MAC per cycle and drains its queue in
//!   FIFO order,
//! * local sharing compares (lazily drained) pending-task counters within
//!   the hop window at enqueue time,
//! * the RaW scoreboard extends per-row completion times (optionally
//!   blocking the issue slot, see [`StallMode`](crate::StallMode)),
//! * remote switching and auto-tuning run between rounds on the per-round
//!   PE-busy profile.
//!
//! The model is validated against [`DetailedEngine`](super::DetailedEngine)
//! in the crate's integration tests.

use crate::config::{AccelConfig, StallMode};
use crate::engine::{check_shapes, SpmmEngine, SpmmOutcome};
use crate::error::AccelError;
use crate::mapping::RowMap;
use crate::rebalance::autotuner::AutoTuner;
use crate::rebalance::local::LocalSharing;
use crate::rebalance::remote::RoundProfile;
use crate::stats::{RoundStats, SpmmStats};
use awb_sparse::{Csc, DenseMatrix};

/// Fast queue-dynamics engine (see module docs).
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, FastEngine, SpmmEngine};
/// use awb_sparse::{Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Coo::new(4, 4);
/// a.push(0, 1, 2.0)?;
/// a.push(3, 0, 1.0)?;
/// let b = DenseMatrix::from_rows(&[&[1.0], &[3.0], &[0.0], &[0.0]])?;
/// let config = AccelConfig::builder().n_pes(2).build()?;
/// let mut engine = FastEngine::new(config);
/// let out = engine.run(&a.to_csc(), &b, "demo")?;
/// assert_eq!(out.c.get(0, 0), 6.0);
/// assert!(out.stats.total_cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FastEngine {
    config: AccelConfig,
    sharing: Option<LocalSharing>,
    map: Option<RowMap>,
    tuner: Option<AutoTuner>,
}

impl FastEngine {
    /// Creates an engine; the row map is initialized lazily from the first
    /// sparse operand.
    pub fn new(config: AccelConfig) -> Self {
        FastEngine {
            config,
            sharing: None,
            map: None,
            tuner: None,
        }
    }

    /// The current row→PE map (None before the first run).
    pub fn row_map(&self) -> Option<&RowMap> {
        self.map.as_ref()
    }

    /// Rows exchanged by remote switching so far.
    pub fn total_switches(&self) -> u64 {
        self.tuner.as_ref().map_or(0, |t| t.total_switches())
    }

    /// Whether the auto-tuner is still adjusting.
    pub fn tuning_active(&self) -> bool {
        self.tuner.as_ref().is_some_and(|t| t.is_active())
    }

    fn ensure_state(&mut self, n_rows: usize) -> Result<(), AccelError> {
        match &self.map {
            Some(map) if map.n_rows() != n_rows => Err(AccelError::InvalidConfig(format!(
                "engine tuned for {} rows reused with {} rows",
                map.n_rows(),
                n_rows
            ))),
            Some(_) => Ok(()),
            None => {
                self.map = Some(RowMap::new(n_rows, self.config.n_pes, self.config.mapping));
                self.tuner = Some(AutoTuner::new(&self.config, n_rows));
                self.sharing = Some(LocalSharing::new(self.config.local_hop, self.config.n_pes));
                Ok(())
            }
        }
    }
}

impl SpmmEngine for FastEngine {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        check_shapes(a, b)?;
        self.ensure_state(a.rows())?;
        let n_pes = self.config.n_pes;
        let n_rows = a.rows();
        let lat = self.config.mac_latency as u64;
        // The distributor's delivery rate: full speed when SPMMeM holds
        // the operand on chip, bandwidth-bound when it must stream.
        let bandwidth = self
            .config
            .memory
            .delivery_rate_limit(a.nnz(), n_pes)
            .max(1) as u64;
        let on_chip = self.config.memory.fits_on_chip(a.nnz());
        let stall_mode = self.config.stall_mode;
        let sharing = self.sharing.expect("initialized in ensure_state");
        let use_sharing = self.config.local_hop > 0;
        let map = self.map.as_mut().expect("initialized in ensure_state");
        let tuner = self.tuner.as_mut().expect("initialized in ensure_state");

        // Per-PE scratch.
        let mut pending = vec![0u32; n_pes];
        let mut last_seen = vec![0u64; n_pes];
        let mut issue_until = vec![0u64; n_pes];
        let mut busy = vec![0u64; n_pes];
        // Owner-attributed load: the distributor counts every task against
        // the PE that *owns* its row, before any local-sharing diversion.
        // The PESM profiles on this view — under sharing, executed-load
        // plateaus across a hot neighbourhood and would hide which PE's
        // rows cause the overload (see DESIGN.md, remote switching).
        let mut owner_busy = vec![0u64; n_pes];
        let mut max_q = vec![0u32; n_pes];
        // Per-row scratch.
        let mut ready = vec![0u64; n_rows];
        let mut col_acc = vec![0f32; n_rows];
        let mut row_tasks: Vec<u32> = Vec::new();

        let mut c = DenseMatrix::zeros(n_rows, b.cols());
        let mut rounds = Vec::with_capacity(b.cols());
        let mut queue_high_water = vec![0u32; n_pes];

        let a_row_idx = a.row_idx();
        let a_values = a.values();
        let a_col_ptr = a.col_ptr();

        for k in 0..b.cols() {
            pending.fill(0);
            last_seen.fill(0);
            issue_until.fill(0);
            busy.fill(0);
            owner_busy.fill(0);
            max_q.fill(0);
            ready.fill(0);
            let tuning = tuner.is_active();
            let collect_rows = tuner.needs_row_counts();
            if collect_rows {
                row_tasks.clear();
                row_tasks.resize(n_rows, 0);
            }
            let pe_of_row = map.pe_of_row();

            let mut t: u64 = 0;
            let mut max_completion: u64 = 0;
            let mut raw_stalls: u64 = 0;

            for j in 0..a.cols() {
                let bjk = b.get(j, k);
                if bjk == 0.0 {
                    continue;
                }
                for idx in a_col_ptr[j]..a_col_ptr[j + 1] {
                    let row = a_row_idx[idx] as usize;
                    let product = a_values[idx] * bjk;
                    let arrival = t / bandwidth;
                    let owner = pe_of_row[row];
                    owner_busy[owner as usize] += 1;
                    let dest = if use_sharing {
                        sharing.choose(owner, |p| {
                            let pe = p as usize;
                            (pending[pe] as u64).saturating_sub(arrival - last_seen[pe]) as usize
                        })
                    } else {
                        owner
                    } as usize;

                    // Commit the enqueue: lazily drain, then push.
                    let drained = arrival - last_seen[dest];
                    pending[dest] = (pending[dest] as u64).saturating_sub(drained) as u32 + 1;
                    last_seen[dest] = arrival;
                    if pending[dest] > max_q[dest] {
                        max_q[dest] = pending[dest];
                    }

                    // Serial issue with RaW scoreboard. In `Park` mode the
                    // stall buffer + accumulator forwarding hide the hazard
                    // (the PE keeps issuing; we only count the event) — the
                    // paper's design, without which a Nell hub row would
                    // serialize at T cycles per non-zero and dwarf the
                    // reported latencies. `Block` models the naive
                    // head-of-line serialization as an ablation.
                    let start = (issue_until[dest] + 1).max(arrival);
                    let r_ready = ready[row];
                    let (issue_cycle, complete) = if r_ready > start {
                        raw_stalls += r_ready - start;
                        match stall_mode {
                            StallMode::Block => (r_ready, r_ready + lat),
                            StallMode::Park => (start, start + lat),
                        }
                    } else {
                        (start, start + lat)
                    };
                    issue_until[dest] = issue_cycle;
                    ready[row] = complete;
                    busy[dest] += 1;
                    if complete > max_completion {
                        max_completion = complete;
                    }

                    col_acc[row] += product;
                    if collect_rows {
                        row_tasks[row] += 1;
                    }
                    t += 1;
                }
            }

            // Barrier: the round ends when the last MAC drains. An
            // on-chip operand pays its SPMMeM fill once (charged to round
            // 0); an off-chip operand's per-round streaming cost is
            // already captured by the throttled arrival rate.
            //
            // TQ sizing (the area model's input) uses steady-state rounds
            // only: the converged configuration is what production TQs are
            // provisioned for, exactly as the paper's §5.2 depth figures
            // (tuning-phase overflow is absorbed by backpressure).
            if !tuning {
                for (hw, &q) in queue_high_water.iter_mut().zip(&max_q) {
                    *hw = (*hw).max(q);
                }
            }
            let fill = if k == 0 && on_chip && t > 0 {
                self.config.memory.fill_cycles(a.nnz())
            } else {
                0
            };
            let cycles = max_completion + fill;
            let max_pe_busy = busy.iter().copied().max().unwrap_or(0);
            let min_pe_busy = busy.iter().copied().min().unwrap_or(0);
            rounds.push(RoundStats {
                cycles,
                tasks: t,
                busy_cycles: t,
                max_pe_busy,
                min_pe_busy,
                max_queue_depth: max_q.iter().copied().max().unwrap_or(0) as usize,
                raw_stalls,
                tuning_active: tuning,
            });

            // Auto-tuning between rounds.
            if tuning && t > 0 {
                let util = t as f64 / (cycles.max(1) as f64 * n_pes as f64);
                let profile = RoundProfile {
                    per_pe_busy: owner_busy.clone(),
                    per_row_tasks: collect_rows.then(|| row_tasks.clone()),
                };
                tuner.observe_round(&profile, util, map);
            }

            // Emit column k and reset the accumulators.
            for (row, acc) in col_acc.iter_mut().enumerate() {
                if *acc != 0.0 {
                    c.set(row, k, *acc);
                    *acc = 0.0;
                }
            }
        }

        Ok(SpmmOutcome {
            c,
            stats: SpmmStats {
                label: label.to_owned(),
                n_pes,
                rounds,
                queue_high_water,
            },
        })
    }

    fn config(&self) -> &AccelConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Design, MappingKind, SltPolicy};
    use awb_sparse::{spmm, Coo};

    fn config(n_pes: usize) -> AccelConfig {
        AccelConfig::builder().n_pes(n_pes).build().unwrap()
    }

    /// A matrix with one very heavy row block (rows 0..2) and light rest.
    fn skewed(n: usize, heavy_nnz: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..heavy_nnz.min(n) {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, (c + 1) % n, 0.5).unwrap();
        }
        for r in 2..n {
            coo.push(r, (r * 7) % n, 1.0).unwrap();
        }
        coo.to_csc()
    }

    fn dense(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) - 3.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn functional_output_matches_reference() {
        let a = skewed(64, 40);
        let b = dense(64, 8);
        for design in [
            Design::Baseline,
            Design::LocalSharing { hop: 2 },
            Design::LocalPlusRemote { hop: 2 },
        ] {
            let mut engine = FastEngine::new(design.apply(config(8)));
            let out = engine.run(&a, &b, "t").unwrap();
            let expect = spmm::csc_times_dense(&a, &b).unwrap();
            assert!(
                out.c.approx_eq(&expect, 1e-4),
                "{design:?}: max diff {}",
                out.c.max_abs_diff(&expect).unwrap()
            );
        }
    }

    #[test]
    fn task_conservation() {
        let a = skewed(64, 40);
        let b = dense(64, 8);
        let mut engine = FastEngine::new(config(8));
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(
            out.stats.total_tasks(),
            spmm::csc_times_dense_macs(&a, &b) as u64
        );
    }

    #[test]
    fn local_sharing_improves_utilization_on_local_imbalance() {
        // Adjacent heavy rows: exactly the "local imbalance" case.
        let a = skewed(64, 48);
        let b = dense(64, 6);
        let mut base = FastEngine::new(Design::Baseline.apply(config(16)));
        let u_base = base.run(&a, &b, "t").unwrap().stats.utilization();
        let mut ls = FastEngine::new(Design::LocalSharing { hop: 2 }.apply(config(16)));
        let u_ls = ls.run(&a, &b, "t").unwrap().stats.utilization();
        assert!(u_ls > u_base, "base {u_base} ls {u_ls}");
    }

    #[test]
    fn remote_switching_moves_rows_and_freezes() {
        let a = skewed(128, 100);
        let b = dense(128, 16);
        let mut engine = FastEngine::new(Design::LocalPlusRemote { hop: 1 }.apply(config(16)));
        let out = engine.run(&a, &b, "t").unwrap();
        assert!(engine.total_switches() > 0, "no rows switched");
        assert!(
            !engine.tuning_active(),
            "tuner should freeze within 16 rounds"
        );
        assert!(out.stats.tuning_rounds() > 0);
        assert!(out.stats.tuning_rounds() < out.stats.rounds.len());
        assert!(engine.row_map().unwrap().is_consistent());
    }

    #[test]
    fn engine_reuse_keeps_tuned_map() {
        let a = skewed(128, 100);
        let b = dense(128, 16);
        let mut engine = FastEngine::new(Design::LocalPlusRemote { hop: 1 }.apply(config(16)));
        engine.run(&a, &b, "first").unwrap();
        let switches_after_first = engine.total_switches();
        let out2 = engine.run(&a, &b, "second").unwrap();
        // Second run reuses the frozen configuration: no further switching.
        assert_eq!(engine.total_switches(), switches_after_first);
        assert_eq!(out2.stats.tuning_rounds(), 0);
    }

    #[test]
    fn engine_rejects_different_matrix() {
        let a = skewed(64, 10);
        let b = dense(64, 2);
        let mut engine = FastEngine::new(config(8));
        engine.run(&a, &b, "t").unwrap();
        let a2 = skewed(32, 10);
        let b2 = dense(32, 2);
        assert!(matches!(
            engine.run(&a2, &b2, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = skewed(16, 4);
        let b = dense(8, 2);
        let mut engine = FastEngine::new(config(4));
        assert!(matches!(engine.run(&a, &b, "t"), Err(AccelError::Shape(_))));
    }

    #[test]
    fn sync_plus_ideal_consistent() {
        let a = skewed(64, 30);
        let b = dense(64, 4);
        let mut engine = FastEngine::new(config(8));
        let stats = engine.run(&a, &b, "t").unwrap().stats;
        assert_eq!(
            stats.total_cycles(),
            stats.ideal_cycles() + stats.sync_cycles()
        );
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
    }

    #[test]
    fn raw_hazard_stalls_counted_on_hot_row() {
        // Single row receives every task: maximal RaW pressure.
        let n = 32;
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
        }
        let a = coo.to_csc();
        let b = dense(n, 2);
        let mut engine = FastEngine::new(config(4));
        let stats = engine.run(&a, &b, "t").unwrap().stats;
        assert!(stats.raw_stalls() > 0);
    }

    #[test]
    fn block_mode_slower_than_park_under_hazards() {
        let n = 32;
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
            coo.push(5, c, 1.0).unwrap();
        }
        let a = coo.to_csc();
        let b = dense(n, 2);
        let mut park_cfg = config(4);
        park_cfg.stall_mode = StallMode::Park;
        let mut block_cfg = config(4);
        block_cfg.stall_mode = StallMode::Block;
        let park = FastEngine::new(park_cfg).run(&a, &b, "t").unwrap().stats;
        let block = FastEngine::new(block_cfg).run(&a, &b, "t").unwrap().stats;
        assert!(block.total_cycles() >= park.total_cycles());
    }

    #[test]
    fn degree_aware_slt_runs() {
        let a = skewed(128, 80);
        let b = dense(128, 16);
        let mut cfg = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        cfg.slt_policy = SltPolicy::DegreeAware;
        let mut engine = FastEngine::new(cfg);
        let out = engine.run(&a, &b, "t").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
        assert!(engine.total_switches() > 0);
    }

    #[test]
    fn cyclic_mapping_works() {
        let a = skewed(64, 20);
        let b = dense(64, 4);
        let mut cfg = config(8);
        cfg.mapping = MappingKind::Cyclic;
        let out = FastEngine::new(cfg).run(&a, &b, "t").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
    }

    #[test]
    fn empty_operands() {
        let a = Coo::new(8, 8).to_csc();
        let b = DenseMatrix::zeros(8, 0);
        let mut engine = FastEngine::new(config(4));
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(out.c.shape(), (8, 0));
        assert_eq!(out.stats.total_cycles(), 0);
    }

    #[test]
    fn queue_depth_shrinks_with_rebalancing() {
        let a = skewed(256, 200);
        let b = dense(256, 16);
        let base = FastEngine::new(Design::Baseline.apply(config(32)))
            .run(&a, &b, "t")
            .unwrap()
            .stats;
        let tuned = FastEngine::new(Design::LocalPlusRemote { hop: 2 }.apply(config(32)))
            .run(&a, &b, "t")
            .unwrap()
            .stats;
        assert!(
            tuned.max_queue_depth() < base.max_queue_depth(),
            "base {} tuned {}",
            base.max_queue_depth(),
            tuned.max_queue_depth()
        );
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use crate::config::Design;
    use awb_hw::MemoryModel;
    use awb_sparse::Coo;

    fn operand(n: usize) -> (Csc, DenseMatrix) {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            coo.push(r, (r * 3 + 1) % n, 1.0).unwrap();
            coo.push(r, (r * 7 + 2) % n, 1.0).unwrap();
        }
        let b = DenseMatrix::from_vec(n, 4, vec![1.0; n * 4]).unwrap();
        (coo.to_csc(), b)
    }

    #[test]
    fn off_chip_streaming_throttles_delivery() {
        let (a, b) = operand(256);
        let mut fast_cfg =
            Design::Baseline.apply(AccelConfig::builder().n_pes(64).build().unwrap());
        fast_cfg.memory = MemoryModel::unbounded();
        let mut slow_cfg = fast_cfg.clone();
        // Tiny on-chip budget + 16 B/cycle: 2 nnz per cycle.
        slow_cfg.memory = MemoryModel {
            on_chip_bytes: 16,
            off_chip_bytes_per_cycle: 16.0,
        };
        let fast = FastEngine::new(fast_cfg).run(&a, &b, "t").unwrap().stats;
        let slow = FastEngine::new(slow_cfg).run(&a, &b, "t").unwrap().stats;
        assert!(
            slow.total_cycles() > fast.total_cycles() * 4,
            "fast {} slow {}",
            fast.total_cycles(),
            slow.total_cycles()
        );
    }

    #[test]
    fn on_chip_fill_charged_once() {
        let (a, b) = operand(128);
        let mut cfg = Design::Baseline.apply(AccelConfig::builder().n_pes(32).build().unwrap());
        cfg.memory = MemoryModel {
            on_chip_bytes: 1 << 20,
            off_chip_bytes_per_cycle: 8.0, // 1 nnz/cycle fill rate
        };
        let stats = FastEngine::new(cfg.clone()).run(&a, &b, "t").unwrap().stats;
        let fill = cfg.memory.fill_cycles(a.nnz());
        assert!(fill > 0);
        // Round 0 pays the fill; later rounds do not.
        assert!(stats.rounds[0].cycles > stats.rounds[1].cycles + fill / 2);
    }

    #[test]
    fn functional_output_unaffected_by_memory_model() {
        let (a, b) = operand(64);
        let mut cfg = Design::Baseline.apply(AccelConfig::builder().n_pes(16).build().unwrap());
        cfg.memory = MemoryModel {
            on_chip_bytes: 8,
            off_chip_bytes_per_cycle: 24.0,
        };
        let out = FastEngine::new(cfg).run(&a, &b, "t").unwrap();
        let expect = awb_sparse::spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
    }
}
