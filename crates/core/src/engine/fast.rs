//! The fast SPMM engine: O(1) work per MAC task — and O(1) work per
//! *round* once the configuration has frozen and the round's structure has
//! been seen before.
//!
//! Models the architecture at queue-dynamics granularity:
//!
//! * the distributor delivers `n_pes` non-zero tasks per cycle in stream
//!   order (TDQ-1's rate-matched fetch and TDQ-2's CSC stream both sustain
//!   this in the paper's design),
//! * every PE issues at most one MAC per cycle and drains its queue in
//!   FIFO order,
//! * local sharing compares (lazily drained) pending-task counters within
//!   the hop window at enqueue time,
//! * the RaW scoreboard extends per-row completion times (optionally
//!   blocking the issue slot, see [`StallMode`](crate::StallMode)),
//! * remote switching and auto-tuning run between rounds on the per-round
//!   PE-busy profile.
//!
//! # Steady-state round replay
//!
//! Once the auto-tuner freezes the row map, a round's queue dynamics are a
//! pure function of *which* dense-operand entries `b(j, k)` are non-zero —
//! the values only scale the products, never the schedule. The engine
//! therefore memoizes the per-round timing keyed by the round's non-zero
//! column pattern and replays it for every later round with the same
//! pattern (in GCN layers most rounds are fully dense in `b[:, k]` and
//! share one pattern — including across the layer-2 reuse of `A`'s
//! engine). The round model, the replay cache, and the frozen-map executor
//! live in the crate-internal `steady` module, shared verbatim with
//! [`SpmmSession`](super::SpmmSession) — the per-request executor over a
//! [`TunedPlan`](super::TunedPlan) extracted from this engine by
//! [`SpmmEngine::plan`]. See `DESIGN.md` §5/§6 for the validity argument
//! and the plan/execute split.
//!
//! Frozen-phase rounds are independent (each owns one output column of
//! `C`), so they execute on the [`exec`](crate::exec) substrate —
//! deterministic order, bit-identical to the sequential path at any
//! `AWB_THREADS` setting.
//!
//! The model is validated against [`DetailedEngine`](super::DetailedEngine)
//! in the crate's integration tests.

use crate::config::AccelConfig;
use crate::engine::arena::{ArenaStats, ScratchArena};
use crate::engine::steady::{
    accumulate_round, column_pattern, emit_column, execute_steady, structure_fingerprint,
    MemoryParams, ReplayCache, SimParams, SteadySpan,
};
use crate::engine::{check_shapes, PlanOutcome, SpmmEngine, SpmmOutcome, TunedPlan};
use crate::error::AccelError;
use crate::exec;
use crate::mapping::RowMap;
use crate::rebalance::autotuner::AutoTuner;
use crate::rebalance::local::LocalSharing;
use crate::rebalance::remote::RoundProfile;
use crate::stats::SpmmStats;
use awb_sparse::{Csc, DenseMatrix};
use std::sync::Arc;

/// Fast queue-dynamics engine (see module docs).
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, FastEngine, SpmmEngine};
/// use awb_sparse::{Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Coo::new(4, 4);
/// a.push(0, 1, 2.0)?;
/// a.push(3, 0, 1.0)?;
/// let b = DenseMatrix::from_rows(&[&[1.0], &[3.0], &[0.0], &[0.0]])?;
/// let config = AccelConfig::builder().n_pes(2).build()?;
/// let mut engine = FastEngine::new(config);
/// let out = engine.run(&a.to_csc(), &b, "demo")?;
/// assert_eq!(out.c.get(0, 0), 6.0);
/// assert!(out.stats.total_cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FastEngine {
    config: AccelConfig,
    sharing: Option<LocalSharing>,
    map: Option<RowMap>,
    tuner: Option<AutoTuner>,
    /// Worker-thread override for frozen-phase rounds (None = use
    /// [`exec::num_threads`], i.e. `AWB_THREADS` / available parallelism).
    threads: Option<usize>,
    replay_enabled: bool,
    /// When `false` the engine runs timing-only: it never touches the
    /// numerics (the returned `c` stays all-zeros) while every statistic
    /// stays bit-identical — timing depends on the non-zero pattern, never
    /// the values. Shard-member engines run in this mode because the
    /// sharded merge recomputes the output through the pinned global-order
    /// kernel anyway (see `engine::sharded`).
    values_enabled: bool,
    cache: ReplayCache,
    /// Scratch pool for accumulator/simulator/output buffers, shared into
    /// every plan frozen from this engine (and replaceable wholesale via
    /// [`set_arena`](FastEngine::set_arena), e.g. a GCN runner threading
    /// one arena through its per-layer combination engines).
    arena: Arc<ScratchArena>,
}

impl FastEngine {
    /// Creates an engine; the row map is initialized lazily from the first
    /// sparse operand. The thread override and replay switch are seeded
    /// from [`AccelConfig::threads`]/[`AccelConfig::replay`] (adjustable
    /// later via [`set_threads`](FastEngine::set_threads)/
    /// [`set_replay_enabled`](FastEngine::set_replay_enabled)).
    pub fn new(config: AccelConfig) -> Self {
        let arena = if config.scratch_reuse {
            ScratchArena::new()
        } else {
            ScratchArena::disabled()
        };
        FastEngine {
            threads: config.threads,
            replay_enabled: config.replay,
            values_enabled: true,
            config,
            sharing: None,
            map: None,
            tuner: None,
            cache: ReplayCache::new(),
            arena: Arc::new(arena),
        }
    }

    /// The current row→PE map (None before the first run).
    pub fn row_map(&self) -> Option<&RowMap> {
        self.map.as_ref()
    }

    /// Rows exchanged by remote switching so far.
    pub fn total_switches(&self) -> u64 {
        self.tuner.as_ref().map_or(0, |t| t.total_switches())
    }

    /// Whether the auto-tuner is still adjusting.
    pub fn tuning_active(&self) -> bool {
        self.tuner.as_ref().is_some_and(|t| t.is_active())
    }

    /// Overrides the worker-thread count for frozen-phase rounds
    /// (`None` restores the [`exec::num_threads`] default). Results are
    /// bit-identical at any setting; this only affects wall-clock.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Enables or disables the steady-state replay cache (enabled by
    /// default). Disabling forces every round through the full queue
    /// simulation — the straight-simulated reference the replay path is
    /// tested against.
    pub fn set_replay_enabled(&mut self, on: bool) {
        self.replay_enabled = on;
        if !on {
            self.cache.clear();
        }
    }

    /// Enables or disables the numerics half of [`run`](SpmmEngine::run)
    /// (enabled by default). With values disabled the engine is
    /// **timing-only**: the returned `c` is all-zeros (correct shape), but
    /// the statistics — rounds, cycles, queue depths, replay counters —
    /// are bit-identical to a values-carrying run on the same inputs,
    /// because round timing is a pure function of the non-zero pattern.
    /// Shard-member engines use this to skip the partial numerics the
    /// pinned sharded merge discards.
    pub fn set_values_enabled(&mut self, on: bool) {
        self.values_enabled = on;
    }

    /// Replaces the engine's scratch arena with a shared one — used by the
    /// GCN runner to pool scratch across the per-layer combination engines
    /// instead of each engine warming its own.
    pub fn set_arena(&mut self, arena: Arc<ScratchArena>) {
        self.arena = arena;
    }

    /// Allocation/reuse counters of the engine's scratch arena.
    pub fn scratch_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Steady-state rounds whose timing was served from the replay cache.
    pub fn replay_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Steady-state rounds whose non-zero pattern had to be simulated and
    /// was then memoized.
    pub fn replay_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Extracts a [`TunedPlan`] from the engine's current state: the row
    /// map as converged so far (force-frozen if the tuner is still
    /// active — the paper freezes at the round budget regardless) plus a
    /// snapshot of the replay cache for `a`. The engine stays usable and
    /// itself runs frozen afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the engine was tuned for
    /// a different row count than `a`.
    pub fn freeze_plan(&mut self, a: &Csc) -> Result<TunedPlan, AccelError> {
        self.ensure_state(a.rows())?;
        let tuner = self.tuner.as_mut().expect("initialized in ensure_state");
        tuner.freeze();
        Ok(TunedPlan::from_frozen(
            self.config.clone(),
            self.map.clone().expect("initialized in ensure_state"),
            a,
            tuner.rounds_done(),
            tuner.total_switches(),
            self.replay_enabled,
            self.cache.clone(),
            Arc::clone(&self.arena),
        ))
    }

    fn ensure_state(&mut self, n_rows: usize) -> Result<(), AccelError> {
        match &self.map {
            Some(map) if map.n_rows() != n_rows => Err(AccelError::InvalidConfig(format!(
                "engine tuned for {} rows reused with {} rows",
                map.n_rows(),
                n_rows
            ))),
            Some(_) => Ok(()),
            None => {
                self.map = Some(RowMap::new(n_rows, self.config.n_pes, self.config.mapping));
                self.tuner = Some(AutoTuner::new(&self.config, n_rows));
                self.sharing = Some(LocalSharing::new(self.config.local_hop, self.config.n_pes));
                Ok(())
            }
        }
    }
}

impl SpmmEngine for FastEngine {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        check_shapes(a, b)?;
        self.ensure_state(a.rows())?;
        let n_pes = self.config.n_pes;
        let n_rows = a.rows();
        // The distributor's delivery rate: full speed when SPMMeM holds
        // the operand on chip, bandwidth-bound when it must stream.
        let memory = MemoryParams::for_operand(&self.config, a.nnz());
        let params = SimParams {
            n_pes,
            lat: self.config.mac_latency as u64,
            bandwidth: memory.bandwidth,
            stall_mode: self.config.stall_mode,
            sharing: (self.config.local_hop > 0)
                .then_some(self.sharing.expect("initialized in ensure_state")),
        };
        let threads = self.threads.unwrap_or_else(exec::num_threads);
        // Replayed timings describe *this* operand's structure under the
        // frozen map; a structurally different operand invalidates them.
        let use_replay = self.replay_enabled && memory.on_chip;
        if use_replay {
            self.cache.guard(structure_fingerprint(a));
        }

        // Local handle so scratch checkouts coexist with the `self.map`/
        // `self.tuner` mutable borrows below.
        let arena = Arc::clone(&self.arena);
        // The output matrix draws from the arena too: zeroed at take, and
        // recyclable by callers that consume it (`ScratchArena::recycle_f32`).
        let mut c = DenseMatrix::from_vec(n_rows, b.cols(), arena.take_f32(n_rows * b.cols()))
            .expect("arena buffer sized to the output matrix");
        let mut rounds = Vec::with_capacity(b.cols());
        let mut queue_high_water = vec![0u32; n_pes];
        // Timing-only engines never touch the column accumulator (a
        // zero-length checkout is allocation-free).
        let mut col_acc = arena.checkout_f32(if self.values_enabled { n_rows } else { 0 });

        // ---- Phase 1: tuning rounds, inherently sequential ----
        // Each round observes the map the previous round's switching
        // produced, so these cannot replay or run concurrently.
        let map = self.map.as_mut().expect("initialized in ensure_state");
        let tuner = self.tuner.as_mut().expect("initialized in ensure_state");
        let mut k = 0usize;
        while k < b.cols() && tuner.is_active() {
            // Timing-only engines never read the values half.
            let (cols, vals) = if self.values_enabled {
                column_pattern(b, k)
            } else {
                (crate::engine::steady::column_pattern_cols(b, k), Vec::new())
            };
            let mut row_tasks = tuner.needs_row_counts().then(|| vec![0u32; n_rows]);
            let sim = crate::engine::steady::simulate_round(
                a,
                &cols,
                map.pe_of_row(),
                params,
                row_tasks.as_deref_mut(),
                &arena,
            );
            if self.values_enabled {
                accumulate_round(a, &cols, &vals, &mut col_acc);
                emit_column(&mut c, k, &mut col_acc);
            }

            // An on-chip operand pays its SPMMeM fill once (charged to
            // round 0); an off-chip operand's per-round streaming cost is
            // already captured by the throttled arrival rate.
            let fill = if k == 0 && memory.on_chip && sim.timing.tasks > 0 {
                memory.fill_cycles
            } else {
                0
            };
            let cycles = sim.timing.cycles + fill;
            rounds.push(sim.timing.to_stats(cycles, true));

            // Auto-tuning between rounds.
            if sim.timing.tasks > 0 {
                let util = sim.timing.tasks as f64 / (cycles.max(1) as f64 * n_pes as f64);
                let profile = RoundProfile {
                    per_pe_busy: sim.owner_busy,
                    per_row_tasks: row_tasks,
                };
                tuner.observe_round(&profile, util, map);
            }
            k += 1;
        }

        // ---- Phase 2: steady-state rounds under the frozen map ----
        // Rounds are now independent (each owns output column k); timing
        // is a pure function of the round's non-zero pattern, so repeated
        // patterns replay from cache and fresh work runs on `exec`.
        execute_steady(
            SteadySpan {
                a,
                b,
                start: k,
                pe_of_row: self
                    .map
                    .as_ref()
                    .expect("initialized in ensure_state")
                    .pe_of_row(),
                params,
                memory,
                threads,
                cache: use_replay.then_some(&self.cache),
                arena: &arena,
                compute_values: self.values_enabled,
            },
            &mut c,
            &mut rounds,
            &mut queue_high_water,
        );

        Ok(SpmmOutcome {
            c,
            stats: SpmmStats {
                label: label.to_owned(),
                n_pes,
                rounds,
                queue_high_water,
            },
        })
    }

    fn plan(
        &mut self,
        a: &Csc,
        warmup: &DenseMatrix,
        label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        let outcome = self.run(a, warmup, label)?;
        Ok(PlanOutcome {
            plan: self.freeze_plan(a)?,
            warmup: outcome,
        })
    }

    fn config(&self) -> &AccelConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Design, MappingKind, SltPolicy, StallMode};
    use awb_sparse::{spmm, Coo};

    fn config(n_pes: usize) -> AccelConfig {
        AccelConfig::builder().n_pes(n_pes).build().unwrap()
    }

    /// A matrix with one very heavy row block (rows 0..2) and light rest.
    fn skewed(n: usize, heavy_nnz: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..heavy_nnz.min(n) {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, (c + 1) % n, 0.5).unwrap();
        }
        for r in 2..n {
            coo.push(r, (r * 7) % n, 1.0).unwrap();
        }
        coo.to_csc()
    }

    fn dense(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) - 3.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    /// A dense operand with no zero entries: every column shares the
    /// all-columns pattern, the replay cache's best case.
    fn dense_full(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) + 1.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn functional_output_matches_reference() {
        let a = skewed(64, 40);
        let b = dense(64, 8);
        for design in [
            Design::Baseline,
            Design::LocalSharing { hop: 2 },
            Design::LocalPlusRemote { hop: 2 },
        ] {
            let mut engine = FastEngine::new(design.apply(config(8)));
            let out = engine.run(&a, &b, "t").unwrap();
            let expect = spmm::csc_times_dense(&a, &b).unwrap();
            assert!(
                out.c.approx_eq(&expect, 1e-4),
                "{design:?}: max diff {}",
                out.c.max_abs_diff(&expect).unwrap()
            );
        }
    }

    #[test]
    fn task_conservation() {
        let a = skewed(64, 40);
        let b = dense(64, 8);
        let mut engine = FastEngine::new(config(8));
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(
            out.stats.total_tasks(),
            spmm::csc_times_dense_macs(&a, &b).unwrap() as u64
        );
    }

    #[test]
    fn steady_state_rounds_hit_replay_cache() {
        let a = skewed(64, 40);
        let b = dense_full(64, 8);
        // Baseline has no remote switching: the tuner is born frozen and
        // every round is steady-state. All 8 columns share one pattern.
        let mut engine = FastEngine::new(Design::Baseline.apply(config(8)));
        engine.run(&a, &b, "t").unwrap();
        assert_eq!(engine.replay_misses(), 1);
        assert_eq!(engine.replay_hits(), 7);
        // The cache persists across runs on the same operand (the paper's
        // layer-2 reuse): the second run replays every round.
        engine.run(&a, &b, "t").unwrap();
        assert_eq!(engine.replay_misses(), 1);
        assert_eq!(engine.replay_hits(), 15);
    }

    #[test]
    fn tuning_rounds_never_touch_replay_cache() {
        let a = skewed(128, 100);
        let b = dense_full(128, 16);
        let mut engine = FastEngine::new(Design::LocalPlusRemote { hop: 1 }.apply(config(16)));
        let out = engine.run(&a, &b, "t").unwrap();
        let tuning = out.stats.tuning_rounds() as u64;
        assert!(tuning > 0);
        assert_eq!(
            engine.replay_hits() + engine.replay_misses(),
            out.stats.rounds.len() as u64 - tuning,
            "exactly the steady-state rounds consult the cache"
        );
    }

    #[test]
    fn replay_matches_straight_simulation_bitwise() {
        let a = skewed(96, 60);
        let b = dense(96, 10);
        for design in [
            Design::Baseline,
            Design::LocalSharing { hop: 2 },
            Design::LocalPlusRemote { hop: 2 },
        ] {
            let cfg = design.apply(config(8));
            let mut cached = FastEngine::new(cfg.clone());
            let mut straight = FastEngine::new(cfg);
            straight.set_replay_enabled(false);
            let o1 = cached.run(&a, &b, "t").unwrap();
            let o2 = straight.run(&a, &b, "t").unwrap();
            assert_eq!(o1.stats, o2.stats, "{design:?}");
            assert_eq!(o1.c, o2.c, "{design:?}");
            assert_eq!(straight.replay_hits() + straight.replay_misses(), 0);
        }
    }

    #[test]
    fn values_free_mode_matches_timing_and_zeroes_output() {
        // Timing-only execution (used by shard members) must report
        // statistics and replay behaviour bit-identical to a
        // values-carrying run — only the numerics are skipped.
        let a = skewed(96, 60);
        let b = dense(96, 8);
        let cfg = Design::LocalPlusRemote { hop: 1 }.apply(config(8));
        let mut carrying = FastEngine::new(cfg.clone());
        let with_values = carrying.run(&a, &b, "t").unwrap();
        let mut timing_only = FastEngine::new(cfg);
        timing_only.set_values_enabled(false);
        let without = timing_only.run(&a, &b, "t").unwrap();
        assert_eq!(without.stats, with_values.stats);
        assert_eq!(without.c, DenseMatrix::zeros(96, 8));
        assert_ne!(with_values.c, without.c);
        assert_eq!(timing_only.replay_hits(), carrying.replay_hits());
        assert_eq!(timing_only.replay_misses(), carrying.replay_misses());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = skewed(96, 60);
        let b = dense(96, 12);
        let cfg = Design::LocalPlusRemote { hop: 2 }.apply(config(8));
        let mut seq = FastEngine::new(cfg.clone());
        seq.set_threads(Some(1));
        let mut par = FastEngine::new(cfg);
        par.set_threads(Some(4));
        let o1 = seq.run(&a, &b, "t").unwrap();
        let o2 = par.run(&a, &b, "t").unwrap();
        assert_eq!(o1.stats, o2.stats);
        assert_eq!(o1.c, o2.c);
    }

    #[test]
    fn config_seeds_threads_and_replay() {
        // Satellite plumbing: `AccelConfig.threads`/`replay` reach the
        // engine without per-engine setter calls.
        let a = skewed(64, 40);
        let b = dense_full(64, 8);
        let mut cfg = Design::Baseline.apply(config(8));
        cfg.replay = false;
        cfg.threads = Some(1);
        let mut engine = FastEngine::new(cfg.clone());
        engine.run(&a, &b, "t").unwrap();
        assert_eq!(engine.replay_hits() + engine.replay_misses(), 0);
        cfg.replay = true;
        let mut engine = FastEngine::new(cfg);
        engine.run(&a, &b, "t").unwrap();
        assert_eq!(engine.replay_misses(), 1);
        assert_eq!(engine.replay_hits(), 7);
    }

    #[test]
    fn off_chip_operand_bypasses_replay_cache() {
        let a = skewed(64, 40);
        let b = dense_full(64, 8);
        let mut cfg = Design::Baseline.apply(config(8));
        cfg.memory = awb_hw::MemoryModel {
            on_chip_bytes: 16,
            off_chip_bytes_per_cycle: 16.0,
        };
        let mut engine = FastEngine::new(cfg);
        engine.run(&a, &b, "t").unwrap();
        assert_eq!(engine.replay_hits() + engine.replay_misses(), 0);
    }

    #[test]
    fn replay_cache_invalidated_by_different_operand_structure() {
        let b = dense_full(64, 4);
        let mut engine = FastEngine::new(Design::Baseline.apply(config(8)));
        engine.run(&skewed(64, 40), &b, "t").unwrap();
        assert_eq!(engine.replay_misses(), 1);
        // Same shape, different sparsity structure: the memoized timing
        // would be wrong, so the fingerprint guard must force a re-miss.
        engine.run(&skewed(64, 20), &b, "t").unwrap();
        assert_eq!(engine.replay_misses(), 2);
    }

    #[test]
    fn local_sharing_improves_utilization_on_local_imbalance() {
        // Adjacent heavy rows: exactly the "local imbalance" case.
        let a = skewed(64, 48);
        let b = dense(64, 6);
        let mut base = FastEngine::new(Design::Baseline.apply(config(16)));
        let u_base = base.run(&a, &b, "t").unwrap().stats.utilization();
        let mut ls = FastEngine::new(Design::LocalSharing { hop: 2 }.apply(config(16)));
        let u_ls = ls.run(&a, &b, "t").unwrap().stats.utilization();
        assert!(u_ls > u_base, "base {u_base} ls {u_ls}");
    }

    #[test]
    fn remote_switching_moves_rows_and_freezes() {
        let a = skewed(128, 100);
        let b = dense(128, 16);
        let mut engine = FastEngine::new(Design::LocalPlusRemote { hop: 1 }.apply(config(16)));
        let out = engine.run(&a, &b, "t").unwrap();
        assert!(engine.total_switches() > 0, "no rows switched");
        assert!(
            !engine.tuning_active(),
            "tuner should freeze within 16 rounds"
        );
        assert!(out.stats.tuning_rounds() > 0);
        assert!(out.stats.tuning_rounds() < out.stats.rounds.len());
        assert!(engine.row_map().unwrap().is_consistent());
    }

    #[test]
    fn engine_reuse_keeps_tuned_map() {
        let a = skewed(128, 100);
        let b = dense(128, 16);
        let mut engine = FastEngine::new(Design::LocalPlusRemote { hop: 1 }.apply(config(16)));
        engine.run(&a, &b, "first").unwrap();
        let switches_after_first = engine.total_switches();
        let out2 = engine.run(&a, &b, "second").unwrap();
        // Second run reuses the frozen configuration: no further switching.
        assert_eq!(engine.total_switches(), switches_after_first);
        assert_eq!(out2.stats.tuning_rounds(), 0);
    }

    #[test]
    fn engine_rejects_different_matrix() {
        let a = skewed(64, 10);
        let b = dense(64, 2);
        let mut engine = FastEngine::new(config(8));
        engine.run(&a, &b, "t").unwrap();
        let a2 = skewed(32, 10);
        let b2 = dense(32, 2);
        assert!(matches!(
            engine.run(&a2, &b2, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = skewed(16, 4);
        let b = dense(8, 2);
        let mut engine = FastEngine::new(config(4));
        assert!(matches!(engine.run(&a, &b, "t"), Err(AccelError::Shape(_))));
    }

    #[test]
    fn sync_plus_ideal_consistent() {
        let a = skewed(64, 30);
        let b = dense(64, 4);
        let mut engine = FastEngine::new(config(8));
        let stats = engine.run(&a, &b, "t").unwrap().stats;
        assert_eq!(
            stats.total_cycles(),
            stats.ideal_cycles() + stats.sync_cycles()
        );
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
    }

    #[test]
    fn raw_hazard_stalls_counted_on_hot_row() {
        // Single row receives every task: maximal RaW pressure.
        let n = 32;
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
        }
        let a = coo.to_csc();
        let b = dense(n, 2);
        let mut engine = FastEngine::new(config(4));
        let stats = engine.run(&a, &b, "t").unwrap().stats;
        assert!(stats.raw_stalls() > 0);
    }

    #[test]
    fn block_mode_slower_than_park_under_hazards() {
        let n = 32;
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
            coo.push(5, c, 1.0).unwrap();
        }
        let a = coo.to_csc();
        let b = dense(n, 2);
        let mut park_cfg = config(4);
        park_cfg.stall_mode = StallMode::Park;
        let mut block_cfg = config(4);
        block_cfg.stall_mode = StallMode::Block;
        let park = FastEngine::new(park_cfg).run(&a, &b, "t").unwrap().stats;
        let block = FastEngine::new(block_cfg).run(&a, &b, "t").unwrap().stats;
        assert!(block.total_cycles() >= park.total_cycles());
    }

    #[test]
    fn degree_aware_slt_runs() {
        let a = skewed(128, 80);
        let b = dense(128, 16);
        let mut cfg = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        cfg.slt_policy = SltPolicy::DegreeAware;
        let mut engine = FastEngine::new(cfg);
        let out = engine.run(&a, &b, "t").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
        assert!(engine.total_switches() > 0);
    }

    #[test]
    fn cyclic_mapping_works() {
        let a = skewed(64, 20);
        let b = dense(64, 4);
        let mut cfg = config(8);
        cfg.mapping = MappingKind::Cyclic;
        let out = FastEngine::new(cfg).run(&a, &b, "t").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
    }

    #[test]
    fn empty_operands() {
        let a = Coo::new(8, 8).to_csc();
        let b = DenseMatrix::zeros(8, 0);
        let mut engine = FastEngine::new(config(4));
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(out.c.shape(), (8, 0));
        assert_eq!(out.stats.total_cycles(), 0);
    }

    #[test]
    fn queue_depth_shrinks_with_rebalancing() {
        let a = skewed(256, 200);
        let b = dense(256, 16);
        let base = FastEngine::new(Design::Baseline.apply(config(32)))
            .run(&a, &b, "t")
            .unwrap()
            .stats;
        let tuned = FastEngine::new(Design::LocalPlusRemote { hop: 2 }.apply(config(32)))
            .run(&a, &b, "t")
            .unwrap()
            .stats;
        assert!(
            tuned.max_queue_depth() < base.max_queue_depth(),
            "base {} tuned {}",
            base.max_queue_depth(),
            tuned.max_queue_depth()
        );
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use crate::config::Design;
    use awb_hw::MemoryModel;
    use awb_sparse::Coo;

    fn operand(n: usize) -> (Csc, DenseMatrix) {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            coo.push(r, (r * 3 + 1) % n, 1.0).unwrap();
            coo.push(r, (r * 7 + 2) % n, 1.0).unwrap();
        }
        let b = DenseMatrix::from_vec(n, 4, vec![1.0; n * 4]).unwrap();
        (coo.to_csc(), b)
    }

    #[test]
    fn off_chip_streaming_throttles_delivery() {
        let (a, b) = operand(256);
        let mut fast_cfg =
            Design::Baseline.apply(AccelConfig::builder().n_pes(64).build().unwrap());
        fast_cfg.memory = MemoryModel::unbounded();
        let mut slow_cfg = fast_cfg.clone();
        // Tiny on-chip budget + 16 B/cycle: 2 nnz per cycle.
        slow_cfg.memory = MemoryModel {
            on_chip_bytes: 16,
            off_chip_bytes_per_cycle: 16.0,
        };
        let fast = FastEngine::new(fast_cfg).run(&a, &b, "t").unwrap().stats;
        let slow = FastEngine::new(slow_cfg).run(&a, &b, "t").unwrap().stats;
        assert!(
            slow.total_cycles() > fast.total_cycles() * 4,
            "fast {} slow {}",
            fast.total_cycles(),
            slow.total_cycles()
        );
    }

    #[test]
    fn on_chip_fill_charged_once() {
        let (a, b) = operand(128);
        let mut cfg = Design::Baseline.apply(AccelConfig::builder().n_pes(32).build().unwrap());
        cfg.memory = MemoryModel {
            on_chip_bytes: 1 << 20,
            off_chip_bytes_per_cycle: 8.0, // 1 nnz/cycle fill rate
        };
        let stats = FastEngine::new(cfg.clone()).run(&a, &b, "t").unwrap().stats;
        let fill = cfg.memory.fill_cycles(a.nnz());
        assert!(fill > 0);
        // Round 0 pays the fill; later rounds do not.
        assert!(stats.rounds[0].cycles > stats.rounds[1].cycles + fill / 2);
    }

    #[test]
    fn functional_output_unaffected_by_memory_model() {
        let (a, b) = operand(64);
        let mut cfg = Design::Baseline.apply(AccelConfig::builder().n_pes(16).build().unwrap());
        cfg.memory = MemoryModel {
            on_chip_bytes: 8,
            off_chip_bytes_per_cycle: 24.0,
        };
        let out = FastEngine::new(cfg).run(&a, &b, "t").unwrap();
        let expect = awb_sparse::spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
    }
}
