//! Plan-owned scratch arenas: pooled, reusable buffers for the steady-state
//! hot path.
//!
//! Every `SpmmSession`/request used to allocate its accumulator, output,
//! and simulator-queue scratch fresh; under multi-tenant serving that puts
//! an allocator round-trip on every round of every request. A
//! [`ScratchArena`] is a small typed pool owned by the long-lived plan
//! objects ([`TunedPlan`](super::TunedPlan), [`ShardedPlan`](super::ShardedPlan),
//! `GcnPlan`) and shared (`Arc`) with the engines that execute against
//! them: sessions *check out* zeroed buffers for a round or block and the
//! RAII guard returns them on drop, so once the arena is warm the
//! steady-state accumulate path performs no fresh heap allocation
//! (asserted by `tests/scratch_arena.rs` via [`ArenaStats::created`]).
//!
//! # Safety and determinism
//!
//! A checkout is an owned, exclusively borrowed buffer — two concurrent
//! `par_map` workers can never alias the same scratch, because each `pop`
//! under the pool's mutex hands the `Vec` to exactly one guard (no
//! slicing of a shared arena region is involved). Buffers are zeroed at
//! checkout (`clear` + `resize`, a memset without a malloc), so a dirty
//! buffer returned by a timing-only span can never leak values into a
//! later round; numerics are therefore bit-identical with the arena on,
//! off ([`ScratchArena::disabled`]), warm, or cold.
//!
//! # Sizing across shard axes
//!
//! Pools grow to the workload's *concurrent* high-water mark, not its
//! total request count: the pool cap ([`MAX_POOLED`] buffers per type)
//! bounds worst-case retention, and values-free shard members never check
//! out accumulator (`f32`) scratch at all — timing-only execution only
//! draws the small per-round simulator vectors, so a member arena holds
//! exactly what that shard needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Per-type cap on retained buffers. Concurrent checkouts are bounded by
/// the worker-thread count (nested `par_map` runs inline), so a pool past
/// this size can only mean leaked one-shot buffers — discard instead.
const MAX_POOLED: usize = 64;

/// One typed buffer pool (interior-mutable so the arena can be shared as
/// `&ScratchArena` across `par_map` workers).
#[derive(Debug, Default)]
struct Pool<T> {
    buffers: Mutex<Vec<Vec<T>>>,
    /// Checkouts that had to allocate (empty pool, or a recycled buffer's
    /// capacity was short and `resize` grew it).
    created: AtomicU64,
    /// Checkouts served entirely from pooled capacity.
    reused: AtomicU64,
}

impl<T: Copy + Default> Pool<T> {
    /// Poison-recovering lock: the pool only ever holds whole buffers
    /// (push/pop are atomic `Vec` operations), so post-panic state is
    /// always consistent — same soundness argument as `ReplayCache`.
    fn lock(&self) -> MutexGuard<'_, Vec<Vec<T>>> {
        self.buffers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Hands out a zeroed buffer of exactly `len` elements.
    fn take(&self, len: usize, pooling: bool) -> Vec<T> {
        if len == 0 {
            // A zero-len checkout (e.g. a values-free session's accumulator)
            // must be free: no pool traffic, no counter movement.
            return Vec::new();
        }
        // Best-fit-by-scan, newest first: if *any* pooled buffer has the
        // capacity, the checkout is allocation-free — popping the top
        // blindly would let an unlucky interleaving of concurrent workers
        // pair a small buffer with a big checkout and re-allocate forever.
        // Short pooled buffers are left in place for later small checkouts
        // instead of being ratcheted up. O(pool ≤ MAX_POOLED) scan, noise
        // next to the memset below.
        let recycled = if pooling {
            let mut pool = self.lock();
            pool.iter()
                .rposition(|b| b.capacity() >= len)
                .map(|i| pool.swap_remove(i))
        } else {
            None
        };
        let mut buf = match recycled {
            Some(b) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        buf.clear();
        buf.resize(len, T::default());
        buf
    }

    /// Returns a buffer to the pool (dropped when pooling is off, the
    /// buffer never allocated, or the pool is at [`MAX_POOLED`]).
    fn put(&self, buf: Vec<T>, pooling: bool) {
        if !pooling || buf.capacity() == 0 {
            return;
        }
        let mut pool = self.lock();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }

    fn stats_into(&self, stats: &mut ArenaStats) {
        stats.created += self.created.load(Ordering::Relaxed);
        stats.reused += self.reused.load(Ordering::Relaxed);
        let pool = self.lock();
        stats.pooled += pool.len();
        stats.pooled_bytes += pool
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<T>())
            .sum::<usize>();
    }
}

/// Counters and retention of a [`ScratchArena`] (all pools summed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Checkouts that performed a heap allocation (cold pool or capacity
    /// growth). Stable across requests ⇔ the warm path is allocation-free.
    pub created: u64,
    /// Checkouts served entirely from pooled capacity.
    pub reused: u64,
    /// Buffers currently retained, across all typed pools.
    pub pooled: usize,
    /// Heap bytes currently retained, across all typed pools.
    pub pooled_bytes: usize,
}

impl ArenaStats {
    /// Sums another arena's counters/retention into this one — for
    /// aggregating a plan's own pools with its shard members'.
    pub fn absorb(&mut self, other: ArenaStats) {
        self.created += other.created;
        self.reused += other.reused;
        self.pooled += other.pooled;
        self.pooled_bytes += other.pooled_bytes;
    }
}

/// A typed scratch-buffer pool shared by the sessions and engines that
/// execute against one plan (see the module docs).
#[derive(Debug)]
pub struct ScratchArena {
    pooling: bool,
    f32s: Pool<f32>,
    u32s: Pool<u32>,
    u64s: Pool<u64>,
}

impl Default for ScratchArena {
    fn default() -> Self {
        ScratchArena::new()
    }
}

impl ScratchArena {
    /// A pooling arena: checked-in buffers are retained for reuse.
    pub fn new() -> Self {
        ScratchArena {
            pooling: true,
            f32s: Pool::default(),
            u32s: Pool::default(),
            u64s: Pool::default(),
        }
    }

    /// A pass-through arena (`AccelConfig::scratch_reuse = false`): every
    /// checkout allocates fresh and every return is dropped — the exact
    /// pre-arena allocation behaviour, kept as the A/B baseline.
    pub fn disabled() -> Self {
        ScratchArena {
            pooling: false,
            ..ScratchArena::new()
        }
    }

    /// Whether returned buffers are retained for reuse.
    pub fn is_pooling(&self) -> bool {
        self.pooling
    }

    /// Checks out a zeroed `f32` buffer of exactly `len` elements; the
    /// guard returns it to the pool on drop.
    pub fn checkout_f32(&self, len: usize) -> Scratch<'_, f32> {
        Scratch {
            pool: &self.f32s,
            pooling: self.pooling,
            buf: self.f32s.take(len, self.pooling),
        }
    }

    /// Checks out a zeroed `u32` buffer (see [`checkout_f32`](Self::checkout_f32)).
    pub fn checkout_u32(&self, len: usize) -> Scratch<'_, u32> {
        Scratch {
            pool: &self.u32s,
            pooling: self.pooling,
            buf: self.u32s.take(len, self.pooling),
        }
    }

    /// Checks out a zeroed `u64` buffer (see [`checkout_f32`](Self::checkout_f32)).
    pub fn checkout_u64(&self, len: usize) -> Scratch<'_, u64> {
        Scratch {
            pool: &self.u64s,
            pooling: self.pooling,
            buf: self.u64s.take(len, self.pooling),
        }
    }

    /// Takes a zeroed `f32` buffer as an owned `Vec` — for buffers that
    /// outlive the arena borrow (an output matrix handed to the caller).
    /// Pair with [`recycle_f32`](Self::recycle_f32) when the buffer comes
    /// back (e.g. a consumed inter-layer intermediate).
    pub fn take_f32(&self, len: usize) -> Vec<f32> {
        self.f32s.take(len, self.pooling)
    }

    /// Returns an owned buffer (from [`take_f32`](Self::take_f32), or any
    /// `Vec<f32>` being retired) to the pool.
    pub fn recycle_f32(&self, buf: Vec<f32>) {
        self.f32s.put(buf, self.pooling);
    }

    /// Allocation/reuse counters and current retention, summed over the
    /// typed pools.
    pub fn stats(&self) -> ArenaStats {
        let mut stats = ArenaStats::default();
        self.f32s.stats_into(&mut stats);
        self.u32s.stats_into(&mut stats);
        self.u64s.stats_into(&mut stats);
        stats
    }
}

/// RAII checkout of one arena buffer: derefs to a slice, returns the
/// buffer to its pool on drop. Exclusively owned — no two live guards
/// ever view the same memory.
#[derive(Debug)]
pub struct Scratch<'a, T: Copy + Default> {
    pool: &'a Pool<T>,
    pooling: bool,
    buf: Vec<T>,
}

impl<T: Copy + Default> std::ops::Deref for Scratch<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T: Copy + Default> std::ops::DerefMut for Scratch<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T: Copy + Default> Drop for Scratch<'_, T> {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf), self.pooling);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zeroed_even_after_dirty_return() {
        let arena = ScratchArena::new();
        {
            let mut s = arena.checkout_f32(8);
            s.iter_mut().for_each(|v| *v = -3.5);
        }
        let s = arena.checkout_f32(8);
        assert!(s.iter().all(|&v| v.to_bits() == 0), "must be +0.0");
    }

    #[test]
    fn warm_checkouts_do_not_allocate() {
        let arena = ScratchArena::new();
        drop(arena.checkout_f32(100));
        drop(arena.checkout_u64(50));
        let created = arena.stats().created;
        for _ in 0..10 {
            drop(arena.checkout_f32(100));
            drop(arena.checkout_u64(50));
        }
        let stats = arena.stats();
        assert_eq!(stats.created, created, "warm path must not allocate");
        assert_eq!(stats.reused, 20);
        assert_eq!(stats.pooled, 2);
    }

    #[test]
    fn growth_counts_as_allocation() {
        let arena = ScratchArena::new();
        drop(arena.checkout_f32(10));
        let created = arena.stats().created;
        drop(arena.checkout_f32(1000)); // no fitting buffer -> fresh alloc
        assert_eq!(arena.stats().created, created + 1);
        drop(arena.checkout_f32(1000)); // pooled capacity now fits
        assert_eq!(arena.stats().created, created + 1);
        // The short buffer was left in place, not ratcheted up: a small
        // checkout reuses it rather than allocating.
        assert_eq!(arena.stats().pooled, 2);
        drop(arena.checkout_f32(10));
        assert_eq!(arena.stats().created, created + 1);
    }

    #[test]
    fn best_fit_survives_interleaved_sizes() {
        // A small and a large buffer both pooled: a large checkout must
        // find the large one whatever the stack order says.
        let arena = ScratchArena::new();
        let small = arena.checkout_f32(8);
        let large = arena.checkout_f32(4096);
        drop(large); // returned first → deeper in the stack...
        drop(small); // ...small on top
        let created = arena.stats().created;
        for _ in 0..8 {
            let l = arena.checkout_f32(4096);
            let s = arena.checkout_f32(8);
            drop(l);
            drop(s);
        }
        assert_eq!(arena.stats().created, created, "fit scan missed a buffer");
    }

    #[test]
    fn disabled_arena_pools_nothing() {
        let arena = ScratchArena::disabled();
        assert!(!arena.is_pooling());
        drop(arena.checkout_f32(16));
        drop(arena.checkout_f32(16));
        let stats = arena.stats();
        assert_eq!(stats.created, 2);
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.pooled, 0);
        assert_eq!(stats.pooled_bytes, 0);
    }

    #[test]
    fn take_and_recycle_round_trip() {
        let arena = ScratchArena::new();
        let v = arena.take_f32(32);
        assert!(v.iter().all(|&x| x == 0.0));
        arena.recycle_f32(v);
        let before = arena.stats().created;
        let v = arena.take_f32(32);
        assert_eq!(arena.stats().created, before, "recycled capacity reused");
        arena.recycle_f32(v);
    }

    #[test]
    fn zero_length_checkouts_are_free() {
        let arena = ScratchArena::new();
        drop(arena.checkout_f32(0));
        let stats = arena.stats();
        // A zero-len take never touches the pool or the counters.
        assert_eq!(stats.created, 0);
        assert_eq!(stats.pooled, 0);
        assert_eq!(stats.pooled_bytes, 0);
    }

    #[test]
    fn pool_cap_bounds_retention() {
        let arena = ScratchArena::new();
        let many: Vec<_> = (0..MAX_POOLED + 10)
            .map(|_| arena.checkout_f32(4))
            .collect();
        drop(many);
        assert_eq!(arena.stats().pooled, MAX_POOLED);
    }

    #[test]
    fn concurrent_checkouts_never_alias() {
        // Each worker writes its own signature, yields, and re-verifies:
        // if two guards ever shared memory the signature would be torn.
        let arena = ScratchArena::new();
        let items: Vec<u32> = (0..256).collect();
        let ok = crate::exec::par_map_threads(8, &items, |&i| {
            let mut s = arena.checkout_f32(64);
            for (p, v) in s.iter_mut().enumerate() {
                *v = (i as f32) * 1000.0 + p as f32;
            }
            std::thread::yield_now();
            s.iter()
                .enumerate()
                .all(|(p, &v)| v == (i as f32) * 1000.0 + p as f32)
        });
        assert!(ok.into_iter().all(|b| b));
    }
}
