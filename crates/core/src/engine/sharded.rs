//! Column-sharded execution: one rebalanced PE array per shard, for
//! graphs whose adjacency does not fit a single device.
//!
//! `A × B = Σ_s A[:, lo_s..hi_s] × B[lo_s..hi_s, :]`: each contiguous
//! column shard of the sparse operand (cut nnz-balanced by
//! [`ColumnPartitioner`](awb_sparse::partition::ColumnPartitioner), see
//! `DESIGN.md` §7) is an independent sub-multiply that runs on its own
//! simulated accelerator — its own row→PE map, auto-tuner, and replay
//! cache, so a skewed shard converges to its own distribution instead of
//! inheriting a global compromise. Shards execute concurrently on the
//! [`exec`](crate::exec) substrate and their partial column blocks merge
//! into the output.
//!
//! # Merge determinism
//!
//! Merged *numerics* are computed through the same global-order column
//! kernel the unsharded engines use ([`compute_columns`], shared with
//! `execute_steady`), so sharded outputs are **bit-identical** to
//! unsharded runs by construction — summing collapsed f32 shard partials
//! would regroup the per-row addition chains and drift in the last ulp.
//! A physical multi-device merge unit achieves the same determinism by
//! accumulating shard partial products in stream order; the simulator
//! realizes that pinned order directly. Shard-member engines and
//! sessions therefore run **values-free** (timing-only — see
//! [`FastEngine::set_values_enabled`]): the partial numerics the merge
//! would discard are never computed, so a sharded run pays the
//! accumulate work exactly once, in the merge kernel. Timing is a pure
//! function of each round's non-zero pattern, so shard statistics are
//! bit-identical to what a values-carrying shard run would report
//! (pinned by the stats-equality tests below).
//!
//! # Stats semantics
//!
//! Shards run in parallel and the merge of round `k` completes when the
//! slowest shard finishes round `k` (the merge itself is pipelined behind
//! shard execution). Merged per-round cycles are therefore the **max**
//! over shards (the critical path); tasks/busy/stalls **sum**; the PE
//! count is the **total** across shard devices, so merged utilization is
//! `Σ busy / (critical-path cycles × total PEs)` — idle devices waiting
//! on the slowest shard honestly depress it. Shards whose stats report
//! fewer rounds than the longest shard are padded with empty (all-zero)
//! rounds, so unequal per-shard round counts merge without panic or
//! truncation. [`ShardedOutcome`] keeps the per-shard stats alongside the
//! merged view and exposes the critical-path/sum cycle aggregates
//! directly; its statistics come from values-free shard execution, which
//! changes none of them.

use crate::config::AccelConfig;
use crate::engine::arena::{ArenaStats, ScratchArena};
use crate::engine::steady::{compute_columns, structure_fingerprint};
use crate::engine::{check_shapes, FastEngine, PlanOutcome, SpmmEngine, SpmmOutcome, TunedPlan};
use crate::error::AccelError;
use crate::exec;
use crate::stats::{RoundStats, SpmmStats};
use awb_sparse::partition::ColumnPartitioner;
use awb_sparse::{Csc, DenseMatrix};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Result of one sharded SPMM: the merged (critical-path) outcome plus
/// each shard's own statistics.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Merged view: output `C` (bit-identical to an unsharded run) and
    /// critical-path statistics over the total PE count.
    pub outcome: SpmmOutcome,
    /// Per-shard statistics, in shard (ascending column) order.
    pub per_shard: Vec<SpmmStats>,
}

impl ShardedOutcome {
    /// End-to-end cycles on the critical path (per round, the slowest
    /// shard; rounds sequential). This is what the merged stats report.
    pub fn critical_path_cycles(&self) -> u64 {
        self.outcome.stats.total_cycles()
    }

    /// Total cycles summed over all shard devices — the aggregate machine
    /// time burned, the denominator that makes utilization honest.
    pub fn sum_cycles(&self) -> u64 {
        self.per_shard.iter().map(|s| s.total_cycles()).sum()
    }
}

/// Merges per-shard SPMM statistics into the critical-path view (see the
/// module docs for the exact semantics). Crate-internal: the streaming
/// executor merges its per-shard timing through the same rules.
pub(crate) fn merge_stats(label: &str, per_shard: &[SpmmStats]) -> SpmmStats {
    let n_pes: usize = per_shard.iter().map(|s| s.n_pes).sum();
    // Shards may report unequal round counts (e.g. per-shard tuning that
    // converged at different columns, or a degenerate empty shard): merge
    // over the *max*, padding exhausted shards with an empty round —
    // their device is idle, so it contributes nothing but a 0 to the
    // min-busy floor. Sizing from the first shard instead would panic on
    // a longer shard or silently drop its trailing rounds.
    let n_rounds = per_shard.iter().map(|s| s.rounds.len()).max().unwrap_or(0);
    let empty = RoundStats {
        cycles: 0,
        tasks: 0,
        busy_cycles: 0,
        max_pe_busy: 0,
        min_pe_busy: 0,
        max_queue_depth: 0,
        raw_stalls: 0,
        tuning_active: false,
    };
    let mut rounds = Vec::with_capacity(n_rounds);
    for r in 0..n_rounds {
        let mut merged = RoundStats {
            min_pe_busy: u64::MAX,
            ..empty
        };
        for s in per_shard {
            let rs = s.rounds.get(r).unwrap_or(&empty);
            merged.cycles = merged.cycles.max(rs.cycles);
            merged.tasks += rs.tasks;
            merged.busy_cycles += rs.busy_cycles;
            merged.max_pe_busy = merged.max_pe_busy.max(rs.max_pe_busy);
            merged.min_pe_busy = merged.min_pe_busy.min(rs.min_pe_busy);
            merged.max_queue_depth = merged.max_queue_depth.max(rs.max_queue_depth);
            merged.raw_stalls += rs.raw_stalls;
            merged.tuning_active |= rs.tuning_active;
        }
        if merged.min_pe_busy == u64::MAX {
            merged.min_pe_busy = 0;
        }
        rounds.push(merged);
    }
    // Per-PE queue high-water marks concatenate across shard devices, so
    // the area model's total-TQ-slots sum spans the whole deployment.
    let queue_high_water = per_shard
        .iter()
        .flat_map(|s| s.queue_high_water.iter().copied())
        .collect();
    SpmmStats {
        label: label.to_owned(),
        n_pes,
        rounds,
        queue_high_water,
    }
}

/// Fans one request out over the shards (each executed by `run_one` on
/// its dense row slice), computes the merged numerics through the pinned
/// global-order kernel, and merges statistics — the one fan-out/merge
/// path both the tuning-live engine and the frozen sessions execute.
#[allow(clippy::too_many_arguments)]
fn run_shards<S: Sync>(
    threads: usize,
    shards: &[S],
    a: &Csc,
    b: &DenseMatrix,
    label: &str,
    merge_arena: &ScratchArena,
    cols_of: impl Fn(&S) -> Range<usize> + Sync,
    run_one: impl Fn(&S, &DenseMatrix) -> Result<SpmmOutcome, AccelError> + Sync,
) -> Result<ShardedOutcome, AccelError> {
    let results = exec::par_map_threads(threads, shards, |shard| {
        let b_slice = b.row_range(cols_of(shard));
        run_one(shard, &b_slice)
    });
    let mut per_shard = Vec::with_capacity(results.len());
    for outcome in results {
        per_shard.push(outcome?.stats);
    }
    let mut c = DenseMatrix::from_vec(
        a.rows(),
        b.cols(),
        merge_arena.take_f32(a.rows() * b.cols()),
    )
    .expect("arena buffer sized to the output matrix");
    compute_columns(a, b, threads, merge_arena, &mut c);
    Ok(ShardedOutcome {
        outcome: SpmmOutcome {
            c,
            stats: merge_stats(label, &per_shard),
        },
        per_shard,
    })
}

/// One shard of a tuning-live [`ShardedEngine`]. The slice is behind an
/// `Arc` so freezing shares it with the extracted plan instead of
/// re-copying the graph.
#[derive(Debug)]
struct EngineShard {
    cols: Range<usize>,
    a: Arc<Csc>,
    engine: Mutex<FastEngine>,
}

impl EngineShard {
    /// Poison-recovering lock on the member engine. Sound for the same
    /// reason as `ReplayCache`: a shard engine's replayable state (frozen
    /// map + memoized timings) is only ever mutated in complete,
    /// deterministic units, so the post-panic state a recovering lock
    /// observes is a consistent prefix of finished rounds — an isolated
    /// request's panic must not brick the other tenants' shard engines.
    fn lock_engine(&self) -> std::sync::MutexGuard<'_, FastEngine> {
        self.engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A tuning-live sharded engine: the multi-device analogue of
/// [`FastEngine`]. The first operand is partitioned by the
/// configuration's aggregation-side [`ShardPolicy`](crate::ShardPolicy)
/// (or an explicit partitioner via
/// [`with_partitioner`](ShardedEngine::with_partitioner) — how the
/// combination phase shards each layer's feature matrix); each shard then
/// owns a timing-only `FastEngine` whose auto-tuner converges on that
/// shard's own density profile. Freeze via
/// [`freeze_plan`](ShardedEngine::freeze_plan) into a shareable
/// [`ShardedPlan`].
///
/// Unlike `FastEngine` (which only pins the row count), a sharded engine
/// is bound to the exact sparsity structure it partitioned: reusing it
/// with a structurally different operand is rejected, because the stored
/// column slices would no longer describe it.
#[derive(Debug)]
pub struct ShardedEngine {
    config: AccelConfig,
    partitioner: ColumnPartitioner,
    shards: Vec<EngineShard>,
    /// Fingerprint/shape of the partitioned operand (set on first run).
    operand: Option<(u64, usize, usize, usize)>,
    /// Scratch pool for the merged output and the global-order merge
    /// kernel's block accumulators; shared into the frozen plan.
    merge_arena: Arc<ScratchArena>,
}

impl ShardedEngine {
    /// Creates an engine; shards are cut from the first operand it runs,
    /// using the configuration's aggregation-side policy
    /// ([`AccelConfig::partitioner`]).
    pub fn new(config: AccelConfig) -> Self {
        let partitioner = config.partitioner();
        ShardedEngine::with_partitioner(config, partitioner)
    }

    /// Creates an engine that cuts shards with an explicit partitioner
    /// instead of the configuration's aggregation-side policy — e.g.
    /// [`AccelConfig::combination_partitioner`] for the `X × W` phase.
    pub fn with_partitioner(config: AccelConfig, partitioner: ColumnPartitioner) -> Self {
        let merge_arena = Arc::new(if config.scratch_reuse {
            ScratchArena::new()
        } else {
            ScratchArena::disabled()
        });
        ShardedEngine {
            config,
            partitioner,
            shards: Vec::new(),
            operand: None,
            merge_arena,
        }
    }

    /// Replaces the merge-phase scratch arena — lets an owner (e.g.
    /// `GcnRunner`) share one pool across phases instead of holding one
    /// per engine.
    pub fn set_arena(&mut self, arena: Arc<ScratchArena>) {
        self.merge_arena = arena;
    }

    /// Allocation/reuse counters of the merge arena plus every shard
    /// member's own arena.
    pub fn scratch_stats(&self) -> ArenaStats {
        let mut total = self.merge_arena.stats();
        for shard in &self.shards {
            total.absorb(shard.lock_engine().scratch_stats());
        }
        total
    }

    /// Number of shards (0 before the first run).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rows exchanged by remote switching so far, summed over shard
    /// engines.
    pub fn total_switches(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_engine().total_switches())
            .sum()
    }

    /// Replay-cache hits summed over shard engines.
    pub fn replay_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_engine().replay_hits())
            .sum()
    }

    /// Replay-cache misses summed over shard engines.
    pub fn replay_misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_engine().replay_misses())
            .sum()
    }

    fn ensure_shards(&mut self, a: &Csc) -> Result<(), AccelError> {
        let fp = structure_fingerprint(a);
        match self.operand {
            Some((have, rows, cols, nnz)) => {
                if (have, rows, cols, nnz) != (fp, a.rows(), a.cols(), a.nnz()) {
                    return Err(AccelError::InvalidConfig(
                        "sharded engine partitioned for a different operand structure \
                         (shard slices are valid for exactly one sparsity structure)"
                            .into(),
                    ));
                }
                Ok(())
            }
            None => {
                // Shard members run timing-only: the merge recomputes the
                // numerics through the pinned global-order kernel, so
                // per-shard partials would be discarded work (module docs).
                let member_engine = || {
                    let mut engine = FastEngine::new(self.config.clone());
                    engine.set_values_enabled(false);
                    Mutex::new(engine)
                };
                self.shards = self
                    .partitioner
                    .partition(a)
                    .iter()
                    .map(|shard| EngineShard {
                        cols: shard.cols.clone(),
                        a: Arc::new(shard.slice(a)),
                        engine: member_engine(),
                    })
                    .collect();
                if self.shards.is_empty() {
                    // 0-column operand (the partitioner returns no shards):
                    // keep one degenerate shard so round accounting still
                    // mirrors the unsharded engine.
                    self.shards.push(EngineShard {
                        cols: 0..a.cols(),
                        a: Arc::new(a.clone()),
                        engine: member_engine(),
                    });
                }
                self.operand = Some((fp, a.rows(), a.cols(), a.nnz()));
                Ok(())
            }
        }
    }

    /// Runs one sharded SPMM, returning the merged outcome plus per-shard
    /// statistics.
    ///
    /// # Errors
    ///
    /// Shape errors, or [`AccelError::InvalidConfig`] when the engine was
    /// partitioned for a different operand.
    pub fn run_detailed(
        &mut self,
        a: &Csc,
        b: &DenseMatrix,
        label: &str,
    ) -> Result<ShardedOutcome, AccelError> {
        check_shapes(a, b)?;
        self.ensure_shards(a)?;
        let threads = self.config.threads.unwrap_or_else(exec::num_threads);
        run_shards(
            threads,
            &self.shards,
            a,
            b,
            label,
            &self.merge_arena,
            |shard| shard.cols.clone(),
            |shard, b_slice| shard.lock_engine().run(&shard.a, b_slice, label),
        )
    }

    /// Freezes every shard engine's tuning state into a shareable
    /// [`ShardedPlan`] (the sharded analogue of
    /// [`FastEngine::freeze_plan`]).
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] when `a` is not the operand the
    /// engine partitioned.
    pub fn freeze_plan(&mut self, a: &Csc) -> Result<ShardedPlan, AccelError> {
        self.ensure_shards(a)?;
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut engine = shard.lock_engine();
            let plan = engine.freeze_plan(&shard.a)?;
            shards.push(PlanShard {
                cols: shard.cols.clone(),
                a: Arc::clone(&shard.a),
                plan,
            });
        }
        Ok(ShardedPlan {
            config: self.config.clone(),
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            fingerprint: structure_fingerprint(a),
            shards,
            merge_arena: Arc::clone(&self.merge_arena),
        })
    }
}

impl SpmmEngine for ShardedEngine {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        self.run_detailed(a, b, label).map(|s| s.outcome)
    }

    fn plan(
        &mut self,
        _a: &Csc,
        _warmup: &DenseMatrix,
        _label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        // A sharded warm-up freezes into a ShardedPlan, which is not a
        // single TunedPlan; use `ShardedEngine::freeze_plan` instead.
        Err(AccelError::InvalidConfig(
            "sharded engines freeze via ShardedEngine::freeze_plan (a ShardedPlan is not a \
             single TunedPlan)"
                .into(),
        ))
    }

    fn config(&self) -> &AccelConfig {
        &self.config
    }
}

/// One frozen shard of a [`ShardedPlan`].
#[derive(Debug, Clone)]
pub struct PlanShard {
    cols: Range<usize>,
    /// The shard's column slice, shared with the engine that froze it
    /// (and across plan clones) rather than re-copied.
    a: Arc<Csc>,
    plan: TunedPlan,
}

impl PlanShard {
    /// The shard's column range in the full operand.
    pub fn cols(&self) -> Range<usize> {
        self.cols.clone()
    }

    /// Non-zeros in the shard.
    pub fn nnz(&self) -> usize {
        self.a.nnz()
    }

    /// The shard's frozen per-operand plan.
    pub fn plan(&self) -> &TunedPlan {
        &self.plan
    }
}

/// Frozen sharded tuning state: one [`TunedPlan`] per column shard plus
/// the full operand's fingerprint. The sharded analogue of [`TunedPlan`];
/// produced by [`ShardedEngine::freeze_plan`], executed via
/// [`session`](ShardedPlan::session). `Sync` for the same reason plans
/// are: shard maps are immutable, shard replay caches are monotone.
#[derive(Debug, Clone)]
pub struct ShardedPlan {
    config: AccelConfig,
    rows: usize,
    cols: usize,
    nnz: usize,
    fingerprint: u64,
    shards: Vec<PlanShard>,
    /// Scratch pool for the merged output and merge-kernel accumulators,
    /// shared (`Arc`) with the engine that froze the plan and across plan
    /// clones. Deliberately excluded from [`memory_bytes`]
    /// (Self::memory_bytes): retention is transient scratch bounded by the
    /// worker count, observable via [`scratch_stats`](Self::scratch_stats).
    merge_arena: Arc<ScratchArena>,
}

impl ShardedPlan {
    /// The configuration the plan was tuned under.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The frozen shards, in ascending column order.
    pub fn shards(&self) -> &[PlanShard] {
        &self.shards
    }

    /// Non-zeros of the full planned operand.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// FNV-1a fingerprint of the full operand structure.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True when `a` has the structure this plan was partitioned for.
    pub fn matches(&self, a: &Csc) -> bool {
        a.rows() == self.rows
            && a.cols() == self.cols
            && a.nnz() == self.nnz
            && structure_fingerprint(a) == self.fingerprint
    }

    /// Auto-tuning rounds spent before freezing, summed over shards.
    pub fn tuning_rounds(&self) -> usize {
        self.shards.iter().map(|s| s.plan.tuning_rounds()).sum()
    }

    /// Rows exchanged by remote switching during warm-up, summed over
    /// shards.
    pub fn total_switches(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.total_switches()).sum()
    }

    /// Replay hits summed over shard caches.
    pub fn replay_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.replay_hits()).sum()
    }

    /// Replay misses summed over shard caches.
    pub fn replay_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.replay_misses()).sum()
    }

    /// Allocation/reuse counters of the merge arena plus every shard's
    /// per-plan arena. `created` stable across warm requests ⇔ sharded
    /// serving is allocation-free in steady state.
    pub fn scratch_stats(&self) -> ArenaStats {
        let mut total = self.merge_arena.stats();
        for shard in &self.shards {
            total.absorb(shard.plan.scratch_stats());
        }
        total
    }

    /// The merge-phase arena (crate-internal: `GcnPlan` unifies its layer
    /// scratch with it).
    pub(crate) fn merge_arena(&self) -> &Arc<ScratchArena> {
        &self.merge_arena
    }

    /// Returns a finished merged-output buffer to the merge arena (see
    /// [`TunedPlan::recycle_output`]).
    pub fn recycle_output(&self, c: DenseMatrix) {
        self.merge_arena.recycle_f32(c.into_vec());
    }

    /// Estimated heap bytes resident across all shards: each shard's
    /// column-slice copy of the operand plus its frozen per-shard
    /// [`TunedPlan`] (row map + replay cache). The sharded analogue of
    /// [`TunedPlan::memory_bytes`].
    pub fn memory_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.a.heap_bytes() as u64 + s.plan.memory_bytes())
            .sum()
    }

    /// Opens a per-request execution session against this plan.
    pub fn session(&self) -> ShardedSession<'_> {
        ShardedSession {
            plan: self,
            verify_operand: true,
        }
    }

    /// A session that skips the per-run O(nnz) fingerprint re-hash (for
    /// callers that own the exact operand, e.g. `GcnPlan`).
    pub(crate) fn session_trusted(&self) -> ShardedSession<'_> {
        ShardedSession {
            plan: self,
            verify_operand: false,
        }
    }
}

/// A cheap per-request executor over a shared [`ShardedPlan`] — the
/// sharded analogue of [`SpmmSession`](crate::SpmmSession). Every shard
/// round runs under its frozen map (no tuning, ever), shard sessions fan
/// out on [`exec`], and the merged output is pinned bit-identical to the
/// unsharded path.
#[derive(Debug, Clone)]
pub struct ShardedSession<'p> {
    plan: &'p ShardedPlan,
    verify_operand: bool,
}

impl ShardedSession<'_> {
    /// The plan this session executes against.
    pub fn plan(&self) -> &ShardedPlan {
        self.plan
    }

    /// Runs one request, returning the merged outcome plus per-shard
    /// statistics.
    ///
    /// # Errors
    ///
    /// Shape errors, or [`AccelError::InvalidConfig`] when the operand's
    /// structure does not match the plan's fingerprint.
    pub fn run_detailed(
        &self,
        a: &Csc,
        b: &DenseMatrix,
        label: &str,
    ) -> Result<ShardedOutcome, AccelError> {
        check_shapes(a, b)?;
        let plan = self.plan;
        if a.rows() != plan.rows {
            return Err(AccelError::InvalidConfig(format!(
                "sharded plan tuned for {} rows used with {} rows",
                plan.rows,
                a.rows()
            )));
        }
        if self.verify_operand && !plan.matches(a) {
            return Err(AccelError::InvalidConfig(format!(
                "operand structure fingerprint {:#018x} does not match the sharded plan's \
                 {:#018x} (plans are valid for exactly one sparsity structure)",
                structure_fingerprint(a),
                plan.fingerprint
            )));
        }
        let threads = plan.config.threads.unwrap_or_else(exec::num_threads);
        run_shards(
            threads,
            &plan.shards,
            a,
            b,
            label,
            &plan.merge_arena,
            |shard| shard.cols.clone(),
            |shard, b_slice| {
                // Timing-only member sessions: the merged numerics come
                // from the pinned global-order kernel in `run_shards`.
                let mut session = shard.plan.session_trusted();
                session.set_values_enabled(false);
                let mut outcome = session.run(&shard.a, b_slice, label)?;
                // The member output is discarded by the merge — hand its
                // buffer back to the shard plan's arena so warm sharded
                // serving stays allocation-free.
                let c = std::mem::replace(&mut outcome.c, DenseMatrix::zeros(0, 0));
                shard.plan.arena().recycle_f32(c.into_vec());
                Ok(outcome)
            },
        )
    }
}

impl SpmmEngine for ShardedSession<'_> {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        self.run_detailed(a, b, label).map(|s| s.outcome)
    }

    fn plan(
        &mut self,
        _a: &Csc,
        _warmup: &DenseMatrix,
        _label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        Err(AccelError::InvalidConfig(
            "sharded sessions execute an existing ShardedPlan; they do not produce TunedPlans"
                .into(),
        ))
    }

    fn config(&self) -> &AccelConfig {
        &self.plan.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Design, ShardPolicy};
    use awb_sparse::{spmm, Coo};

    fn skewed(n: usize, heavy_nnz: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..heavy_nnz.min(n) {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, (c + 1) % n, 0.5).unwrap();
        }
        for r in 2..n {
            coo.push(r, (r * 7) % n, 1.0).unwrap();
        }
        coo.to_csc()
    }

    fn dense(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) - 3.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    fn config(n_pes: usize, shards: usize) -> AccelConfig {
        let mut builder = AccelConfig::builder();
        builder.n_pes(n_pes).shards(ShardPolicy::Fixed(shards));
        Design::LocalPlusRemote { hop: 1 }.apply(builder.build().unwrap())
    }

    #[test]
    fn sharded_output_matches_unsharded_bitwise() {
        let a = skewed(96, 60);
        let b = dense(96, 10);
        let mut unsharded = FastEngine::new(config(8, 1));
        let reference = unsharded.run(&a, &b, "t").unwrap();
        for shards in [1, 2, 3, 4, 7] {
            let mut engine = ShardedEngine::new(config(8, shards));
            let out = engine.run(&a, &b, "t").unwrap();
            assert_eq!(out.c, reference.c, "{shards} shards");
            let expect = spmm::csc_times_dense(&a, &b).unwrap();
            assert!(out.c.approx_eq(&expect, 1e-4));
        }
    }

    #[test]
    fn single_shard_stats_match_unsharded() {
        // One shard = one device: the merged view degenerates to exactly
        // the unsharded engine's stats.
        let a = skewed(64, 40);
        let b = dense(64, 6);
        let mut unsharded = FastEngine::new(config(8, 1));
        let reference = unsharded.run(&a, &b, "t").unwrap();
        let mut engine = ShardedEngine::new(config(8, 1));
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(out.stats, reference.stats);
        assert_eq!(out.c, reference.c);
    }

    #[test]
    fn stats_views_and_conservation() {
        let a = skewed(96, 60);
        let b = dense(96, 8);
        let mut engine = ShardedEngine::new(config(8, 4));
        let out = engine.run_detailed(&a, &b, "t").unwrap();
        assert_eq!(out.per_shard.len(), 4);
        assert_eq!(engine.shard_count(), 4);
        // Total PEs across shard devices; tasks conserved across shards.
        assert_eq!(out.outcome.stats.n_pes, 4 * 8);
        assert_eq!(
            out.outcome.stats.total_tasks(),
            spmm::csc_times_dense_macs(&a, &b).unwrap() as u64
        );
        // Critical path is the max per round; the sum view is over devices.
        assert!(out.critical_path_cycles() <= out.sum_cycles());
        let per_shard_max: u64 = (0..b.cols())
            .map(|r| {
                out.per_shard
                    .iter()
                    .map(|s| s.rounds[r].cycles)
                    .max()
                    .unwrap()
            })
            .sum();
        assert_eq!(out.critical_path_cycles(), per_shard_max);
        let util = out.outcome.stats.utilization();
        assert!(util > 0.0 && util <= 1.0);
        assert_eq!(out.outcome.stats.queue_high_water.len(), 4 * 8);
    }

    #[test]
    fn frozen_plan_requests_are_bit_identical_and_tune_free() {
        let a = skewed(128, 90);
        let warmup = dense(128, 8);
        let b = dense(128, 5);
        let mut engine = ShardedEngine::new(config(8, 3));
        let cold = engine.run(&a, &warmup, "warmup").unwrap();
        let plan = engine.freeze_plan(&a).unwrap();
        assert_eq!(plan.shard_count(), 3);
        assert!(plan.matches(&a));
        assert!(plan.tuning_rounds() > 0);
        let served = plan.session().run_detailed(&a, &b, "req").unwrap();
        for s in &served.per_shard {
            assert_eq!(s.tuning_rounds(), 0);
        }
        // Same request through the unsharded reference path: bit-identical.
        let mut reference = FastEngine::new(config(8, 1));
        reference.run(&a, &warmup, "warmup").unwrap();
        let expect = reference.run(&a, &b, "req").unwrap();
        assert_eq!(served.outcome.c, expect.c);
        let _ = cold;
        // Replay counters aggregate over shard caches.
        let hits = plan.replay_hits();
        plan.session().run_detailed(&a, &b, "req").unwrap();
        assert!(plan.replay_hits() > hits);
    }

    #[test]
    fn engine_and_plan_reject_foreign_operands() {
        let a = skewed(64, 40);
        let b = dense(64, 4);
        let mut engine = ShardedEngine::new(config(8, 2));
        engine.run(&a, &b, "t").unwrap();
        let other = skewed(64, 20); // same shape, different structure
        assert!(matches!(
            engine.run(&other, &b, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
        let plan = engine.freeze_plan(&a).unwrap();
        assert!(!plan.matches(&other));
        assert!(matches!(
            plan.session().run_detailed(&other, &b, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn memory_budget_policy_keeps_shards_on_chip() {
        let a = skewed(64, 48); // 2*48 + 62 = 158 nnz
        let b = dense(64, 4);
        let mut cfg = Design::Baseline.apply(
            AccelConfig::builder()
                .n_pes(8)
                .shards(ShardPolicy::MemoryBudget)
                .build()
                .unwrap(),
        );
        // Budget of 64 nnz per shard: the full operand would be off-chip,
        // every shard fits.
        cfg.memory = awb_hw::MemoryModel {
            on_chip_bytes: 64 * awb_hw::BYTES_PER_NNZ,
            off_chip_bytes_per_cycle: 64.0,
        };
        assert!(!cfg.memory.fits_on_chip(a.nnz()));
        let mut engine = ShardedEngine::new(cfg.clone());
        let out = engine.run_detailed(&a, &b, "t").unwrap();
        assert!(engine.shard_count() >= 3, "{} shards", engine.shard_count());
        // Every shard operand fits the budget, so shard replay caches are
        // live (an off-chip operand would bypass them).
        assert!(engine.replay_hits() + engine.replay_misses() > 0);
        // And the output still matches the unsharded reference bitwise.
        let mut unsharded_cfg = cfg;
        unsharded_cfg.shards = ShardPolicy::Single;
        let reference = FastEngine::new(unsharded_cfg).run(&a, &b, "t").unwrap();
        assert_eq!(out.outcome.c, reference.c);
    }

    /// Regression: `merge_stats` used to size the merged round vector from
    /// the *first* shard and index every other shard at that length —
    /// shards with more rounds panicked, shards with fewer were silently
    /// truncated. Deliberately unequal convergence (3/1/0 rounds) must
    /// merge over the max, padding exhausted shards with empty rounds.
    #[test]
    fn merge_stats_handles_unequal_per_shard_round_counts() {
        let round = |cycles: u64, tasks: u64| RoundStats {
            cycles,
            tasks,
            busy_cycles: tasks,
            max_pe_busy: tasks,
            min_pe_busy: 1,
            max_queue_depth: 2,
            raw_stalls: 0,
            tuning_active: false,
        };
        let stats = |rounds: Vec<RoundStats>| SpmmStats {
            label: "s".into(),
            n_pes: 4,
            rounds,
            queue_high_water: vec![2; 4],
        };
        let short_first = [
            stats(vec![round(10, 8)]),
            stats(vec![round(7, 4), round(9, 4), round(30, 4)]),
            stats(Vec::new()),
        ];
        let merged = merge_stats("m", &short_first);
        assert_eq!(merged.rounds.len(), 3, "max round count, not the first");
        assert_eq!(merged.n_pes, 12);
        // Round 0 merges all three shards; rounds 1/2 only the long one.
        assert_eq!(merged.rounds[0].cycles, 10);
        assert_eq!(merged.rounds[0].tasks, 12);
        assert_eq!(merged.rounds[1].cycles, 9);
        assert_eq!(merged.rounds[2].cycles, 30);
        assert_eq!(merged.rounds[2].tasks, 4);
        // Padded (idle) shard devices floor the min-busy at 0.
        assert_eq!(merged.rounds[1].min_pe_busy, 0);
        // No trailing round is dropped whichever shard comes first.
        let long_first = [short_first[1].clone(), short_first[0].clone()];
        let merged2 = merge_stats("m", &long_first);
        assert_eq!(merged2.rounds.len(), 3);
        assert_eq!(merged2.total_cycles(), 10 + 9 + 30);
        assert_eq!(merged2.total_tasks(), 8 + 12);
    }

    /// Shard members execute values-free; their timing must be exactly
    /// what a values-carrying engine reports on the same shard inputs.
    #[test]
    fn values_free_members_match_values_carrying_timing() {
        let a = skewed(96, 60);
        let b = dense(96, 8);
        let cfg = config(8, 3);
        let mut engine = ShardedEngine::new(cfg.clone());
        let out = engine.run_detailed(&a, &b, "t").unwrap();
        // Re-run every shard slice on a values-carrying FastEngine:
        // per-shard stats (ascending column order) must match bit for bit.
        for (i, shard) in cfg.partitioner().partition(&a).iter().enumerate() {
            let a_slice = shard.slice(&a);
            let b_slice = b.row_range(shard.cols.clone());
            let mut carrying = FastEngine::new(cfg.clone());
            let reference = carrying.run(&a_slice, &b_slice, "t").unwrap();
            assert_eq!(
                out.per_shard[i], reference.stats,
                "shard {i} (cols {:?}) timing diverged under values-free execution",
                shard.cols
            );
        }
    }

    #[test]
    fn with_partitioner_overrides_config_policy() {
        // Config says unsharded; an explicit partitioner still cuts 3
        // shards (the combination phase's construction path).
        let a = skewed(96, 60);
        let b = dense(96, 6);
        let cfg = config(8, 1);
        let mut engine =
            ShardedEngine::with_partitioner(cfg.clone(), ColumnPartitioner::by_shards(3));
        let out = engine.run_detailed(&a, &b, "t").unwrap();
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(out.outcome.stats.n_pes, 3 * 8);
        let reference = FastEngine::new(cfg).run(&a, &b, "t").unwrap();
        assert_eq!(out.outcome.c, reference.c);
    }

    #[test]
    fn spmm_engine_plan_is_rejected() {
        let a = skewed(32, 10);
        let b = dense(32, 2);
        let mut engine = ShardedEngine::new(config(4, 2));
        assert!(matches!(
            SpmmEngine::plan(&mut engine, &a, &b, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
    }
}
