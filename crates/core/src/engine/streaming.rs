//! Out-of-core streaming execution over a chunked on-disk sparse store.
//!
//! The sharded layer (`engine::sharded`) assumes every column shard's
//! `Csc` slice is resident simultaneously; this module removes that
//! assumption. A [`StreamingEngine`] plans nnz-balanced, chunk-aligned
//! column shards from a [`SparseStore`] manifest alone (no values
//! loaded), then executes them **sequentially** with a bounded working
//! set: while shard `i` simulates and accumulates, shard `i+1`'s chunks
//! are prefetched on the existing [`exec`] substrate, and shard `i`'s
//! slice is dropped after its rounds. Peak resident sparse bytes are
//! therefore bounded by roughly two shards — the `--host-mem-budget`
//! knob — however large the stored graph is.
//!
//! # Bit-identity
//!
//! The numerics reuse the pinned blocked-accumulate kernels exactly as
//! the sharded merge does. For every output block, shards are visited in
//! ascending column order and columns within a shard in ascending order,
//! so the per-block reduction replays `csc_accumulate_block`'s global
//! ascending-`j` column stream — the same skip-if-all-zero rule, the
//! same `csc_axpy_block` calls, the same final `drain_block_into` — and
//! outputs are bit-identical to the fully-resident engines (asserted by
//! the tests below and `tests/out_of_core.rs`).
//!
//! The only difference from `compute_columns` is *when* blocks see each
//! column: block accumulators persist across shards (one per output
//! block, drained once after the last shard) instead of each block
//! re-scanning a resident operand. Within one block the operation
//! sequence is unchanged.
//!
//! # Timing and overlap accounting
//!
//! Each shard gets its own timing-only `FastEngine` (exactly the
//! sharded-device model), merged through the same critical-path rules
//! ([`merge_stats`](super::sharded)). [`StreamStats`] additionally
//! reports I/O traffic, the peak resident slice bytes actually observed,
//! and how much prefetch wall-time overlapped compute. Prefetch runs as
//! a second `par_map` task; when the caller is itself inside an `exec`
//! worker (nested parallelism runs inline) the pass degrades to
//! synchronous fetches — still correct, just with `overlap_s = 0`, and
//! accounted honestly as such.

use crate::config::AccelConfig;
use crate::engine::arena::{ArenaStats, ScratchArena};
use crate::engine::sharded::merge_stats;
use crate::engine::steady::block_spans;
use crate::engine::{check_shapes, PlanOutcome, SpmmEngine, SpmmOutcome, TunedPlan};
use crate::error::AccelError;
use crate::exec;
use crate::stats::SpmmStats;
use crate::FastEngine;
use awb_sparse::partition::ColumnPartitioner;
use awb_sparse::spmm::{csc_axpy_block, drain_block_into};
use awb_sparse::store::{SparseStore, StoreError};
use awb_sparse::{Csc, DenseMatrix};
use std::ops::Range;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Maps a store failure into the accelerator's typed ingest error (the
/// PR 7 `validate_ingest` convention: bad input is a typed rejection,
/// never a panic mid-stream).
pub(crate) fn store_err(e: StoreError) -> AccelError {
    AccelError::InvalidInput(format!("sparse store: {e}"))
}

/// I/O, residency, and overlap statistics of one streaming pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Column shards the pass streamed through.
    pub shards: usize,
    /// Peak bytes of sparse slices resident at once (current shard plus
    /// the prefetched next shard, at their largest).
    pub resident_peak_bytes: usize,
    /// Compressed bytes read from the store across the pass.
    pub io_bytes: u64,
    /// Wall seconds spent in per-shard simulate + accumulate.
    pub compute_s: f64,
    /// Wall seconds spent reading shard slices from the store.
    pub prefetch_s: f64,
    /// Wall seconds during which a prefetch ran concurrently with
    /// compute (per shard step: `min(compute wall, prefetch wall)`; 0
    /// when the pass ran inside an `exec` worker and fetched inline).
    pub overlap_s: f64,
}

impl StreamStats {
    /// Fraction of compute wall-time that had a prefetch running
    /// alongside it (0 when there was no compute).
    pub fn overlap_fraction(&self) -> f64 {
        if self.compute_s > 0.0 {
            (self.overlap_s / self.compute_s).min(1.0)
        } else {
            0.0
        }
    }
}

/// One planned stream shard: its column range and nnz (from the
/// manifest) plus the per-shard timing engine.
#[derive(Debug)]
struct StreamShard {
    cols: Range<usize>,
    nnz: usize,
    /// Timing-only device model for this shard, persistent across runs so
    /// its tuned row map and replay cache survive (the operand slice does
    /// not — it is re-read each pass).
    engine: Mutex<FastEngine>,
}

impl StreamShard {
    /// Poison-recovering lock (same soundness argument as the sharded
    /// layer: a panicking simulation never leaves partial tuning state
    /// that later runs could observe as *wrong* timing, only as a
    /// differently-warmed cache).
    fn lock_engine(&self) -> MutexGuard<'_, FastEngine> {
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Plans chunk-aligned shards for `store` so that two consecutive shard
/// slices fit the host budget together (double buffering: compute on one
/// while prefetching the other).
fn plan_stream_shards(store: &SparseStore, host_budget: usize) -> Vec<(Range<usize>, usize)> {
    let per_shard = (host_budget / 2).max(1);
    let mut shards: Vec<(Range<usize>, usize)> = ColumnPartitioner::by_resident_bytes(per_shard)
        .partition_chunks(store.rows(), store.column_chunks())
        .into_iter()
        .map(|s| (s.cols.clone(), s.nnz))
        .collect();
    if shards.is_empty() {
        // Degenerate 0-column store: keep one empty shard so a pass still
        // produces a (rows × k) output and well-formed stats.
        shards.push((0..store.cols(), 0));
    }
    shards
}

/// Compressed bytes the store reads to materialize this column range
/// (shards are chunk-aligned, so overlapping chunks are read exactly
/// once and this sum is exact).
fn range_disk_bytes(store: &SparseStore, range: &Range<usize>) -> u64 {
    store
        .column_chunks()
        .iter()
        .filter(|c| c.lines.start < range.end && c.lines.end > range.start)
        .map(|c| c.disk_bytes)
        .sum()
}

/// Rejects an operand that is not the stored matrix. Checks dimensions,
/// nnz, and full `Col Ptr` equality (O(cols) against the store's resident
/// pointer — cheap enough for every run; a forged operand with identical
/// structure but different values would go undetected here, which is the
/// same trust model as `TunedPlan`'s values-free fingerprint).
fn verify_operand(store: &SparseStore, a: &Csc) -> Result<(), AccelError> {
    if a.rows() != store.rows()
        || a.cols() != store.cols()
        || a.nnz() != store.nnz()
        || a.col_ptr() != store.col_ptr()
    {
        return Err(AccelError::InvalidConfig(format!(
            "operand ({}x{}, {} nnz) is not the matrix stored at {} ({}x{}, {} nnz) — \
             streaming plans are valid for exactly the stored operand",
            a.rows(),
            a.cols(),
            a.nnz(),
            store.dir().display(),
            store.rows(),
            store.cols(),
            store.nnz()
        )));
    }
    Ok(())
}

/// One step's task in the two-lane overlap pipeline.
#[derive(Debug, Clone, Copy)]
enum Lane {
    Compute,
    Prefetch,
}

/// A lane's result: the shard's timing stats or the next shard's slice,
/// each with its wall time.
enum LaneOut {
    Computed(Result<SpmmStats, AccelError>, f64),
    Fetched(Result<Csc, StoreError>, f64),
}

/// Everything a streaming pass needs besides the per-shard timing runner.
struct StreamPass<'a> {
    store: &'a SparseStore,
    shards: &'a [(Range<usize>, usize)],
    b: &'a DenseMatrix,
    label: &'a str,
    /// Arena for the output matrix and the persistent block accumulators.
    arena: &'a ScratchArena,
    /// Host worker threads configured for this pass (`AccelConfig.threads`
    /// or a session override); `None` defers to [`exec::num_threads`].
    threads: Option<usize>,
}

/// Executes one streaming pass: sequential shards, prefetch overlapped
/// with compute, pinned-order numerics into persistent block
/// accumulators drained after the last shard. `run_shard` simulates one
/// shard's timing (values-free) and returns its stats.
fn stream_pass(
    pass: StreamPass<'_>,
    run_shard: &(dyn Fn(usize, &Csc, &DenseMatrix) -> Result<SpmmStats, AccelError> + Sync),
) -> Result<(SpmmOutcome, StreamStats), AccelError> {
    let StreamPass {
        store,
        shards,
        b,
        label,
        arena,
        threads,
    } = pass;
    let rows = store.rows();
    let mut c = DenseMatrix::from_vec(rows, b.cols(), arena.take_f32(rows * b.cols()))
        .expect("arena buffer sized to the output matrix");
    let spans = block_spans(0, b.cols());
    // Persistent per-block accumulators: unlike `compute_columns`, which
    // re-scans a resident operand per block, each block accumulates every
    // shard's contribution and is drained exactly once at the end. The
    // mutex is uncontended (only the compute lane touches it); it exists
    // because the lane closure must be `Fn + Sync`.
    let accs = Mutex::new(
        spans
            .iter()
            .map(|&(_, width)| arena.checkout_f32(rows * width))
            .collect::<Vec<_>>(),
    );

    // Two lanes whenever more than one worker is in play — configured
    // explicitly or ambient — because the prefetch lane blocks on file
    // I/O, which overlaps with compute even on one core. Nested `par_map`
    // runs inline inside an exec worker, so overlap is only claimed when
    // this pass genuinely runs its lanes on separate threads.
    let workers = threads.unwrap_or_else(exec::num_threads);
    let lanes = if workers > 1 && !exec::in_worker() {
        2
    } else {
        1
    };
    let mut stats = StreamStats {
        shards: shards.len(),
        ..StreamStats::default()
    };
    let mut per_shard: Vec<SpmmStats> = Vec::with_capacity(shards.len());

    // The first fetch has nothing to overlap with.
    let t0 = Instant::now();
    let mut cur = store
        .read_col_range(shards[0].0.clone())
        .map_err(store_err)?;
    stats.prefetch_s += t0.elapsed().as_secs_f64();
    stats.io_bytes += range_disk_bytes(store, &shards[0].0);
    stats.resident_peak_bytes = cur.heap_bytes();

    for s in 0..shards.len() {
        let range = &shards[s].0;
        let next = shards.get(s + 1).map(|(r, _)| r.clone());
        let tasks: Vec<Lane> = if next.is_some() {
            vec![Lane::Compute, Lane::Prefetch]
        } else {
            vec![Lane::Compute]
        };
        let cur_ref = &cur;
        let accs_ref = &accs;
        let next_ref = &next;
        let outs = exec::par_map_threads(lanes, &tasks, |lane| match lane {
            Lane::Compute => {
                let t0 = Instant::now();
                let b_slice = b.row_range(range.clone());
                let timed = run_shard(s, cur_ref, &b_slice).map(|shard_stats| {
                    // Numerics: ascending global column order within each
                    // block (shards ascending, `j` ascending inside the
                    // shard), the pinned reduction stream.
                    let mut accs = accs_ref.lock().unwrap_or_else(PoisonError::into_inner);
                    for (bi, &(k0, width)) in spans.iter().enumerate() {
                        let acc = &mut accs[bi];
                        for j in 0..cur_ref.cols() {
                            let scales = &b.row(range.start + j)[k0..k0 + width];
                            if scales.iter().all(|&s| s == 0.0) {
                                continue;
                            }
                            csc_axpy_block(cur_ref, j, scales, acc);
                        }
                    }
                    shard_stats
                });
                LaneOut::Computed(timed, t0.elapsed().as_secs_f64())
            }
            Lane::Prefetch => {
                let t0 = Instant::now();
                let fetched =
                    store.read_col_range(next_ref.clone().expect("prefetch lane only with next"));
                LaneOut::Fetched(fetched, t0.elapsed().as_secs_f64())
            }
        });

        let mut fetched_next: Option<Csc> = None;
        let mut compute_wall = 0.0f64;
        let mut prefetch_wall: Option<f64> = None;
        for out in outs {
            match out {
                LaneOut::Computed(r, wall) => {
                    per_shard.push(r?);
                    compute_wall = wall;
                }
                LaneOut::Fetched(r, wall) => {
                    fetched_next = Some(r.map_err(store_err)?);
                    prefetch_wall = Some(wall);
                }
            }
        }
        stats.compute_s += compute_wall;
        if let Some(wall) = prefetch_wall {
            stats.prefetch_s += wall;
            if lanes > 1 {
                stats.overlap_s += compute_wall.min(wall);
            }
        }
        match fetched_next {
            Some(next_slice) => {
                stats.io_bytes += range_disk_bytes(store, next.as_ref().expect("fetched"));
                // Both buffers were resident while the prefetch completed.
                stats.resident_peak_bytes = stats
                    .resident_peak_bytes
                    .max(cur.heap_bytes() + next_slice.heap_bytes());
                cur = next_slice; // previous shard's slice drops here
            }
            None => {
                stats.resident_peak_bytes = stats.resident_peak_bytes.max(cur.heap_bytes());
            }
        }
    }

    let mut accs = accs.into_inner().unwrap_or_else(PoisonError::into_inner);
    for (&(k0, width), acc) in spans.iter().zip(accs.iter_mut()) {
        drain_block_into(&mut c, k0, width, acc);
    }

    let merged = merge_stats(label, &per_shard);
    Ok((SpmmOutcome { c, stats: merged }, stats))
}

/// Out-of-core SPMM engine over a [`SparseStore`] (see module docs).
///
/// Mirrors [`ShardedEngine`](super::ShardedEngine)'s device model — one
/// timing-only [`FastEngine`] per column shard, critical-path-merged
/// stats, pinned global-order numerics — but holds at most two shard
/// slices resident at a time instead of all of them.
#[derive(Debug)]
pub struct StreamingEngine {
    config: AccelConfig,
    store: Arc<SparseStore>,
    host_budget: usize,
    shards: Vec<StreamShard>,
    /// Pool for the merged output and the persistent block accumulators.
    arena: Arc<ScratchArena>,
    /// Pool shared by the shard members' (values-free) outputs.
    member_arena: Arc<ScratchArena>,
    /// The last run's streaming statistics.
    last_stream: StreamStats,
}

impl StreamingEngine {
    /// Builds a streaming engine over an already-opened store. Shard cuts
    /// are planned from the manifest's per-chunk nnz profiles alone —
    /// `O(chunks)`, no values loaded — such that two consecutive shard
    /// slices together stay within `host_budget` bytes (chunk granularity
    /// permitting: a single chunk larger than half the budget still
    /// becomes its own shard).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if `host_budget == 0`.
    pub fn new(
        config: AccelConfig,
        store: Arc<SparseStore>,
        host_budget: usize,
    ) -> Result<Self, AccelError> {
        if host_budget == 0 {
            return Err(AccelError::InvalidConfig(
                "host memory budget must be >= 1 byte".into(),
            ));
        }
        let scratch_reuse = config.scratch_reuse;
        let make_arena = move || {
            Arc::new(if scratch_reuse {
                ScratchArena::new()
            } else {
                ScratchArena::disabled()
            })
        };
        let member_arena = make_arena();
        let shards = plan_stream_shards(&store, host_budget)
            .into_iter()
            .map(|(cols, nnz)| {
                let mut engine = FastEngine::new(config.clone());
                engine.set_values_enabled(false);
                engine.set_arena(Arc::clone(&member_arena));
                StreamShard {
                    cols,
                    nnz,
                    engine: Mutex::new(engine),
                }
            })
            .collect();
        Ok(StreamingEngine {
            config,
            store,
            host_budget,
            shards,
            arena: make_arena(),
            member_arena,
            last_stream: StreamStats::default(),
        })
    }

    /// Opens the store at `dir` (full ingest validation) and builds a
    /// streaming engine over it.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidInput`] when the store is missing or corrupt;
    /// [`AccelError::InvalidConfig`] if `host_budget == 0`.
    pub fn open(
        config: AccelConfig,
        dir: impl AsRef<std::path::Path>,
        host_budget: usize,
    ) -> Result<Self, AccelError> {
        let store = SparseStore::open(dir).map_err(store_err)?;
        StreamingEngine::new(config, Arc::new(store), host_budget)
    }

    /// The backing store.
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// The host-memory budget in bytes the shard plan was sized for.
    pub fn host_budget(&self) -> usize {
        self.host_budget
    }

    /// Number of planned stream shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The last run's streaming statistics (zeros before the first run).
    pub fn stream_stats(&self) -> StreamStats {
        self.last_stream
    }

    /// Rows exchanged by remote switching, summed over shard engines.
    pub fn total_switches(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_engine().total_switches())
            .sum()
    }

    /// Replay-cache hits summed over shard engines.
    pub fn replay_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_engine().replay_hits())
            .sum()
    }

    /// Replay-cache misses summed over shard engines.
    pub fn replay_misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock_engine().replay_misses())
            .sum()
    }

    /// Scratch counters: the merge/accumulator arena plus the shared
    /// member-output pool (shard engines' simulator scratch included).
    pub fn scratch_stats(&self) -> ArenaStats {
        let mut stats = self.arena.stats();
        stats.absorb(self.member_arena.stats());
        stats
    }

    /// Freezes every shard engine's tuned state into a [`StreamedPlan`]
    /// (the streaming analogue of
    /// [`ShardedEngine::freeze_plan`](super::ShardedEngine::freeze_plan)).
    /// Shard slices are re-read sequentially — one resident at a time —
    /// so freezing obeys the same memory bound as running.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidInput`] if the store fails mid-read;
    /// [`AccelError::InvalidConfig`] from a shard engine tuned for a
    /// different row count (cannot happen through this engine's own API).
    pub fn freeze_plan(&mut self) -> Result<StreamedPlan, AccelError> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let slice = self
                .store
                .read_col_range(shard.cols.clone())
                .map_err(store_err)?;
            let plan = shard.lock_engine().freeze_plan(&slice)?;
            shards.push(StreamPlanShard {
                cols: shard.cols.clone(),
                nnz: shard.nnz,
                plan,
            });
        }
        Ok(StreamedPlan {
            config: self.config.clone(),
            store: Arc::clone(&self.store),
            host_budget: self.host_budget,
            shards,
            arena: Arc::clone(&self.arena),
            stream_stats: Mutex::new(self.last_stream),
        })
    }
}

impl SpmmEngine for StreamingEngine {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        check_shapes(a, b)?;
        verify_operand(&self.store, a)?;
        let shard_ranges: Vec<(Range<usize>, usize)> = self
            .shards
            .iter()
            .map(|s| (s.cols.clone(), s.nnz))
            .collect();
        let shards = &self.shards;
        let member_arena = &self.member_arena;
        let (outcome, stream) = stream_pass(
            StreamPass {
                store: &self.store,
                shards: &shard_ranges,
                b,
                label,
                arena: &self.arena,
                threads: self.config.threads,
            },
            &|s, cur, b_slice| {
                let mut engine = shards[s].lock_engine();
                let mut out = engine.run(cur, b_slice, label)?;
                // The member's output is all-zeros (values-free); hand its
                // buffer straight back to the shared member pool.
                let c = std::mem::replace(&mut out.c, DenseMatrix::zeros(0, 0));
                member_arena.recycle_f32(c.into_vec());
                Ok(out.stats)
            },
        )?;
        self.last_stream = stream;
        Ok(outcome)
    }

    fn plan(
        &mut self,
        _a: &Csc,
        _warmup: &DenseMatrix,
        _label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        // A streamed warm-up freezes one TunedPlan per shard, which the
        // single-plan PlanOutcome cannot carry (same contract as the
        // sharded engine): warm up via `run`, freeze via `freeze_plan`.
        Err(AccelError::InvalidConfig(
            "StreamingEngine cannot produce a single-operand TunedPlan; \
             run a warm-up and call StreamingEngine::freeze_plan instead"
                .into(),
        ))
    }

    fn config(&self) -> &AccelConfig {
        &self.config
    }
}

/// One frozen stream shard: its column range, manifest nnz, and tuned
/// per-shard plan.
#[derive(Debug, Clone)]
pub struct StreamPlanShard {
    /// Column range of the original matrix this shard covers.
    pub cols: Range<usize>,
    /// Non-zeros in the range (from the store manifest).
    pub nnz: usize,
    plan: TunedPlan,
}

/// A frozen, `Sync` out-of-core plan: per-shard [`TunedPlan`]s plus the
/// store handle and budget, executed by [`StreamedSession`]s with the
/// same bounded-residency pipeline as the engine.
#[derive(Debug)]
pub struct StreamedPlan {
    config: AccelConfig,
    store: Arc<SparseStore>,
    host_budget: usize,
    shards: Vec<StreamPlanShard>,
    arena: Arc<ScratchArena>,
    /// The most recent session's streaming stats (sessions run with
    /// `&self`, hence the mutex; uncontended in practice).
    stream_stats: Mutex<StreamStats>,
}

impl Clone for StreamedPlan {
    fn clone(&self) -> Self {
        StreamedPlan {
            config: self.config.clone(),
            store: Arc::clone(&self.store),
            host_budget: self.host_budget,
            shards: self.shards.clone(),
            arena: Arc::clone(&self.arena),
            stream_stats: Mutex::new(self.stream_stats()),
        }
    }
}

impl StreamedPlan {
    /// The configuration the plan was tuned under.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The backing store.
    pub fn store(&self) -> &SparseStore {
        &self.store
    }

    /// The host-memory budget in bytes the shard plan was sized for.
    pub fn host_budget(&self) -> usize {
        self.host_budget
    }

    /// The frozen per-shard plans.
    pub fn shards(&self) -> &[StreamPlanShard] {
        &self.shards
    }

    /// Number of stream shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// True when `a` is the stored operand this plan streams (dimension,
    /// nnz, and `Col Ptr` equality against the store).
    pub fn matches(&self, a: &Csc) -> bool {
        verify_operand(&self.store, a).is_ok()
    }

    /// Auto-tuning rounds paid across all shard warm-ups.
    pub fn tuning_rounds(&self) -> usize {
        self.shards.iter().map(|s| s.plan.tuning_rounds()).sum()
    }

    /// Rows exchanged by remote switching across all shard warm-ups.
    pub fn total_switches(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.total_switches()).sum()
    }

    /// Replay-cache hits summed over shard plans (and their sessions).
    pub fn replay_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.replay_hits()).sum()
    }

    /// Replay-cache misses summed over shard plans (and their sessions).
    pub fn replay_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.replay_misses()).sum()
    }

    /// Resident bytes of the plan's frozen state (row maps + replay
    /// caches across shards) — the plan-cache budgeting input. The
    /// streamed operand itself is *not* resident, which is the point.
    pub fn memory_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.plan.memory_bytes()).sum()
    }

    /// The most recent session's streaming statistics.
    pub fn stream_stats(&self) -> StreamStats {
        *self
            .stream_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The plan's merge/accumulator arena (shared into the per-layer
    /// `X × W` engines by the GCN runner, mirroring `TunedPlan::arena`).
    pub(crate) fn arena(&self) -> &Arc<ScratchArena> {
        &self.arena
    }

    /// Scratch counters: the plan's merge arena plus every shard plan's.
    pub fn scratch_stats(&self) -> ArenaStats {
        let mut stats = self.arena.stats();
        for s in &self.shards {
            stats.absorb(s.plan.scratch_stats());
        }
        stats
    }

    /// Returns a finished output's buffer to the plan's arena (see
    /// [`TunedPlan::recycle_output`]).
    pub fn recycle_output(&self, c: DenseMatrix) {
        self.arena.recycle_f32(c.into_vec());
    }

    /// Opens a per-request streaming session against this plan.
    pub fn session(&self) -> StreamedSession<'_> {
        StreamedSession {
            plan: self,
            threads: self.config.threads,
        }
    }
}

/// A cheap per-request executor over a shared [`StreamedPlan`] — the
/// streaming analogue of [`ShardedSession`](super::ShardedSession), with
/// the same bounded-residency prefetch pipeline as the engine.
#[derive(Debug, Clone)]
pub struct StreamedSession<'p> {
    plan: &'p StreamedPlan,
    threads: Option<usize>,
}

impl StreamedSession<'_> {
    /// The plan this session executes against.
    pub fn plan(&self) -> &StreamedPlan {
        self.plan
    }

    /// Overrides the worker-thread count for this session's per-shard
    /// timing (results are bit-identical at any setting).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }
}

impl SpmmEngine for StreamedSession<'_> {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        check_shapes(a, b)?;
        let plan = self.plan;
        verify_operand(&plan.store, a)?;
        let shard_ranges: Vec<(Range<usize>, usize)> = plan
            .shards
            .iter()
            .map(|s| (s.cols.clone(), s.nnz))
            .collect();
        let threads = self.threads;
        let (outcome, stream) = stream_pass(
            StreamPass {
                store: &plan.store,
                shards: &shard_ranges,
                b,
                label,
                arena: &plan.arena,
                threads: threads.or(plan.config.threads),
            },
            &|s, cur, b_slice| {
                let shard = &plan.shards[s];
                // Trusted: the slice was just re-read from the very store
                // the shard plan was frozen from (bit-identical, so the
                // O(nnz) re-hash would only re-prove what `verify_operand`
                // plus the store's checksums already established).
                let mut session = shard.plan.session_trusted();
                session.set_values_enabled(false);
                session.set_threads(threads);
                let mut out = session.run(cur, b_slice, label)?;
                let c = std::mem::replace(&mut out.c, DenseMatrix::zeros(0, 0));
                shard.plan.recycle_output(c);
                Ok(out.stats)
            },
        )?;
        *plan
            .stream_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = stream;
        Ok(outcome)
    }

    fn plan(
        &mut self,
        _a: &Csc,
        _warmup: &DenseMatrix,
        _label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        Err(AccelError::InvalidConfig(
            "a StreamedSession executes an existing StreamedPlan; it cannot produce a TunedPlan"
                .into(),
        ))
    }

    fn config(&self) -> &AccelConfig {
        &self.plan.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use awb_sparse::Coo;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "awb-stream-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A power-law-ish matrix: a few heavy columns, light tail.
    fn skewed(n: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..6.min(n) {
            for r in 0..n / 2 {
                coo.push((r * 3 + c) % n, c, ((r % 7) as f32) - 2.5)
                    .unwrap();
            }
        }
        for c in 6..n {
            coo.push(c % n, c, 0.5 * (c % 5) as f32 - 1.0).unwrap();
            coo.push((c * 7 + 1) % n, c, 1.25).unwrap();
        }
        coo.to_csc()
    }

    fn dense(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 7) as f32) - 3.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    fn config(n_pes: usize) -> AccelConfig {
        Design::LocalPlusRemote { hop: 1 }
            .apply(AccelConfig::builder().n_pes(n_pes).build().unwrap())
    }

    fn bits(c: &DenseMatrix) -> Vec<u32> {
        c.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Writes `a` to a fresh store and returns a streaming engine whose
    /// budget forces several shards.
    fn streamed(tag: &str, a: &Csc, budget: usize) -> (PathBuf, Arc<SparseStore>, StreamingEngine) {
        let dir = temp_dir(tag);
        let store = Arc::new(SparseStore::write_with_chunk_nnz(&dir, a, 16).expect("store write"));
        let engine =
            StreamingEngine::new(config(8), Arc::clone(&store), budget).expect("streaming engine");
        (dir, store, engine)
    }

    #[test]
    fn streamed_run_is_bit_identical_to_resident_run() {
        let a = skewed(96);
        let b = dense(96, 10);
        let budget = a.heap_bytes() / 3;
        let (dir, _store, mut streaming) = streamed("bitident", &a, budget);
        assert!(streaming.shard_count() > 1, "budget must force sharding");
        let streamed_out = streaming.run(&a, &b, "t").unwrap();
        let resident_out = FastEngine::new(config(8)).run(&a, &b, "t").unwrap();
        assert_eq!(bits(&streamed_out.c), bits(&resident_out.c));
        // Work is conserved across the shard merge.
        assert_eq!(
            streamed_out.stats.total_tasks(),
            resident_out.stats.total_tasks()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resident_peak_stays_under_budget_and_io_is_counted() {
        let a = skewed(128);
        let budget = a.heap_bytes() / 2;
        let (dir, store, mut streaming) = streamed("budget", &a, budget);
        let b = dense(128, 8);
        streaming.run(&a, &b, "t").unwrap();
        let stream = streaming.stream_stats();
        assert!(stream.shards > 1);
        assert!(
            stream.resident_peak_bytes < a.heap_bytes(),
            "peak {} vs whole matrix {}",
            stream.resident_peak_bytes,
            a.heap_bytes()
        );
        assert!(
            stream.resident_peak_bytes <= budget,
            "peak {} exceeds budget {budget}",
            stream.resident_peak_bytes
        );
        assert_eq!(stream.io_bytes, store.column_disk_bytes());
        assert!(stream.compute_s > 0.0);
        assert!(stream.prefetch_s > 0.0);
        assert!(stream.overlap_fraction() >= 0.0 && stream.overlap_fraction() <= 1.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_plan_sessions_match_the_frozen_engine() {
        let a = skewed(96);
        let warmup = dense(96, 8);
        let budget = a.heap_bytes() / 3;
        let (dir, _store, mut streaming) = streamed("plan", &a, budget);
        streaming.run(&a, &warmup, "warmup").unwrap();
        let plan = streaming.freeze_plan().unwrap();
        assert!(plan.matches(&a));
        assert_eq!(plan.shard_count(), streaming.shard_count());
        assert!(plan.memory_bytes() > 0);
        // The frozen engine's next run and a session must agree exactly.
        let b = dense(96, 5);
        let from_engine = streaming.run(&a, &b, "req").unwrap();
        let from_session = plan.session().run(&a, &b, "req").unwrap();
        assert_eq!(bits(&from_engine.c), bits(&from_session.c));
        assert_eq!(from_engine.stats, from_session.stats);
        // And both match the resident reference.
        let resident = FastEngine::new(config(8)).run(&a, &b, "req").unwrap();
        assert_eq!(bits(&from_session.c), bits(&resident.c));
        // Session stream stats land on the plan.
        assert!(plan.stream_stats().shards > 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn operand_mismatch_is_rejected() {
        let a = skewed(64);
        let (dir, _store, mut streaming) = streamed("mismatch", &a, a.heap_bytes() / 2);
        // Same shape, different structure.
        let mut coo = Coo::new(64, 64);
        for c in 0..64 {
            coo.push((c * 5 + 2) % 64, c, 1.0).unwrap();
        }
        let other = coo.to_csc();
        let b = dense(64, 3);
        assert!(matches!(
            streaming.run(&other, &b, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
        streaming.run(&a, &b, "t").unwrap();
        let plan = streaming.freeze_plan().unwrap();
        assert!(!plan.matches(&other));
        assert!(matches!(
            plan.session().run(&other, &b, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_budget_and_plan_requests_are_typed_errors() {
        let a = skewed(32);
        let dir = temp_dir("zero");
        let store = Arc::new(SparseStore::write_with_chunk_nnz(&dir, &a, 8).unwrap());
        assert!(matches!(
            StreamingEngine::new(config(4), Arc::clone(&store), 0),
            Err(AccelError::InvalidConfig(_))
        ));
        let mut engine = StreamingEngine::new(config(4), store, 1 << 20).unwrap();
        let b = dense(32, 2);
        assert!(matches!(
            engine.plan(&a, &b, "t"),
            Err(AccelError::InvalidConfig(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_store_is_invalid_input() {
        let dir = temp_dir("absent");
        assert!(matches!(
            StreamingEngine::open(config(4), &dir, 1 << 20),
            Err(AccelError::InvalidInput(_))
        ));
    }

    #[test]
    fn repeated_runs_replay_and_stay_identical() {
        let a = skewed(96);
        let b = dense(96, 6);
        let (dir, _store, mut streaming) = streamed("replay", &a, a.heap_bytes() / 3);
        let first = streaming.run(&a, &b, "t").unwrap();
        let second = streaming.run(&a, &b, "t").unwrap();
        assert_eq!(bits(&first.c), bits(&second.c));
        assert_eq!(first.stats.rounds.len(), second.stats.rounds.len());
        // Re-read slices are bit-identical, so the per-shard replay caches
        // stay valid across passes and keep serving hits (misses may still
        // trickle where a shard's pattern set exceeds the on-chip cache).
        let hits_after_second = streaming.replay_hits();
        let third = streaming.run(&a, &b, "t").unwrap();
        assert_eq!(bits(&second.c), bits(&third.c));
        assert!(streaming.replay_hits() > hits_after_second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_empty_store_still_runs() {
        let a = Csc::empty(8, 0);
        let dir = temp_dir("empty");
        let store = Arc::new(SparseStore::write(&dir, &a).unwrap());
        let mut engine = StreamingEngine::new(config(4), store, 1024).unwrap();
        let b = DenseMatrix::zeros(0, 3);
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(out.c.shape(), (8, 3));
        assert!(out.c.as_slice().iter().all(|&v| v == 0.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
