//! The detailed, cycle-stepped SPMM engine.
//!
//! Wires the actual `awb-hw` components exactly as the paper's Fig. 7/12
//! block diagrams do: a distributor (TDQ-1's rate-matched direct delivery
//! or TDQ-2's Omega network), per-PE task queues, a round-robin arbiter,
//! a MAC pipeline with RaW scoreboard and stall buffer, and per-round
//! barrier synchronization. Costs O(cycles × PEs), so it is used for
//! component-level studies, the Fig. 9 toy demo, and validating the fast
//! engine — not for full-dataset sweeps.

use crate::config::{AccelConfig, StallMode};
use crate::engine::arena::ScratchArena;
use crate::engine::steady::ReplayCache;
use crate::engine::{check_shapes, PlanOutcome, SpmmEngine, SpmmOutcome, TunedPlan};
use crate::error::AccelError;
use crate::mapping::RowMap;
use crate::rebalance::autotuner::AutoTuner;
use crate::rebalance::local::LocalSharing;
use crate::rebalance::remote::RoundProfile;
use crate::stats::{RoundStats, SpmmStats};
use awb_hw::{
    MacOp, MacPipeline, OmegaNetwork, Packet, RawScoreboard, RoundRobinArbiter, TaskQueue,
};
use awb_sparse::{Csc, DenseMatrix};

/// Which task-distributor the engine instantiates (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TdqMode {
    /// Pick by sparsity: ultra-sparse operands (density < 1%) use the CSC
    /// stream + Omega network (TDQ-2), general-sparse ones use direct
    /// delivery into per-PE queues (TDQ-1).
    #[default]
    Auto,
    /// Force TDQ-1 (dense-format streaming, multiple queues per PE).
    Tdq1,
    /// Force TDQ-2 (CSC streaming through the Omega network).
    Tdq2,
}

impl TdqMode {
    /// Resolves `Auto` for a given sparse operand.
    pub fn resolve(self, a: &Csc) -> TdqMode {
        match self {
            TdqMode::Auto => {
                if a.density() < 0.01 {
                    TdqMode::Tdq2
                } else {
                    TdqMode::Tdq1
                }
            }
            other => other,
        }
    }
}

/// Cycle-stepped engine (see module docs).
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, DetailedEngine, SpmmEngine, TdqMode};
/// use awb_sparse::{Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Coo::new(4, 4);
/// a.push(2, 1, 4.0)?;
/// let b = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[0.0], &[0.0]])?;
/// let config = AccelConfig::builder().n_pes(2).build()?;
/// let mut engine = DetailedEngine::new(config, TdqMode::Tdq2);
/// let out = engine.run(&a.to_csc(), &b, "demo")?;
/// assert_eq!(out.c.get(2, 0), 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DetailedEngine {
    config: AccelConfig,
    tdq: TdqMode,
    map: Option<RowMap>,
    tuner: Option<AutoTuner>,
    sharing: Option<LocalSharing>,
}

impl DetailedEngine {
    /// Creates an engine with the given distributor mode.
    pub fn new(config: AccelConfig, tdq: TdqMode) -> Self {
        DetailedEngine {
            config,
            tdq,
            map: None,
            tuner: None,
            sharing: None,
        }
    }

    /// The current row→PE map (None before the first run).
    pub fn row_map(&self) -> Option<&RowMap> {
        self.map.as_ref()
    }

    fn ensure_state(&mut self, n_rows: usize) -> Result<(), AccelError> {
        match &self.map {
            Some(map) if map.n_rows() != n_rows => Err(AccelError::InvalidConfig(format!(
                "engine tuned for {} rows reused with {} rows",
                map.n_rows(),
                n_rows
            ))),
            Some(_) => Ok(()),
            None => {
                self.map = Some(RowMap::new(n_rows, self.config.n_pes, self.config.mapping));
                self.tuner = Some(AutoTuner::new(&self.config, n_rows));
                self.sharing = Some(LocalSharing::new(self.config.local_hop, self.config.n_pes));
                Ok(())
            }
        }
    }

    /// Simulates one round (one column of `B`) at cycle granularity.
    #[allow(clippy::too_many_arguments)]
    fn simulate_round(
        &self,
        tasks: &[(u32, f32)],
        tdq: TdqMode,
        pe_of_row: &[u32],
        sharing: LocalSharing,
        col_acc: &mut [f32],
        per_pe_busy: &mut [u64],
        owner_busy: &mut [u64],
        per_row_tasks: Option<&mut [u32]>,
    ) -> DetailedRound {
        let n_pes = self.config.n_pes;
        let qpp = match tdq {
            TdqMode::Tdq1 => self.config.queues_per_pe,
            _ => 1,
        };
        let use_sharing = self.config.local_hop > 0;
        let mut queues: Vec<Vec<TaskQueue<MacOp>>> = (0..n_pes)
            .map(|_| (0..qpp).map(|_| TaskQueue::unbounded()).collect())
            .collect();
        let mut arbiters: Vec<RoundRobinArbiter> =
            (0..n_pes).map(|_| RoundRobinArbiter::new(qpp)).collect();
        let mut pipes: Vec<MacPipeline> = (0..n_pes)
            .map(|_| MacPipeline::new(self.config.mac_latency as usize))
            .collect();
        let mut scoreboard = RawScoreboard::new(self.config.mac_latency as u64);
        let mut network = match tdq {
            TdqMode::Tdq2 => Some(OmegaNetwork::new(n_pes, self.config.net_buffer)),
            _ => None,
        };

        if let Some(counts) = per_row_tasks {
            for &(row, _) in tasks {
                counts[row as usize] += 1;
            }
        }
        // Owner-attributed load for the PESM (see the fast engine).
        for &(row, _) in tasks {
            owner_busy[pe_of_row[row as usize] as usize] += 1;
        }

        let mut stream = tasks.iter().copied();
        let mut stream_head: Option<(u32, f32)> = stream.next();
        // Pending-task view the sharing comparators read: queued at the PE
        // plus already committed to it inside the network.
        let mut pending = vec![0usize; n_pes];
        let mut cycle: u64 = 0;
        let mut raw_stall_events: u64 = 0;
        let mut max_q_depth = 0usize;
        let mut per_pe_high_water = vec![0u32; n_pes];

        loop {
            cycle += 1;
            // --- Distribution ---
            match &mut network {
                Some(net) => {
                    // TDQ-2: inject up to one packet per input port. Local
                    // sharing "adjusts the address tag of the task before
                    // it is pushed into the TQs of the final layer"
                    // (paper §4.1) — we apply the adjustment at injection,
                    // which both re-routes the packet to the neighbour's
                    // port (the boundary links of Fig. 11-D) and relieves
                    // the hotspot's single output port.
                    for port in 0..n_pes {
                        let Some((row, product)) = stream_head else {
                            break;
                        };
                        let owner = pe_of_row[row as usize];
                        let dest = if use_sharing {
                            sharing.choose(owner, |p| pending[p as usize])
                        } else {
                            owner
                        };
                        let pkt = Packet { dest, row, product };
                        if net.inject(port, pkt).is_ok() {
                            pending[dest as usize] += 1;
                            stream_head = stream.next();
                        }
                    }
                    for (port, pkt) in net.tick() {
                        let q = (pkt.row as usize) % qpp;
                        queues[port][q]
                            .push(MacOp {
                                row: pkt.row,
                                product: pkt.product,
                            })
                            .expect("PE queues are unbounded");
                    }
                }
                None => {
                    // TDQ-1: deliver up to n_pes tasks directly; the sharing
                    // comparison happens before the push (Fig. 11-A).
                    for _ in 0..n_pes {
                        let Some((row, product)) = stream_head else {
                            break;
                        };
                        let owner = pe_of_row[row as usize];
                        let dest = if use_sharing {
                            sharing.choose(owner, |p| {
                                queues[p as usize].iter().map(|q| q.len()).sum::<usize>()
                            }) as usize
                        } else {
                            owner as usize
                        };
                        let q = (row as usize) % qpp;
                        queues[dest][q]
                            .push(MacOp { row, product })
                            .expect("PE queues are unbounded");
                        stream_head = stream.next();
                    }
                }
            }

            // --- PE issue + MAC pipelines ---
            for pe in 0..n_pes {
                let mut issue: Option<MacOp> = None;
                let requests: Vec<bool> = queues[pe].iter().map(|q| !q.is_empty()).collect();
                if let Some(qi) = arbiters[pe].grant(&requests) {
                    let head = *queues[pe][qi].peek().expect("granted queue is non-empty");
                    let ready_at = scoreboard.earliest_issue(head.row, cycle);
                    match self.config.stall_mode {
                        // Park: the stall buffer + accumulator forwarding
                        // hide the hazard — the op issues, the event is
                        // counted (mirrors the fast engine's model).
                        StallMode::Park => {
                            if ready_at > cycle {
                                raw_stall_events += ready_at - cycle;
                            }
                            issue = queues[pe][qi].pop();
                        }
                        // Block: naive head-of-line serialization.
                        StallMode::Block => {
                            if ready_at <= cycle {
                                issue = queues[pe][qi].pop();
                            } else {
                                raw_stall_events += 1;
                            }
                        }
                    }
                }
                if let Some(op) = issue {
                    scoreboard.record_issue(op.row, cycle);
                    per_pe_busy[pe] += 1;
                    pending[pe] = pending[pe].saturating_sub(1);
                }
                if let Some(done) = pipes[pe].tick(issue) {
                    col_acc[done.row as usize] += done.product;
                }
            }

            // --- occupancy census ---
            for pe in 0..n_pes {
                let depth: usize = queues[pe].iter().map(|q| q.len()).sum::<usize>();
                max_q_depth = max_q_depth.max(depth);
                per_pe_high_water[pe] = per_pe_high_water[pe].max(depth as u32);
            }

            // --- barrier check ---
            let drained = stream_head.is_none()
                && network.as_ref().map_or(true, |n| n.is_drained())
                && queues.iter().flatten().all(|q| q.is_empty())
                && pipes.iter().all(|p| !p.busy());
            if drained {
                break;
            }
            assert!(
                cycle < 10_000_000,
                "detailed engine failed to drain a round"
            );
        }

        DetailedRound {
            cycles: cycle,
            max_q_depth,
            raw_stalls: raw_stall_events,
            per_pe_high_water,
        }
    }
}

struct DetailedRound {
    cycles: u64,
    max_q_depth: usize,
    raw_stalls: u64,
    per_pe_high_water: Vec<u32>,
}

impl SpmmEngine for DetailedEngine {
    fn run(&mut self, a: &Csc, b: &DenseMatrix, label: &str) -> Result<SpmmOutcome, AccelError> {
        check_shapes(a, b)?;
        self.ensure_state(a.rows())?;
        let tdq = self.tdq.resolve(a);
        if tdq == TdqMode::Tdq2 && !self.config.n_pes.is_power_of_two() {
            return Err(AccelError::InvalidConfig(format!(
                "TDQ-2's Omega network requires a power-of-two PE count, got {}",
                self.config.n_pes
            )));
        }
        let n_pes = self.config.n_pes;
        let n_rows = a.rows();
        let sharing = self.sharing.expect("initialized in ensure_state");

        let mut c = DenseMatrix::zeros(n_rows, b.cols());
        let mut rounds = Vec::with_capacity(b.cols());
        let mut col_acc = vec![0f32; n_rows];
        let mut per_pe_busy = vec![0u64; n_pes];
        let mut owner_busy = vec![0u64; n_pes];
        let mut row_tasks: Vec<u32> = Vec::new();
        let mut queue_high_water = vec![0u32; n_pes];

        for k in 0..b.cols() {
            // Materialize the round's task stream (CSC column order).
            let mut tasks: Vec<(u32, f32)> = Vec::new();
            for j in 0..a.cols() {
                let bjk = b.get(j, k);
                if bjk == 0.0 {
                    continue;
                }
                for (i, av) in a.col_entries(j) {
                    tasks.push((i as u32, av * bjk));
                }
            }
            per_pe_busy.fill(0);
            owner_busy.fill(0);
            let tuner = self.tuner.as_ref().expect("initialized");
            let tuning = tuner.is_active();
            let collect_rows = tuner.needs_row_counts();
            if collect_rows {
                row_tasks.clear();
                row_tasks.resize(n_rows, 0);
            }
            let map = self.map.as_ref().expect("initialized");
            let round = self.simulate_round(
                &tasks,
                tdq,
                map.pe_of_row(),
                sharing,
                &mut col_acc,
                &mut per_pe_busy,
                &mut owner_busy,
                collect_rows.then_some(row_tasks.as_mut_slice()),
            );

            for (hw, &d) in queue_high_water.iter_mut().zip(&round.per_pe_high_water) {
                *hw = (*hw).max(d);
            }
            rounds.push(RoundStats {
                cycles: if tasks.is_empty() { 0 } else { round.cycles },
                tasks: tasks.len() as u64,
                busy_cycles: tasks.len() as u64,
                max_pe_busy: per_pe_busy.iter().copied().max().unwrap_or(0),
                min_pe_busy: per_pe_busy.iter().copied().min().unwrap_or(0),
                max_queue_depth: round.max_q_depth,
                raw_stalls: round.raw_stalls,
                tuning_active: tuning,
            });

            if tuning && !tasks.is_empty() {
                let util = tasks.len() as f64 / (round.cycles.max(1) as f64 * n_pes as f64);
                let profile = RoundProfile {
                    per_pe_busy: owner_busy.clone(),
                    per_row_tasks: collect_rows.then(|| row_tasks.clone()),
                };
                let map = self.map.as_mut().expect("initialized");
                self.tuner
                    .as_mut()
                    .expect("initialized")
                    .observe_round(&profile, util, map);
            }

            for (row, acc) in col_acc.iter_mut().enumerate() {
                if *acc != 0.0 {
                    c.set(row, k, *acc);
                    *acc = 0.0;
                }
            }
        }

        Ok(SpmmOutcome {
            c,
            stats: SpmmStats {
                label: label.to_owned(),
                n_pes,
                rounds,
                queue_high_water,
            },
        })
    }

    /// Warm-up on the cycle-stepped model, extracting the frozen map into
    /// a [`TunedPlan`]. The plan's replay cache starts empty (the detailed
    /// engine does not memoize) and is warmed by the sessions themselves;
    /// note that sessions always execute with the fast queue-dynamics
    /// model — only the *map* carries over the detailed engine's tuning.
    fn plan(
        &mut self,
        a: &Csc,
        warmup: &DenseMatrix,
        label: &str,
    ) -> Result<PlanOutcome, AccelError> {
        let outcome = self.run(a, warmup, label)?;
        let tuner = self.tuner.as_mut().expect("initialized by run");
        tuner.freeze();
        Ok(PlanOutcome {
            plan: TunedPlan::from_frozen(
                self.config.clone(),
                self.map.clone().expect("initialized by run"),
                a,
                tuner.rounds_done(),
                tuner.total_switches(),
                self.config.replay,
                ReplayCache::new(),
                // A detailed-engine plan starts its own pool: the sessions
                // it feeds run on the fast model and warm it themselves.
                std::sync::Arc::new(if self.config.scratch_reuse {
                    ScratchArena::new()
                } else {
                    ScratchArena::disabled()
                }),
            ),
            warmup: outcome,
        })
    }

    fn config(&self) -> &AccelConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use awb_sparse::{spmm, Coo};

    fn config(n_pes: usize) -> AccelConfig {
        AccelConfig::builder().n_pes(n_pes).build().unwrap()
    }

    fn random_sparse(n: usize, nnz_per_row: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        let mut x = 1u64;
        for r in 0..n {
            for _ in 0..nnz_per_row {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let c = (x >> 33) as usize % n;
                coo.push(r, c, ((x >> 40) % 5) as f32 - 2.0).unwrap();
            }
        }
        coo.to_csc()
    }

    fn dense(rows: usize, cols: usize) -> DenseMatrix {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i % 5) as f32) - 2.0).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn tdq_auto_resolution() {
        let sparse = random_sparse(64, 1); // ~1.5% -> still above 1%? nnz/row=1 of 64 cols: 1/64 ~ 1.6%
        assert_eq!(TdqMode::Tdq1.resolve(&sparse), TdqMode::Tdq1);
        assert_eq!(TdqMode::Tdq2.resolve(&sparse), TdqMode::Tdq2);
        let ultra = {
            let mut coo = Coo::new(1000, 1000);
            coo.push(1, 1, 1.0).unwrap();
            coo.to_csc()
        };
        assert_eq!(TdqMode::Auto.resolve(&ultra), TdqMode::Tdq2);
        let dense_ish = {
            let mut coo = Coo::new(4, 4);
            for r in 0..4 {
                for c in 0..4 {
                    coo.push(r, c, 1.0).unwrap();
                }
            }
            coo.to_csc()
        };
        assert_eq!(TdqMode::Auto.resolve(&dense_ish), TdqMode::Tdq1);
    }

    #[test]
    fn functional_match_tdq2() {
        let a = random_sparse(32, 2);
        let b = dense(32, 3);
        let mut engine = DetailedEngine::new(config(8), TdqMode::Tdq2);
        let out = engine.run(&a, &b, "t").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(
            out.c.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.c.max_abs_diff(&expect).unwrap()
        );
    }

    #[test]
    fn functional_match_tdq1() {
        let a = random_sparse(32, 3);
        let b = dense(32, 3);
        let mut engine = DetailedEngine::new(config(8), TdqMode::Tdq1);
        let out = engine.run(&a, &b, "t").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
    }

    #[test]
    fn functional_match_with_rebalancing() {
        let a = random_sparse(64, 4);
        let b = dense(64, 6);
        for design in [
            Design::LocalSharing { hop: 1 },
            Design::LocalPlusRemote { hop: 2 },
        ] {
            let mut engine = DetailedEngine::new(design.apply(config(8)), TdqMode::Tdq2);
            let out = engine.run(&a, &b, "t").unwrap();
            let expect = spmm::csc_times_dense(&a, &b).unwrap();
            assert!(out.c.approx_eq(&expect, 1e-4), "{design:?}");
        }
    }

    #[test]
    fn task_conservation() {
        let a = random_sparse(48, 3);
        let b = dense(48, 4);
        let mut engine = DetailedEngine::new(config(8), TdqMode::Tdq2);
        let out = engine.run(&a, &b, "t").unwrap();
        assert_eq!(
            out.stats.total_tasks(),
            spmm::csc_times_dense_macs(&a, &b).unwrap() as u64
        );
    }

    #[test]
    fn local_sharing_reduces_cycles_under_skew() {
        // Rows 0..2 hold almost all work: PE 0 is the hotspot under block
        // mapping with 8 PEs over 32 rows.
        let n = 32;
        let mut coo = Coo::new(n, n);
        for c in 0..n {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, c, 1.0).unwrap();
            coo.push(2, c, 1.0).unwrap();
        }
        for r in 3..n {
            coo.push(r, r, 1.0).unwrap();
        }
        let a = coo.to_csc();
        let b = dense(n, 4);
        let base = DetailedEngine::new(Design::Baseline.apply(config(8)), TdqMode::Tdq2)
            .run(&a, &b, "t")
            .unwrap()
            .stats;
        let shared = DetailedEngine::new(
            Design::LocalSharing { hop: 2 }.apply(config(8)),
            TdqMode::Tdq2,
        )
        .run(&a, &b, "t")
        .unwrap()
        .stats;
        assert!(
            shared.total_cycles() < base.total_cycles(),
            "base {} shared {}",
            base.total_cycles(),
            shared.total_cycles()
        );
    }

    #[test]
    fn plan_extracts_detailed_tuned_map() {
        let a = random_sparse(64, 4);
        let b = dense(64, 6);
        let mut engine = DetailedEngine::new(
            Design::LocalPlusRemote { hop: 2 }.apply(config(8)),
            TdqMode::Tdq2,
        );
        let planned = engine.plan(&a, &b, "warmup").unwrap();
        // The plan carries the detailed engine's frozen map and executes
        // requests with correct numerics on the fast session model.
        assert_eq!(
            planned.plan.row_map().pe_of_row(),
            engine.row_map().unwrap().pe_of_row()
        );
        let out = planned.plan.session().run(&a, &b, "req").unwrap();
        let expect = spmm::csc_times_dense(&a, &b).unwrap();
        assert!(out.c.approx_eq(&expect, 1e-4));
        assert_eq!(out.stats.tuning_rounds(), 0);
    }

    #[test]
    fn utilization_bounded() {
        let a = random_sparse(32, 2);
        let b = dense(32, 2);
        let mut engine = DetailedEngine::new(config(4), TdqMode::Tdq2);
        let stats = engine.run(&a, &b, "t").unwrap().stats;
        let u = stats.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn empty_column_costs_nothing() {
        let a = random_sparse(16, 1);
        let mut b = DenseMatrix::zeros(16, 2);
        b.set(0, 1, 1.0); // column 0 is all zero
        let mut engine = DetailedEngine::new(config(4), TdqMode::Tdq2);
        let stats = engine.run(&a, &b, "t").unwrap().stats;
        assert_eq!(stats.rounds[0].cycles, 0);
        assert!(stats.rounds[1].cycles > 0);
    }
}
