//! Board-level energy model (paper Table 3).
//!
//! The paper measures wall power with a meter; here power is a documented
//! model constant per platform, back-derived from the paper's own latency
//! and energy-efficiency columns (e.g. UWB-GCN Cora: 0.011 ms at
//! 2.38 × 10⁶ inferences/kJ ⇒ ≈ 38 W board power). Energy efficiency is
//! reported in the paper's unit, *graph inferences per kilojoule*.

/// Constant-power energy model for one platform.
///
/// # Example
///
/// ```
/// use awb_accel::EnergyModel;
///
/// let fpga = EnergyModel::fpga();
/// // 0.011 ms inference at 38 W -> ~2.4e6 inferences per kJ.
/// let eff = fpga.inferences_per_kj(0.011);
/// assert!(eff > 2.0e6 && eff < 2.8e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Board/wall power in watts.
    pub power_w: f64,
}

impl EnergyModel {
    /// FPGA board power (VCU118 running the accelerator; both baseline and
    /// AWB designs — the rebalancing logic is a rounding error in power).
    pub fn fpga() -> Self {
        EnergyModel { power_w: 38.0 }
    }

    /// High-end server CPU under PyTorch load (Xeon E5-2698 v4).
    pub fn cpu() -> Self {
        EnergyModel { power_w: 135.0 }
    }

    /// Tesla P100 under cuSPARSE load (board + host share).
    pub fn gpu() -> Self {
        EnergyModel { power_w: 300.0 }
    }

    /// Custom power.
    ///
    /// # Panics
    ///
    /// Panics unless `power_w` is finite and positive.
    pub fn with_power(power_w: f64) -> Self {
        assert!(
            power_w.is_finite() && power_w > 0.0,
            "power must be positive"
        );
        EnergyModel { power_w }
    }

    /// Energy per inference in joules for a latency in milliseconds.
    pub fn energy_per_inference_j(&self, latency_ms: f64) -> f64 {
        self.power_w * latency_ms / 1e3
    }

    /// Graph inferences per kilojoule — Table 3's unit.
    pub fn inferences_per_kj(&self, latency_ms: f64) -> f64 {
        if latency_ms <= 0.0 {
            return 0.0;
        }
        1e3 / self.energy_per_inference_j(latency_ms)
    }
}

/// Converts a cycle count to milliseconds at `freq_mhz`.
pub fn cycles_to_ms(cycles: u64, freq_mhz: f64) -> f64 {
    cycles as f64 / (freq_mhz * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_units() {
        let m = EnergyModel::with_power(100.0);
        // 10 ms at 100 W = 1 J.
        assert!((m.energy_per_inference_j(10.0) - 1.0).abs() < 1e-12);
        assert!((m.inferences_per_kj(10.0) - 1000.0).abs() < 1e-9);
        assert_eq!(m.inferences_per_kj(0.0), 0.0);
    }

    #[test]
    fn paper_back_derivations_hold() {
        // CPU Cora: 3.9 ms, paper 1.90e3 inf/kJ.
        let eff = EnergyModel::cpu().inferences_per_kj(3.90);
        assert!((eff - 1.90e3).abs() / 1.90e3 < 0.02, "cpu eff {eff}");
        // GPU Cora: 1.78 ms, paper 1.87e3 inf/kJ.
        let eff = EnergyModel::gpu().inferences_per_kj(1.78);
        assert!((eff - 1.87e3).abs() / 1.87e3 < 0.01, "gpu eff {eff}");
        // FPGA baseline Cora: 0.023 ms, paper 1.21e6 inf/kJ.
        let eff = EnergyModel::fpga().inferences_per_kj(0.023);
        assert!((eff - 1.21e6).abs() / 1.21e6 < 0.06, "fpga eff {eff}");
    }

    #[test]
    fn cycles_conversion() {
        // 275 cycles at 275 MHz = 1 us = 0.001 ms.
        assert!((cycles_to_ms(275, 275.0) - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_power_panics() {
        EnergyModel::with_power(-1.0);
    }
}
