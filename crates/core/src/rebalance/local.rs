//! Dynamic local sharing (paper §4.1).
//!
//! Before a task enters its owner PE's queue, the distributor compares the
//! pending-task counters of the owner and its neighbours within the hop
//! radius and forwards the task to the least-loaded candidate. Results are
//! returned to the owner's accumulator afterwards (the AGU computes the
//! return address), so sharing is invisible to correctness.

/// Local-sharing decision logic for a given hop radius.
///
/// A radius of 0 disables sharing (baseline behaviour). Larger radii
/// rebalance better at the cost of wiring/area — the paper's Designs A–D
/// use 1 and 2 hops (2 and 3 for Nell).
///
/// # Example
///
/// ```
/// use awb_accel::LocalSharing;
///
/// let sharing = LocalSharing::new(1, 8);
/// // Owner PE 3 is loaded; neighbour 2 is empty.
/// let lens = [5usize, 5, 0, 9, 5, 5, 5, 5];
/// assert_eq!(sharing.choose(3, |pe| lens[pe as usize]), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSharing {
    hop: usize,
    n_pes: usize,
}

impl LocalSharing {
    /// Creates the decision logic.
    ///
    /// # Panics
    ///
    /// Panics if `n_pes == 0` or `hop >= n_pes`.
    pub fn new(hop: usize, n_pes: usize) -> Self {
        assert!(n_pes > 0, "need at least one PE");
        assert!(hop < n_pes, "hop must be smaller than the PE count");
        LocalSharing { hop, n_pes }
    }

    /// Sharing radius.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Chooses the destination PE for a task owned by `owner`, given a
    /// pending-task length oracle.
    ///
    /// Ties are broken toward the owner first, then toward the nearer
    /// neighbour (sharing costs a return transfer, so it is only worth it
    /// when it strictly helps).
    #[inline]
    pub fn choose<F: Fn(u32) -> usize>(&self, owner: u32, queue_len: F) -> u32 {
        if self.hop == 0 {
            return owner;
        }
        let lo = (owner as usize).saturating_sub(self.hop);
        let hi = (owner as usize + self.hop).min(self.n_pes - 1);
        let mut best = owner;
        let mut best_len = queue_len(owner);
        let mut best_dist = 0usize;
        for pe in lo..=hi {
            let pe = pe as u32;
            if pe == owner {
                continue;
            }
            let len = queue_len(pe);
            let dist = pe.abs_diff(owner) as usize;
            if len < best_len || (len == best_len && dist < best_dist) {
                best = pe;
                best_len = len;
                best_dist = dist;
            }
        }
        best
    }

    /// The candidate window `[owner − hop, owner + hop]` clamped to the
    /// array bounds (used by tests and the detailed engine's final-stage
    /// redirect).
    pub fn window(&self, owner: u32) -> std::ops::RangeInclusive<u32> {
        let lo = (owner as usize).saturating_sub(self.hop) as u32;
        let hi = ((owner as usize + self.hop).min(self.n_pes - 1)) as u32;
        lo..=hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hop_always_owner() {
        let s = LocalSharing::new(0, 4);
        assert_eq!(s.choose(2, |_| 0), 2);
        assert_eq!(s.choose(2, |p| if p == 2 { 100 } else { 0 }), 2);
    }

    #[test]
    fn prefers_owner_on_tie() {
        let s = LocalSharing::new(2, 8);
        assert_eq!(s.choose(4, |_| 3), 4);
    }

    #[test]
    fn picks_least_loaded_in_window() {
        let s = LocalSharing::new(2, 8);
        let lens = [9usize, 9, 7, 9, 9, 1, 9, 0];
        // Owner 4: window 2..=6; PE 5 has 1 (PE 7 is outside).
        assert_eq!(s.choose(4, |p| lens[p as usize]), 5);
    }

    #[test]
    fn window_clamps_at_borders() {
        let s = LocalSharing::new(2, 8);
        assert_eq!(s.window(0), 0..=2);
        assert_eq!(s.window(7), 5..=7);
        assert_eq!(s.window(4), 2..=6);
    }

    #[test]
    fn border_pe_shares_inward() {
        let s = LocalSharing::new(1, 4);
        let lens = [5usize, 0, 9, 9];
        assert_eq!(s.choose(0, |p| lens[p as usize]), 1);
    }

    #[test]
    fn nearer_neighbour_wins_tie_among_neighbours() {
        let s = LocalSharing::new(2, 8);
        // Owner 4 loaded; PEs 3 and 2 both at 1: pick 3 (closer).
        let lens = [9usize, 9, 1, 1, 9, 9, 9, 9];
        assert_eq!(s.choose(4, |p| lens[p as usize]), 3);
    }

    #[test]
    #[should_panic(expected = "hop must be smaller")]
    fn hop_too_large_panics() {
        LocalSharing::new(4, 4);
    }

    #[test]
    fn larger_hop_reaches_further() {
        let lens = [0usize, 9, 9, 9, 9, 9, 9, 9];
        assert_eq!(LocalSharing::new(1, 8).choose(4, |p| lens[p as usize]), 4);
        assert_eq!(LocalSharing::new(3, 8).choose(4, |p| lens[p as usize]), 4);
        // hop 4 reaches PE 0.
        assert_eq!(LocalSharing::new(4, 8).choose(4, |p| lens[p as usize]), 0);
    }
}
