//! Dynamic remote switching (paper §4.2).
//!
//! Per round (one column of the dense operand), the PE Status Monitor
//! identifies the most over-utilized PE (*hotspot* — the last to empty its
//! queues) and the most under-utilized PE (*coldspot* — the first). The
//! Utilization Gap Tracker then sizes the exchange using the paper's Eq. 5:
//!
//! ```text
//! N_i = 0                                (i = 1, profiling round)
//! N_i = N_{i-1} + G_i / G_1 × (R / 2)    (i > 1)
//! ```
//!
//! where `G_i` is the hotspot/coldspot workload gap in round `i`, `G_1` the
//! gap when the tuple was first tracked, and `R` the equal-partition row
//! count per PE. The Shuffling LUT selects which rows to interchange and
//! the Shuffling Switches apply the new map next round. Several tuples are
//! tracked concurrently (the tracking window; paper uses 2).

use crate::config::SltPolicy;
use crate::mapping::RowMap;

/// Per-round observation handed to the switcher: what the PESM and the
/// per-row task counters saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundProfile {
    /// Busy cycles (≈ executed tasks) per PE this round.
    pub per_pe_busy: Vec<u64>,
    /// Tasks per row this round (needed by [`SltPolicy::DegreeAware`];
    /// `None` under [`SltPolicy::Sequential`]).
    pub per_row_tasks: Option<Vec<u32>>,
}

/// A planned exchange between one hotspot/coldspot pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchPlan {
    /// Over-utilized PE.
    pub hot: u32,
    /// Under-utilized PE.
    pub cold: u32,
    /// Rows leaving the hotspot.
    pub from_hot: Vec<u32>,
    /// Rows leaving the coldspot.
    pub from_cold: Vec<u32>,
}

impl SwitchPlan {
    /// Applies the exchange to the row map.
    pub fn apply(&self, map: &mut RowMap) {
        map.exchange(self.hot, self.cold, &self.from_hot, &self.from_cold);
    }
}

/// One tracked hotspot/coldspot tuple and its Eq. 5 state.
#[derive(Debug, Clone, PartialEq)]
struct TrackedTuple {
    hot: u32,
    cold: u32,
    /// Gap when first tracked (`G_1`).
    g1: f64,
    /// Cumulative rows to have been switched after the previous update
    /// (`N_{i-1}`).
    n_prev: f64,
    /// Updates applied so far.
    updates: usize,
}

/// The remote-switching controller: PESM + Utilization Gap Tracker +
/// Shuffling LUT.
///
/// # Example
///
/// ```
/// use awb_accel::{MappingKind, RemoteSwitcher, RowMap, RoundProfile, SltPolicy};
///
/// let mut map = RowMap::new(16, 4, MappingKind::Block);
/// let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 4);
/// // Round 1: PE 0 overloaded — tuple gets tracked, no switch yet (Eq. 5).
/// let profile = RoundProfile { per_pe_busy: vec![100, 10, 10, 4], per_row_tasks: None };
/// assert!(sw.plan(&profile, &map).is_empty());
/// // Round 2: gap persists — rows move.
/// let plans = sw.plan(&profile, &map);
/// assert_eq!(plans.len(), 1);
/// for p in &plans { p.apply(&mut map); }
/// assert!(map.total_exchanged() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteSwitcher {
    tracking_window: usize,
    policy: SltPolicy,
    /// Equal-partition rows per PE (`R` in Eq. 5).
    rows_per_pe: usize,
    tracked: Vec<TrackedTuple>,
    total_switches: u64,
}

impl RemoteSwitcher {
    /// Creates a switcher.
    ///
    /// # Panics
    ///
    /// Panics if `tracking_window == 0` or `rows_per_pe == 0`.
    pub fn new(tracking_window: usize, policy: SltPolicy, rows_per_pe: usize) -> Self {
        assert!(tracking_window > 0, "tracking window must be >= 1");
        assert!(rows_per_pe > 0, "rows_per_pe must be >= 1");
        RemoteSwitcher {
            tracking_window,
            policy,
            rows_per_pe,
            tracked: Vec::new(),
            total_switches: 0,
        }
    }

    /// Total rows exchanged so far.
    pub fn total_switches(&self) -> u64 {
        self.total_switches
    }

    /// Number of tuples currently tracked.
    pub fn tracked_tuples(&self) -> usize {
        self.tracked.len()
    }

    /// Observes a finished round and plans the exchanges for the next one.
    ///
    /// Implements the PESM vote (hotspot = max busy, coldspot = min busy),
    /// tuple lifecycle (new tuple per round, conflict-free, bounded by the
    /// tracking window, retired after `tracking_window` updates), and the
    /// Eq. 5 exchange sizing.
    pub fn plan(&mut self, profile: &RoundProfile, map: &RowMap) -> Vec<SwitchPlan> {
        let busy = &profile.per_pe_busy;
        if busy.len() < 2 {
            return Vec::new();
        }
        // PESM vote.
        let hot = argmax(busy) as u32;
        let cold = argmin(busy) as u32;
        let gap = busy[hot as usize] as f64 - busy[cold as usize] as f64;
        // Track the new tuple if it is distinct, meaningful, and
        // conflict-free with live tuples.
        let conflicts = |t: &TrackedTuple, pe: u32| t.hot == pe || t.cold == pe;
        if hot != cold
            && gap > 0.0
            && self.tracked.len() < self.tracking_window
            && !self
                .tracked
                .iter()
                .any(|t| conflicts(t, hot) || conflicts(t, cold))
        {
            self.tracked.push(TrackedTuple {
                hot,
                cold,
                g1: gap,
                n_prev: 0.0,
                updates: 0,
            });
        }
        // Update every live tuple per Eq. 5 and emit plans.
        let mut plans = Vec::new();
        let rows_per_pe = self.rows_per_pe;
        let policy = self.policy;
        for tuple in &mut self.tracked {
            tuple.updates += 1;
            if tuple.updates == 1 {
                // i = 1: N_1 = 0, profile only.
                continue;
            }
            let g_i = busy[tuple.hot as usize] as f64 - busy[tuple.cold as usize] as f64;
            if g_i <= 0.0 || tuple.g1 <= 0.0 {
                continue; // overshoot or degenerate: stop moving this pair
            }
            let n_i = tuple.n_prev + g_i / tuple.g1 * (rows_per_pe as f64 / 2.0);
            let delta = (n_i.round() as usize).saturating_sub(tuple.n_prev.round() as usize);
            tuple.n_prev = n_i;
            if delta == 0 {
                continue;
            }
            if let Some(plan) = build_plan(tuple.hot, tuple.cold, delta, g_i, policy, profile, map)
            {
                self.total_switches += (plan.from_hot.len() + plan.from_cold.len()) as u64;
                plans.push(plan);
            }
        }
        // Retire tuples that used up their tracking slots.
        let window = self.tracking_window;
        self.tracked.retain(|t| t.updates < window + 1);
        plans
    }
}

/// The Shuffling LUT: selects which rows each side contributes.
fn build_plan(
    hot: u32,
    cold: u32,
    delta: usize,
    gap: f64,
    policy: SltPolicy,
    profile: &RoundProfile,
    map: &RowMap,
) -> Option<SwitchPlan> {
    let hot_rows = map.rows_of(hot as usize);
    let cold_rows = map.rows_of(cold as usize);
    if hot_rows.is_empty() {
        return None;
    }
    // Never strip the hotspot bare: leave at least one row.
    let take_hot = delta.min(hot_rows.len().saturating_sub(1).max(1));
    let take_cold = delta.min(cold_rows.len());
    let (from_hot, from_cold) = match policy {
        SltPolicy::Sequential => (
            hot_rows.iter().take(take_hot).copied().collect::<Vec<_>>(),
            cold_rows
                .iter()
                .take(take_cold)
                .copied()
                .collect::<Vec<_>>(),
        ),
        SltPolicy::DegreeAware => {
            let counts = profile.per_row_tasks.as_deref();
            let weight = |row: u32| -> u32 {
                counts.map_or(0, |c| c.get(row as usize).copied().unwrap_or(0))
            };
            let mut hot_sorted: Vec<u32> = hot_rows.to_vec();
            hot_sorted.sort_unstable_by_key(|&r| std::cmp::Reverse(weight(r)));
            // Move the heaviest rows until roughly half the observed gap
            // has moved — the balancing-optimal budget. Eq. 5's row count
            // caps the selection so the two policies stay comparable.
            let budget = (gap / 2.0).max(1.0);
            let mut moved = 0.0;
            let mut from_hot: Vec<u32> = Vec::new();
            for row in hot_sorted.into_iter().take(take_hot) {
                if moved >= budget && !from_hot.is_empty() {
                    break;
                }
                moved += f64::from(weight(row));
                from_hot.push(row);
            }
            let mut cold_sorted: Vec<u32> = cold_rows.to_vec();
            cold_sorted.sort_unstable_by_key(|&r| weight(r));
            let take_cold = from_hot.len().min(cold_sorted.len());
            (from_hot, cold_sorted.into_iter().take(take_cold).collect())
        }
    };
    if from_hot.is_empty() && from_cold.is_empty() {
        return None;
    }
    Some(SwitchPlan {
        hot,
        cold,
        from_hot,
        from_cold,
    })
}

fn argmax(v: &[u64]) -> usize {
    v.iter()
        .enumerate()
        .max_by_key(|&(_, &x)| x)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmin(v: &[u64]) -> usize {
    v.iter()
        .enumerate()
        .min_by_key(|&(_, &x)| x)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingKind;

    fn profile(busy: Vec<u64>) -> RoundProfile {
        RoundProfile {
            per_pe_busy: busy,
            per_row_tasks: None,
        }
    }

    #[test]
    fn first_round_profiles_without_switching() {
        let map = RowMap::new(16, 4, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 4);
        let plans = sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        assert!(plans.is_empty());
        assert_eq!(sw.tracked_tuples(), 1);
    }

    #[test]
    fn second_round_switches_per_eq5() {
        let mut map = RowMap::new(16, 4, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 4);
        sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        let plans = sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        assert_eq!(plans.len(), 1);
        let p = &plans[0];
        assert_eq!(p.hot, 0);
        assert_eq!(p.cold, 3);
        // G_2 = G_1 -> N_2 = R/2 = 2 rows.
        assert_eq!(p.from_hot.len(), 2);
        p.apply(&mut map);
        assert!(map.is_consistent());
        assert_eq!(
            sw.total_switches(),
            p.from_hot.len() as u64 + p.from_cold.len() as u64
        );
    }

    #[test]
    fn shrinking_gap_shrinks_exchange() {
        let map = RowMap::new(64, 4, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(3, SltPolicy::Sequential, 16);
        sw.plan(&profile(vec![800, 100, 100, 0]), &map);
        let big = sw.plan(&profile(vec![800, 100, 100, 0]), &map);
        let big_n = big[0].from_hot.len();
        // New switcher, same first gap but much smaller second gap.
        let mut sw2 = RemoteSwitcher::new(3, SltPolicy::Sequential, 16);
        sw2.plan(&profile(vec![800, 100, 100, 0]), &map);
        let small = sw2.plan(&profile(vec![180, 100, 100, 0]), &map);
        let small_n = small[0].from_hot.len();
        assert!(small_n < big_n, "small {small_n} big {big_n}");
    }

    #[test]
    fn overshoot_stops_switching() {
        let map = RowMap::new(16, 4, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 4);
        sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        // Gap inverted: hotspot became the coldspot — no plan for tuple.
        let plans = sw.plan(&profile(vec![0, 10, 10, 100]), &map);
        assert!(plans.is_empty());
    }

    #[test]
    fn tracking_window_bounds_concurrent_tuples() {
        let map = RowMap::new(64, 8, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(1, SltPolicy::Sequential, 8);
        sw.plan(&profile(vec![100, 0, 50, 50, 50, 50, 50, 50]), &map);
        assert_eq!(sw.tracked_tuples(), 1);
        // A different hot/cold pair appears; window is full.
        sw.plan(&profile(vec![50, 50, 100, 0, 50, 50, 50, 50]), &map);
        assert!(sw.tracked_tuples() <= 1);
    }

    #[test]
    fn conflicting_tuples_not_double_tracked() {
        let map = RowMap::new(64, 8, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(4, SltPolicy::Sequential, 8);
        sw.plan(&profile(vec![100, 0, 50, 50, 50, 50, 50, 50]), &map);
        // Same hotspot with a new coldspot: PE 0 already tracked.
        sw.plan(&profile(vec![100, 50, 50, 0, 50, 50, 50, 50]), &map);
        assert_eq!(sw.tracked_tuples(), 1);
    }

    #[test]
    fn tuples_retire_after_window_updates() {
        let map = RowMap::new(16, 4, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 4);
        for _ in 0..4 {
            sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        }
        // window=2: tuple lives for window+1 updates then retires, letting
        // a fresh tuple be tracked.
        assert!(sw.tracked_tuples() <= 2);
    }

    #[test]
    fn degree_aware_moves_heaviest_rows() {
        let mut map = RowMap::new(8, 2, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(2, SltPolicy::DegreeAware, 4);
        // Rows 0..4 on PE 0; row 2 is the heavy one.
        let mut per_row = vec![1u32; 8];
        per_row[2] = 50;
        let prof = RoundProfile {
            per_pe_busy: vec![53, 4],
            per_row_tasks: Some(per_row),
        };
        sw.plan(&prof, &map);
        let plans = sw.plan(&prof, &map);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].from_hot.contains(&2), "{:?}", plans[0].from_hot);
        plans[0].apply(&mut map);
        assert_eq!(map.pe_of(2), 1);
    }

    #[test]
    fn hotspot_never_stripped_bare() {
        let map = RowMap::new(4, 4, MappingKind::Block); // 1 row per PE
        let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 1);
        sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        let plans = sw.plan(&profile(vec![100, 10, 10, 0]), &map);
        // take_hot is capped at max(len-1, 1) = 1 here; the plan may move
        // the single row — but never requests more rows than exist.
        for p in &plans {
            assert!(p.from_hot.len() <= 1);
        }
    }

    #[test]
    fn degenerate_profiles_are_safe() {
        let map = RowMap::new(8, 2, MappingKind::Block);
        let mut sw = RemoteSwitcher::new(2, SltPolicy::Sequential, 4);
        assert!(sw.plan(&profile(vec![5]), &map).is_empty()); // single PE
        assert!(sw.plan(&profile(vec![5, 5]), &map).is_empty()); // no gap
    }
}
