//! Hardware performance auto-tuning (paper §4).
//!
//! "Our accelerator can remember this plan and incrementally adjust it when
//! processing the next column … After several rounds, the configuration
//! best matching the sparse structure of A is obtained, and we use it for
//! the remaining rounds." The tuner drives [`RemoteSwitcher`] while active
//! and freezes once utilization converges (or the round budget runs out);
//! the frozen [`RowMap`] is then reused — across the remaining columns, and
//! across later SPMMs on the same sparse matrix (e.g. `A` appears in every
//! layer).

use crate::config::{AccelConfig, SltPolicy};
use crate::mapping::RowMap;
use crate::rebalance::remote::{RemoteSwitcher, RoundProfile};

/// Relative utilization improvement below which a round counts as
/// "no improvement".
const CONVERGENCE_EPSILON: f64 = 0.01;
/// Consecutive no-improvement rounds before freezing.
const PATIENCE: usize = 2;

/// The auto-tuning controller owning the remote switcher and the
/// convergence state.
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, AutoTuner, MappingKind, RowMap, RoundProfile};
///
/// # fn main() -> Result<(), awb_accel::AccelError> {
/// let config = AccelConfig::builder().n_pes(4).build()?;
/// let mut map = RowMap::new(16, 4, MappingKind::Block);
/// let mut tuner = AutoTuner::new(&config, 16);
/// assert!(tuner.is_active());
/// let profile = RoundProfile { per_pe_busy: vec![10, 10, 10, 10], per_row_tasks: None };
/// // A perfectly balanced profile converges quickly.
/// for _ in 0..4 { tuner.observe_round(&profile, 1.0, &mut map); }
/// assert!(!tuner.is_active());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AutoTuner {
    switcher: Option<RemoteSwitcher>,
    frozen: bool,
    best_util: f64,
    stagnant_rounds: usize,
    rounds_done: usize,
    max_rounds: usize,
    needs_row_counts: bool,
}

impl AutoTuner {
    /// Creates a tuner for `config` tuning a sparse operand with `n_rows`
    /// rows. When the config disables remote switching the tuner is born
    /// frozen (local sharing needs no tuning — it is a per-task decision).
    pub fn new(config: &AccelConfig, n_rows: usize) -> Self {
        let switcher = config.remote_switching.then(|| {
            RemoteSwitcher::new(
                config.tracking_window,
                config.slt_policy,
                config.rows_per_pe(n_rows).max(1),
            )
        });
        AutoTuner {
            frozen: switcher.is_none(),
            switcher,
            best_util: 0.0,
            stagnant_rounds: 0,
            rounds_done: 0,
            max_rounds: config.max_tuning_rounds,
            needs_row_counts: config.remote_switching
                && config.slt_policy == SltPolicy::DegreeAware,
        }
    }

    /// True while the tuner still adjusts the configuration.
    pub fn is_active(&self) -> bool {
        !self.frozen
    }

    /// Forces the configuration frozen immediately (used when extracting a
    /// [`TunedPlan`](crate::TunedPlan) from a warm-up whose dense operand
    /// had too few columns for natural convergence — the paper freezes at
    /// the round budget regardless).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// True when the engine must collect per-row task counts for the
    /// Shuffling LUT.
    pub fn needs_row_counts(&self) -> bool {
        self.needs_row_counts && !self.frozen
    }

    /// Rounds observed before freezing.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Total rows exchanged by remote switching.
    pub fn total_switches(&self) -> u64 {
        self.switcher.as_ref().map_or(0, |s| s.total_switches())
    }

    /// Feeds one finished round into the tuner: plans and applies remote
    /// switches and updates the convergence state.
    ///
    /// `round_util` is the PE utilization of the observed round in `[0, 1]`.
    pub fn observe_round(&mut self, profile: &RoundProfile, round_util: f64, map: &mut RowMap) {
        if self.frozen {
            return;
        }
        self.rounds_done += 1;
        if let Some(switcher) = &mut self.switcher {
            for plan in switcher.plan(profile, map) {
                plan.apply(map);
            }
        }
        // Convergence: stop when utilization stops improving or the budget
        // is exhausted.
        if round_util > self.best_util * (1.0 + CONVERGENCE_EPSILON) {
            self.best_util = round_util;
            self.stagnant_rounds = 0;
        } else {
            self.stagnant_rounds += 1;
        }
        if self.rounds_done >= self.max_rounds
            || (self.rounds_done >= 3 && self.stagnant_rounds >= PATIENCE)
        {
            self.frozen = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingKind;

    fn config(remote: bool) -> AccelConfig {
        let mut b = AccelConfig::builder();
        b.n_pes(4).remote_switching(remote).max_tuning_rounds(10);
        b.build().unwrap()
    }

    fn profile(busy: Vec<u64>) -> RoundProfile {
        RoundProfile {
            per_pe_busy: busy,
            per_row_tasks: None,
        }
    }

    #[test]
    fn disabled_remote_switching_starts_frozen() {
        let tuner = AutoTuner::new(&config(false), 16);
        assert!(!tuner.is_active());
        assert!(!tuner.needs_row_counts());
    }

    #[test]
    fn freezes_after_budget() {
        let mut tuner = AutoTuner::new(&config(true), 16);
        let mut map = RowMap::new(16, 4, MappingKind::Block);
        // Utilization keeps improving, so only the budget stops it.
        for i in 0..10 {
            assert!(tuner.is_active(), "round {i}");
            tuner.observe_round(
                &profile(vec![40, 30, 20, 10]),
                0.05 * (i + 1) as f64,
                &mut map,
            );
        }
        assert!(!tuner.is_active());
        assert_eq!(tuner.rounds_done(), 10);
    }

    #[test]
    fn freezes_on_stagnation() {
        let mut tuner = AutoTuner::new(&config(true), 16);
        let mut map = RowMap::new(16, 4, MappingKind::Block);
        for _ in 0..5 {
            tuner.observe_round(&profile(vec![10, 10, 10, 10]), 0.9, &mut map);
        }
        assert!(!tuner.is_active());
        assert!(tuner.rounds_done() < 5);
    }

    #[test]
    fn observing_while_frozen_is_noop() {
        let mut tuner = AutoTuner::new(&config(false), 16);
        let mut map = RowMap::new(16, 4, MappingKind::Block);
        tuner.observe_round(&profile(vec![9, 0, 0, 0]), 0.2, &mut map);
        assert_eq!(tuner.rounds_done(), 0);
        assert_eq!(map.total_exchanged(), 0);
    }

    #[test]
    fn applies_switch_plans_to_map() {
        let mut tuner = AutoTuner::new(&config(true), 16);
        let mut map = RowMap::new(16, 4, MappingKind::Block);
        // Persistent gap: the second observation should move rows.
        tuner.observe_round(&profile(vec![100, 50, 50, 0]), 0.3, &mut map);
        tuner.observe_round(&profile(vec![100, 50, 50, 0]), 0.31, &mut map);
        assert!(map.total_exchanged() > 0);
        assert!(map.is_consistent());
    }

    #[test]
    fn degree_aware_requests_row_counts() {
        let mut b = AccelConfig::builder();
        b.n_pes(4)
            .remote_switching(true)
            .slt_policy(SltPolicy::DegreeAware);
        let tuner = AutoTuner::new(&b.build().unwrap(), 16);
        assert!(tuner.needs_row_counts());
    }
}
