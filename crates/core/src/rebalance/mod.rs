//! Runtime workload rebalancing — the paper's core contribution (§4).
//!
//! * [`local`] — dynamic local sharing: per-task diversion to under-loaded
//!   neighbour PEs within a hop radius (§4.1),
//! * [`remote`] — dynamic remote switching: per-round exchange of row
//!   ownership between the hotspot and coldspot PEs, sized by Eq. 5 (§4.2),
//! * [`autotuner`] — the convergence loop that applies remote switching
//!   round by round and freezes the configuration once utilization stops
//!   improving, so it can be reused for all remaining columns and
//!   iterations.

pub mod autotuner;
pub mod local;
pub mod remote;

pub use autotuner::AutoTuner;
pub use local::LocalSharing;
pub use remote::{RemoteSwitcher, RoundProfile, SwitchPlan};
