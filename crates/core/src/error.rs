use std::error::Error;
use std::fmt;

use awb_sparse::SparseError;

/// Errors produced by accelerator configuration and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccelError {
    /// A configuration field was invalid (message explains which and why).
    InvalidConfig(String),
    /// Operand shapes were incompatible with the requested SPMM.
    Shape(SparseError),
    /// The functional cross-check between simulated and reference output
    /// failed — a simulator bug, never a user error.
    VerificationFailed {
        /// Which SPMM/label failed.
        label: String,
        /// Largest absolute difference observed.
        max_diff: String,
    },
    /// The serving front-end's admission queue is at its configured depth
    /// — explicit backpressure instead of unbounded growth. The caller
    /// should drain the queue (or raise the depth) and retry.
    QueueFull {
        /// The configured admission-queue depth that was hit.
        depth: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig(msg) => write!(f, "invalid accelerator config: {msg}"),
            AccelError::Shape(e) => write!(f, "operand shape error: {e}"),
            AccelError::VerificationFailed { label, max_diff } => write!(
                f,
                "functional verification failed for {label}: max diff {max_diff}"
            ),
            AccelError::QueueFull { depth } => write!(
                f,
                "admission queue full (depth {depth}): request rejected — drain the queue or \
                 raise ServeOptions::queue_depth"
            ),
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for AccelError {
    fn from(e: SparseError) -> Self {
        AccelError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AccelError::InvalidConfig("n_pes must be a power of two".into());
        assert!(e.to_string().contains("n_pes"));
        let e: AccelError = SparseError::MalformedFormat("x".into()).into();
        assert!(e.to_string().contains("shape error"));
        assert!(e.source().is_some());
        let e = AccelError::QueueFull { depth: 64 };
        assert!(e.to_string().contains("admission queue full (depth 64)"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<AccelError>();
    }
}
