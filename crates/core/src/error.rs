use std::error::Error;
use std::fmt;

use awb_sparse::SparseError;

/// Errors produced by accelerator configuration and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccelError {
    /// A configuration field was invalid (message explains which and why).
    InvalidConfig(String),
    /// Operand shapes were incompatible with the requested SPMM.
    Shape(SparseError),
    /// The functional cross-check between simulated and reference output
    /// failed — a simulator bug, never a user error.
    VerificationFailed {
        /// Which SPMM/label failed.
        label: String,
        /// Largest absolute difference observed.
        max_diff: String,
    },
    /// The serving front-end's admission queue is at its configured depth
    /// — explicit backpressure instead of unbounded growth. The caller
    /// should drain the queue (or raise the depth) and retry.
    QueueFull {
        /// The configured admission-queue depth that was hit.
        depth: usize,
    },
    /// A worker thread panicked while executing an isolated request or
    /// shard. The panic was caught at the isolation boundary
    /// ([`par_map_isolated`](crate::exec::par_map_isolated)) so other
    /// in-flight requests completed normally.
    WorkerPanicked {
        /// The named site (e.g. `drain[3]`) where the panic surfaced.
        site: String,
        /// The stringified panic payload.
        message: String,
    },
    /// A request's queue wait exceeded its per-request deadline budget, so
    /// the service shed it instead of executing stale work.
    DeadlineExceeded {
        /// How long the request actually waited, in milliseconds.
        waited_ms: u64,
        /// The configured deadline budget, in milliseconds.
        budget_ms: u64,
    },
    /// A graph/feature/weight operand was rejected at admission — NaN/±inf
    /// values, out-of-bounds indices, or a dimension mismatch — before it
    /// could enter the plan cache or produce a silent-NaN output.
    InvalidInput(String),
    /// A response matrix contained NaN/±inf values (detected under fault
    /// injection) and was suppressed: the service returns this typed error
    /// rather than ever handing back a corrupted payload.
    NonFiniteOutput {
        /// The named site (e.g. `drain[5]`) whose output was corrupted.
        site: String,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig(msg) => write!(f, "invalid accelerator config: {msg}"),
            AccelError::Shape(e) => write!(f, "operand shape error: {e}"),
            AccelError::VerificationFailed { label, max_diff } => write!(
                f,
                "functional verification failed for {label}: max diff {max_diff}"
            ),
            AccelError::QueueFull { depth } => write!(
                f,
                "admission queue full (depth {depth}): request rejected — drain the queue or \
                 raise ServeOptions::queue_depth"
            ),
            AccelError::WorkerPanicked { site, message } => {
                write!(f, "worker panicked at {site}: {message}")
            }
            AccelError::DeadlineExceeded {
                waited_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: request waited {waited_ms} ms against a {budget_ms} ms budget \
                 — shed without executing"
            ),
            AccelError::InvalidInput(msg) => {
                write!(f, "invalid input rejected at admission: {msg}")
            }
            AccelError::NonFiniteOutput { site } => write!(
                f,
                "non-finite output suppressed at {site}: response contained NaN/inf and was \
                 replaced by this typed error"
            ),
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for AccelError {
    fn from(e: SparseError) -> Self {
        AccelError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AccelError::InvalidConfig("n_pes must be a power of two".into());
        assert!(e.to_string().contains("n_pes"));
        let e: AccelError = SparseError::MalformedFormat("x".into()).into();
        assert!(e.to_string().contains("shape error"));
        assert!(e.source().is_some());
        let e = AccelError::QueueFull { depth: 64 };
        assert!(e.to_string().contains("admission queue full (depth 64)"));
        let e = AccelError::WorkerPanicked {
            site: "drain[3]".into(),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("worker panicked at drain[3]: boom"));
        let e = AccelError::DeadlineExceeded {
            waited_ms: 120,
            budget_ms: 50,
        };
        assert!(e.to_string().contains("waited 120 ms"));
        assert!(e.to_string().contains("50 ms budget"));
        let e = AccelError::InvalidInput("x1 value at nnz 4 is NaN".into());
        assert!(e.to_string().contains("rejected at admission"));
        let e = AccelError::NonFiniteOutput {
            site: "serve[1]".into(),
        };
        assert!(e
            .to_string()
            .contains("non-finite output suppressed at serve[1]"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<AccelError>();
    }
}
