//! CSV export of simulation statistics.
//!
//! The bench harness prints human-readable tables; this module emits the
//! same data as machine-readable CSV so the paper's figures can be
//! regenerated with external plotting tools (each function documents which
//! figure its series backs).

use crate::stats::{RunStats, SpmmStats};

/// Per-round trace of one SPMM — the series behind the auto-tuner
/// convergence view and Fig. 14 F-J: columns
/// `round,cycles,tasks,busy,util,max_pe_busy,min_pe_busy,max_queue,raw_stalls,tuning`.
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, FastEngine, SpmmEngine};
/// use awb_accel::trace::spmm_round_csv;
/// use awb_sparse::{Coo, DenseMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Coo::new(4, 4);
/// a.push(0, 0, 1.0)?;
/// let b = DenseMatrix::from_vec(4, 2, vec![1.0; 8])?;
/// let config = AccelConfig::builder().n_pes(2).build()?;
/// let out = FastEngine::new(config).run(&a.to_csc(), &b, "t")?;
/// let csv = spmm_round_csv(&out.stats);
/// assert!(csv.lines().count() == 3); // header + 2 rounds
/// # Ok(())
/// # }
/// ```
pub fn spmm_round_csv(stats: &SpmmStats) -> String {
    let mut out = String::from(
        "round,cycles,tasks,busy,util,max_pe_busy,min_pe_busy,max_queue,raw_stalls,tuning\n",
    );
    for (i, r) in stats.rounds.iter().enumerate() {
        out.push_str(&format!(
            "{i},{},{},{},{:.4},{},{},{},{},{}\n",
            r.cycles,
            r.tasks,
            r.busy_cycles,
            r.utilization(stats.n_pes),
            r.max_pe_busy,
            r.min_pe_busy,
            r.max_queue_depth,
            r.raw_stalls,
            r.tuning_active as u8,
        ));
    }
    out
}

/// One summary line per SPMM of a run — the series behind Fig. 14 A-J:
/// columns
/// `spmm,rounds,tasks,cycles,ideal,sync,util,max_queue,total_queue_slots,tuning_rounds`.
pub fn run_spmm_csv(stats: &RunStats) -> String {
    let mut out = String::from(
        "spmm,rounds,tasks,cycles,ideal,sync,util,max_queue,total_queue_slots,tuning_rounds\n",
    );
    for s in stats.spmms() {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.4},{},{},{}\n",
            s.label,
            s.rounds.len(),
            s.total_tasks(),
            s.total_cycles(),
            s.ideal_cycles(),
            s.sync_cycles(),
            s.utilization(),
            s.max_queue_depth(),
            s.total_queue_slots(),
            s.tuning_rounds(),
        ));
    }
    out
}

/// Per-layer summary — columns
/// `layer,xw_cycles,axw_cycles,pipelined,sequential,savings`.
pub fn run_layer_csv(stats: &RunStats) -> String {
    let mut out = String::from("layer,xw_cycles,axw_cycles,pipelined,sequential,savings\n");
    for (i, l) in stats.layers.iter().enumerate() {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            i + 1,
            l.xw.total_cycles(),
            l.a_xw.total_cycles(),
            l.pipelined_cycles,
            l.sequential_cycles(),
            l.pipeline_savings(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{LayerStats, RoundStats};

    fn spmm(label: &str, n: usize) -> SpmmStats {
        SpmmStats {
            label: label.into(),
            n_pes: 4,
            rounds: (0..n)
                .map(|i| RoundStats {
                    cycles: 10 + i as u64,
                    tasks: 20,
                    busy_cycles: 20,
                    max_pe_busy: 8,
                    min_pe_busy: 2,
                    max_queue_depth: 5,
                    raw_stalls: 1,
                    tuning_active: i == 0,
                })
                .collect(),
            queue_high_water: vec![3, 5, 2, 4],
        }
    }

    fn run() -> RunStats {
        RunStats {
            layers: vec![LayerStats {
                xw: spmm("L1:X*W", 2),
                a_xw: spmm("L1:A*(XW)", 2),
                pipelined_cycles: 30,
            }],
            n_pes: 4,
        }
    }

    #[test]
    fn round_csv_has_header_and_rows() {
        let csv = spmm_round_csv(&spmm("t", 3));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("round,cycles"));
        assert!(lines[1].starts_with("0,10,20,20,0.5000"));
        assert!(lines[1].ends_with(",1")); // tuning on in round 0
        assert!(lines[2].ends_with(",0"));
    }

    #[test]
    fn spmm_csv_one_line_per_spmm() {
        let csv = run_spmm_csv(&run());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("L1:X*W,2,40,21,10,11"));
        // total_queue_slots = 3+5+2+4 = 14.
        assert!(lines[1].contains(",14,"));
    }

    #[test]
    fn layer_csv_reports_savings() {
        let csv = run_layer_csv(&run());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        // xw 21 + axw 21 = 42 sequential, 30 pipelined, 12 saved.
        assert_eq!(lines[1], "1,21,21,30,42,12");
    }
}
