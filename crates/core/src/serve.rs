//! Multi-tenant serving front-end: admission queue, cross-graph LRU plan
//! cache, and batched execution over prepared per-graph plans.
//!
//! The ROADMAP's north star is a production-scale system serving heavy
//! traffic on *fixed graphs*: graphs (and model weights) change rarely,
//! feature-matrix requests arrive constantly — and in a multi-tenant
//! deployment many graphs share one accelerator. [`GcnService`] is that
//! shape made concrete, in three tiers:
//!
//! * **Named plans** — [`prepare`](GcnService::prepare) pays auto-tuning
//!   once per graph and stores the [`GcnPlan`] under a name;
//!   [`serve`](GcnService::serve) fans request batches out over the
//!   [`exec`](crate::exec) substrate against the shared plan.
//! * **Fingerprint-keyed plan cache** —
//!   [`serve_graph`](GcnService::serve_graph) keys plans on the graph's
//!   sparsity fingerprint instead of a name: prepare-on-miss, LRU
//!   eviction under the [`ServeOptions::cache_budget_bytes`] budget
//!   (derived from [`GcnPlan::memory_bytes`] estimates). A cached plan is
//!   only reused when [`GcnPlan::matches`] confirms graph *and* weights —
//!   a mutated tenant graph is a well-defined miss (re-prepare), never a
//!   stale plan.
//! * **Admission queue** — [`enqueue`](GcnService::enqueue) admits
//!   requests up to [`ServeOptions::queue_depth`] and rejects beyond it
//!   with [`AccelError::QueueFull`] (explicit backpressure);
//!   [`drain`](GcnService::drain) executes everything admitted as one
//!   deterministic batch.
//!
//! Every batch reports per-request latency split into *queue-wait* (from
//! admission to a worker picking the request up) and *execute* (the
//! simulation itself), with p50/p95/p99 percentiles over both — see
//! [`BatchOutcome::queue_wait_percentiles`] /
//! [`BatchOutcome::execute_percentiles`].
//!
//! Results keep request order (`results[i]` always belongs to
//! `requests[i]`, at any thread count) and outputs are bit-identical to
//! independent cold [`GcnRunner::run`] calls on the same inputs; only the
//! *cost* differs (no per-request tuning, the replay cache is warm from
//! request 1).
//!
//! # Fault tolerance (DESIGN.md §10)
//!
//! The service degrades instead of dying:
//!
//! * **Ingest validation** — [`validate_ingest`] rejects NaN/±inf values,
//!   out-of-bounds indices, and dimension mismatches with
//!   [`AccelError::InvalidInput`] at admission, before a bad operand can
//!   enter the plan cache or produce a silent-NaN output.
//! * **Request isolation** — [`drain_isolated`](GcnService::drain_isolated)
//!   and [`serve_isolated`](GcnService::serve_isolated) execute each
//!   request behind [`exec::par_map_isolated`]: a panicking request yields
//!   its own [`AccelError::WorkerPanicked`] entry while every other
//!   request completes (and poison-recovering locks keep the shared plan
//!   serving afterwards).
//! * **Deadlines** — with [`ServeOptions::deadline`] set, a request whose
//!   queue wait exceeds the budget is shed with
//!   [`AccelError::DeadlineExceeded`] instead of executing stale work.
//! * **Bounded retry** —
//!   [`enqueue_with_backoff`](GcnService::enqueue_with_backoff) absorbs
//!   transient [`AccelError::QueueFull`] rejections with exponential
//!   backoff plus a forced drain per retry.
//! * **Fault injection** — an armed
//!   [`FaultPlan`](crate::fault::FaultPlan) (config `faults`) injects
//!   deterministic panics/NaN payloads/delays at the `drain`/`serve`
//!   sites; disabled injection is a single `Option` test per request.

use crate::config::{AccelConfig, RetryPolicy, ServeOptions, StrategyPolicy};
use crate::cost::AutoDecision;
use crate::engine::steady::structure_fingerprint;
use crate::error::AccelError;
use crate::exec;
use crate::fault::{FaultKind, FaultPlan};
use crate::gcn_run::{GcnPlan, GcnRunOutcome, GcnRunner};
use awb_gcn_model::GcnInput;
use awb_sparse::{Csc, Csr, DenseMatrix};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Report of one graph-preparation (warm-up) pass.
#[derive(Debug, Clone)]
pub struct PrepareReport {
    /// Graph name the plan was stored under.
    pub graph: String,
    /// The warm-up inference's outcome (tuning rounds included).
    pub warmup: GcnRunOutcome,
    /// Auto-tuning rounds spent on `A` before freezing (summed over
    /// shards when the configuration shards the graph).
    pub tuning_rounds: usize,
    /// Rows exchanged by remote switching during warm-up.
    pub total_switches: u64,
    /// Column-shard devices the graph (aggregation side, `A`) was
    /// partitioned across (1 when unsharded).
    pub shards: usize,
    /// Most column-shard devices any layer's feature matrix was
    /// partitioned across for `X × W` during the warm-up (1 when the
    /// combination phase is unsharded; each layer of each request
    /// re-derives its own cut from its `X`, so counts can differ per
    /// layer — e.g. a memory budget that holds the sparse X1 but not the
    /// dense hidden matrix shards only layer 2).
    pub combination_shards: usize,
    /// Host wall-clock of the warm-up pass in seconds.
    pub wall_s: f64,
    /// `Some(reason)` when the configured sharded prepare failed and the
    /// runner degraded to an unsharded plan (see [`GcnPlan::degraded`]);
    /// `None` when the plan was prepared exactly as configured.
    pub degraded: Option<String>,
    /// Strategy policy the plan was prepared under (`"manual"`/`"auto"`).
    pub policy: &'static str,
    /// The cost model's resolution and its predicted-vs-measured scorecard
    /// when the plan was prepared under
    /// [`StrategyPolicy::Auto`](crate::StrategyPolicy::Auto); `None` under
    /// `Manual`.
    pub auto: Option<AutoReport>,
    /// Streaming statistics of the warm-up pass — stream shard count,
    /// peak resident sparse bytes, I/O traffic, and prefetch/compute
    /// overlap — when the plan streams `A` from a configured on-disk
    /// store ([`AccelConfig::store`]); `None` for fully-resident plans.
    pub stream: Option<crate::StreamStats>,
}

/// The Auto-strategy scorecard attached to a [`PrepareReport`]: which
/// configuration the calibrated cost model chose, and its predictions next
/// to what the warm-up actually measured.
#[derive(Debug, Clone)]
pub struct AutoReport {
    /// Human label of the winning configuration
    /// (see [`AutoDecision::label`]).
    pub chosen: String,
    /// Predicted warm-path cycles for the chosen configuration.
    pub predicted_cycles: f64,
    /// Cycles the warm-up actually took. Includes the one-time tuning
    /// rounds the prediction deliberately excludes, so expect
    /// `predicted <= measured` on skew-heavy graphs.
    pub measured_cycles: u64,
    /// Predicted host wall seconds for one warm request.
    pub predicted_wall_s: f64,
    /// Host wall seconds of the (cold, tuning-inclusive) warm-up pass.
    pub measured_wall_s: f64,
    /// Candidate configurations the model scored.
    pub candidates_scored: usize,
    /// True when the decision was re-scored against the unsharded
    /// candidate set after a degraded sharded prepare.
    pub rescored_unsharded: bool,
    /// Predicted store-read seconds per warm request, from the cost
    /// model's warn-only [`IoForecast`](crate::IoForecast); `None` for
    /// resident configurations.
    pub io_read_s: Option<f64>,
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Position in the batch (results keep request order).
    pub index: usize,
    /// The inference outcome (output features + cycle statistics).
    pub outcome: GcnRunOutcome,
    /// Host wall-clock spent simulating this request, in seconds.
    pub wall_s: f64,
    /// Host wall-clock the request waited before a worker picked it up,
    /// in seconds: from admission ([`GcnService::enqueue`]) or batch
    /// start ([`GcnService::serve`]) to execution start.
    pub queue_wait_s: f64,
}

/// p50/p95/p99 of a latency sample set, in seconds (nearest-rank).
///
/// Degenerate inputs are guarded: an empty sample set yields all-zero
/// percentiles, non-finite or negative samples are dropped before
/// ranking — a percentile can never be NaN/inf, so reports and bench
/// records stay aggregatable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyPercentiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencyPercentiles {
    /// Computes nearest-rank percentiles over `samples` (any order;
    /// non-finite and negative entries are dropped, see type docs).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut clean: Vec<f64> = samples
            .into_iter()
            .filter(|s| s.is_finite() && *s >= 0.0)
            .collect();
        clean.sort_by(f64::total_cmp);
        LatencyPercentiles {
            p50: nearest_rank(&clean, 50.0),
            p95: nearest_rank(&clean, 95.0),
            p99: nearest_rank(&clean, 99.0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, finite sample set
/// (0.0 when empty).
fn nearest_rank(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// A served batch: per-request outcomes in request order plus aggregate
/// accounting.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-request results, `requests[i]` ↦ `outcomes[i]`.
    pub requests: Vec<RequestOutcome>,
    /// Host wall-clock of the whole batch in seconds.
    pub wall_s: f64,
    /// Clock frequency used for latency conversion (MHz).
    pub freq_mhz: f64,
}

impl BatchOutcome {
    /// Mean simulated cycles per request.
    pub fn mean_cycles(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .requests
            .iter()
            .map(|r| r.outcome.stats.total_cycles())
            .sum();
        total as f64 / self.requests.len() as f64
    }

    /// Mean simulated per-request latency in milliseconds. Returns 0.0
    /// (never NaN/inf) when `freq_mhz` is zero, negative, or non-finite —
    /// a degenerate record should read as "no latency measured", not
    /// poison downstream aggregation.
    pub fn mean_latency_ms(&self) -> f64 {
        if !(self.freq_mhz.is_finite() && self.freq_mhz > 0.0) {
            return 0.0;
        }
        self.mean_cycles() / (self.freq_mhz * 1e3)
    }

    /// Mean host wall-clock per request in seconds.
    pub fn mean_wall_s(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().map(|r| r.wall_s).sum::<f64>() / self.requests.len() as f64
    }

    /// Requests completed per host wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.requests.len() as f64 / self.wall_s
    }

    /// p50/p95/p99 of per-request host execution wall-clock, in seconds.
    pub fn execute_percentiles(&self) -> LatencyPercentiles {
        LatencyPercentiles::from_samples(self.requests.iter().map(|r| r.wall_s))
    }

    /// p50/p95/p99 of per-request queue wait, in seconds (see
    /// [`RequestOutcome::queue_wait_s`]).
    pub fn queue_wait_percentiles(&self) -> LatencyPercentiles {
        LatencyPercentiles::from_samples(self.requests.iter().map(|r| r.queue_wait_s))
    }

    /// Average simulated PE utilization over all requests (weighted by
    /// each request's busy/denominator, like [`RunStats::avg_utilization`]
    /// (crate::RunStats::avg_utilization)).
    pub fn avg_utilization(&self) -> f64 {
        let (busy, denom) = self
            .requests
            .iter()
            .flat_map(|r| r.outcome.stats.spmms())
            .fold((0u64, 0u64), |(b, d), s| {
                (b + s.total_busy(), d + s.total_cycles() * s.n_pes as u64)
            });
        if denom == 0 {
            0.0
        } else {
            busy as f64 / denom as f64
        }
    }
}

/// A fault-isolated batch: per-request `Result`s in request order. The
/// isolation contract: every `Ok` entry is bit-identical to an independent
/// cold run of that request, every `Err` entry is a typed [`AccelError`]
/// (a shed deadline, a caught worker panic, a suppressed non-finite
/// output) — and one request's failure never disturbs its neighbours.
#[derive(Debug, Clone)]
pub struct IsolatedBatch {
    /// Per-request results, `requests[i]` ↦ `results[i]` at any thread
    /// count.
    pub results: Vec<Result<RequestOutcome, AccelError>>,
    /// Host wall-clock of the whole batch in seconds.
    pub wall_s: f64,
    /// Clock frequency used for latency conversion (MHz).
    pub freq_mhz: f64,
}

impl IsolatedBatch {
    /// The successfully completed requests, in request order.
    pub fn completed(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// The failed requests as `(index, error)`, in request order.
    pub fn failed(&self) -> impl Iterator<Item = (usize, &AccelError)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Number of failed requests.
    pub fn failed_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// Collapses to the fail-fast [`BatchOutcome`] view: the whole batch,
    /// or the first per-request error. The legacy
    /// [`drain`](GcnService::drain)/[`serve`](GcnService::serve) semantics
    /// are exactly this collapse.
    ///
    /// # Errors
    ///
    /// The first failed request's error, when any request failed.
    pub fn into_batch(self) -> Result<BatchOutcome, AccelError> {
        let mut requests = Vec::with_capacity(self.results.len());
        for result in self.results {
            requests.push(result?);
        }
        Ok(BatchOutcome {
            requests,
            wall_s: self.wall_s,
            freq_mhz: self.freq_mhz,
        })
    }
}

/// Result of a backoff-retried admission
/// (see [`GcnService::enqueue_with_backoff`]).
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// Queue position the request was finally admitted at.
    pub position: usize,
    /// Retries it took (0 = admitted first try).
    pub retries: usize,
    /// Batches force-drained to free queue capacity, one per retry (the
    /// degradation trade: smaller batches for admission under pressure).
    pub drained: Vec<IsolatedBatch>,
}

/// Rejects non-finite values in a slice with a labelled
/// [`AccelError::InvalidInput`].
fn check_finite(label: &str, values: &[f32]) -> Result<(), AccelError> {
    match values.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(AccelError::InvalidInput(format!(
            "{label} contains a non-finite value ({}) at position {i}",
            values[i]
        ))),
    }
}

/// Validates one CSC operand: finite values, in-bounds row indices.
fn check_csc(label: &str, m: &Csc) -> Result<(), AccelError> {
    check_finite(label, m.values())?;
    if let Some(&bad) = m.row_idx().iter().find(|&&r| r as usize >= m.rows()) {
        return Err(AccelError::InvalidInput(format!(
            "{label} row index {bad} is out of bounds for {} rows",
            m.rows()
        )));
    }
    Ok(())
}

/// Validates one CSR operand: finite values, in-bounds column indices.
fn check_csr(label: &str, m: &Csr) -> Result<(), AccelError> {
    check_finite(label, m.values())?;
    if let Some(&bad) = m.col_idx().iter().find(|&&c| c as usize >= m.cols()) {
        return Err(AccelError::InvalidInput(format!(
            "{label} column index {bad} is out of bounds for {} columns",
            m.cols()
        )));
    }
    Ok(())
}

/// Validates one feature-matrix request against the plan it will run on:
/// shape agreement plus [`check_csr`].
fn check_request(plan: &GcnPlan, x1: &Csr) -> Result<(), AccelError> {
    let rows = plan.graph().rows();
    if x1.rows() != rows {
        return Err(AccelError::InvalidInput(format!(
            "request x1 has {} rows but the graph has {rows} nodes",
            x1.rows()
        )));
    }
    if let Some(w1) = plan.weights().first() {
        if x1.cols() != w1.rows() {
            return Err(AccelError::InvalidInput(format!(
                "request x1 has {} feature columns but layer-1 weights expect {}",
                x1.cols(),
                w1.rows()
            )));
        }
    }
    check_csr("request x1", x1)
}

/// Admission-time ingest validation: rejects graphs, features, and
/// weights carrying NaN/±inf values, out-of-bounds indices, or dimension
/// mismatches with [`AccelError::InvalidInput`] — *before* they can enter
/// the plan cache or produce a silent-NaN output. Called by every
/// [`GcnService`] admission path ([`prepare`](GcnService::prepare),
/// [`serve_graph`](GcnService::serve_graph),
/// [`enqueue`](GcnService::enqueue)).
///
/// # Errors
///
/// [`AccelError::InvalidInput`] naming the offending operand.
pub fn validate_ingest(input: &GcnInput) -> Result<(), AccelError> {
    let a = &input.a_norm_csc;
    if a.rows() != a.cols() {
        return Err(AccelError::InvalidInput(format!(
            "adjacency must be square, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    check_csc("adjacency", a)?;
    if input.x1.rows() != a.rows() {
        return Err(AccelError::InvalidInput(format!(
            "x1 has {} rows but the graph has {} nodes",
            input.x1.rows(),
            a.rows()
        )));
    }
    check_csr("x1", &input.x1)?;
    let mut in_dim = input.x1.cols();
    for (i, w) in input.weights.iter().enumerate() {
        if w.rows() != in_dim {
            return Err(AccelError::InvalidInput(format!(
                "layer-{} weights have {} rows but the layer input has {} columns",
                i + 1,
                w.rows(),
                in_dim
            )));
        }
        check_finite(&format!("layer-{} weights", i + 1), w.as_slice())?;
        in_dim = w.cols();
    }
    Ok(())
}

/// Context one isolated request executes under.
#[derive(Clone, Copy)]
struct ExecContext<'a> {
    /// Fault-injection site name (`"drain"` / `"serve"`).
    site: &'a str,
    deadline: Option<Duration>,
    faults: Option<FaultPlan>,
}

/// Executes one isolated request: deadline check, fault hooks, run, and
/// the non-finite output guard. Returns `(outcome, queue_wait_s, wall_s)`.
///
/// An injected `Panic` deliberately unwinds from here — the caller runs
/// this inside [`exec::par_map_isolated`], which is exactly the boundary
/// under test.
fn execute_one(
    plan: &GcnPlan,
    x1: &Csr,
    enqueued: Instant,
    index: usize,
    ctx: ExecContext<'_>,
) -> Result<(GcnRunOutcome, f64, f64), AccelError> {
    let exec_start = Instant::now();
    let wait = exec_start.duration_since(enqueued);
    if let Some(budget) = ctx.deadline {
        if wait > budget {
            return Err(AccelError::DeadlineExceeded {
                waited_ms: wait.as_millis() as u64,
                budget_ms: budget.as_millis() as u64,
            });
        }
    }
    // Zero-cost when off: with `faults: None` the entire harness is this
    // one `if let` per request.
    if let Some(faults) = ctx.faults {
        match faults.decide(ctx.site, index as u64) {
            Some(FaultKind::Panic) => panic!("injected fault: {}[{index}]", ctx.site),
            Some(FaultKind::Delay) => std::thread::sleep(Duration::from_millis(
                faults.delay_ms(ctx.site, index as u64),
            )),
            _ => {}
        }
    }
    let mut outcome = plan.run(x1)?;
    if let Some(faults) = ctx.faults {
        if faults.decide(ctx.site, index as u64) == Some(FaultKind::NanPayload) {
            // Corrupt the response in flight — the guard below must catch
            // it; a NaN payload may never reach the caller as data.
            corrupt_output(&mut outcome.output);
        }
        if !outcome.output.as_slice().iter().all(|v| v.is_finite()) {
            return Err(AccelError::NonFiniteOutput {
                site: format!("{}[{index}]", ctx.site),
            });
        }
    }
    Ok((
        outcome,
        wait.as_secs_f64(),
        exec_start.elapsed().as_secs_f64(),
    ))
}

/// The fault harness's NaN-payload corruption (first element, or a no-op
/// on an empty output).
fn corrupt_output(output: &mut DenseMatrix) {
    if output.rows() > 0 && output.cols() > 0 {
        output.set(0, 0, f32::NAN);
    }
}

/// Collapses one [`exec::par_map_isolated`] slot — `Err(panic message)`,
/// or an inner per-request result — into the typed per-request `Result`.
fn collapse_slot(
    site: &str,
    index: usize,
    slot: Result<Result<(GcnRunOutcome, f64, f64), AccelError>, String>,
) -> Result<RequestOutcome, AccelError> {
    match slot {
        Ok(Ok((outcome, queue_wait_s, wall_s))) => Ok(RequestOutcome {
            index,
            outcome,
            wall_s,
            queue_wait_s,
        }),
        Ok(Err(e)) => Err(e),
        Err(message) => Err(AccelError::WorkerPanicked {
            site: format!("{site}[{index}]"),
            message,
        }),
    }
}

/// Aggregate counters of the fingerprint-keyed plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served by a resident, still-matching plan.
    pub hits: u64,
    /// Lookups that had to prepare (absent, or resident-but-mismatched —
    /// e.g. a tenant mutated weights under an unchanged graph structure).
    pub misses: u64,
    /// Plans dropped by LRU budget eviction or replaced by a re-prepare.
    pub evictions: u64,
    /// Estimated bytes currently resident ([`GcnPlan::memory_bytes`] sum).
    pub resident_bytes: u64,
    /// Plans currently resident.
    pub resident_plans: usize,
}

/// One resident plan-cache entry.
#[derive(Debug, Clone)]
struct CacheEntry {
    plan: Arc<GcnPlan>,
    bytes: u64,
    /// LRU stamp: the service's logical clock at last use.
    last_use: u64,
}

/// One admitted, not-yet-drained request.
#[derive(Debug, Clone)]
struct QueuedRequest {
    /// Resolved at admission (prepare-on-miss happens in `enqueue`, so
    /// `drain` is pure execution). The `Arc` keeps the plan alive even if
    /// the cache evicts it while the request waits.
    plan: Arc<GcnPlan>,
    x1: Csr,
    enqueued: Instant,
}

/// A serving front-end holding prepared per-graph plans (see module docs).
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, Design, GcnService};
/// use awb_datasets::{DatasetSpec, GeneratedDataset};
/// use awb_gcn_model::GcnInput;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 5)?;
/// let input = GcnInput::from_dataset(&data)?;
/// let config = Design::LocalPlusRemote { hop: 1 }.apply(AccelConfig::builder().n_pes(16).build()?);
///
/// let mut service = GcnService::new(config);
/// // Multi-tenant path: plans are cached on the graph's fingerprint —
/// // the first batch prepares, later batches on the same graph hit.
/// let requests = vec![input.x1.clone(); 4];
/// let batch = service.serve_graph(&input, &requests)?;
/// assert_eq!(batch.requests.len(), 4);
/// assert_eq!(service.cache_stats().misses, 1);
/// let p = batch.execute_percentiles();
/// assert!(p.p50 <= p.p99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GcnService {
    config: AccelConfig,
    options: ServeOptions,
    graphs: HashMap<String, GcnPlan>,
    /// Fingerprint-keyed plan cache (see module docs).
    cache: HashMap<u64, CacheEntry>,
    /// Logical clock for LRU stamps (monotone per service).
    lru_clock: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    queue: VecDeque<QueuedRequest>,
}

impl GcnService {
    /// Creates an empty service with the given accelerator configuration
    /// and default [`ServeOptions`].
    pub fn new(config: AccelConfig) -> Self {
        GcnService {
            config,
            ..GcnService::default()
        }
    }

    /// Creates an empty service with explicit [`ServeOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the options violate the
    /// zero-rejected rules (see [`ServeOptions::validate`]).
    pub fn with_options(config: AccelConfig, options: ServeOptions) -> Result<Self, AccelError> {
        options.validate()?;
        Ok(GcnService {
            config,
            options,
            ..GcnService::default()
        })
    }

    /// The configuration new plans are prepared under.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The serving options (queue depth, cache budget).
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Prepares (or re-prepares) a graph: runs one warm-up inference on
    /// `input`, extracts the [`GcnPlan`], and stores it under `name`.
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the warm-up.
    pub fn prepare(
        &mut self,
        name: impl Into<String>,
        input: &GcnInput,
    ) -> Result<PrepareReport, AccelError> {
        let name = name.into();
        validate_ingest(input)?;
        let start = Instant::now();
        let (plan, warmup) = GcnRunner::new(self.config.clone()).prepare(input)?;
        // The merged X×W stats carry the total PE count over combination
        // shard devices, so the warm-up reveals each layer's shard count
        // without re-partitioning; report the deepest split (layers can
        // differ — see the field docs).
        let combination_shards = warmup
            .stats
            .layers
            .iter()
            .map(|l| (l.xw.n_pes / self.config.n_pes).max(1))
            .max()
            .unwrap_or(1);
        let wall_s = start.elapsed().as_secs_f64();
        let auto = plan.auto_decision().map(|d| AutoReport {
            chosen: d.label(),
            predicted_cycles: d.predicted_cycles,
            measured_cycles: warmup.stats.total_cycles(),
            predicted_wall_s: d.predicted_wall_s,
            measured_wall_s: wall_s,
            candidates_scored: d.candidates_scored,
            rescored_unsharded: d.rescored_unsharded,
            io_read_s: d.io.as_ref().map(|io| io.read_s),
        });
        let report = PrepareReport {
            graph: name.clone(),
            tuning_rounds: plan.tuning_rounds(),
            total_switches: plan.total_switches(),
            shards: plan.shard_count(),
            combination_shards,
            wall_s,
            degraded: plan.degraded().map(String::from),
            policy: self.config.strategy.label(),
            auto,
            stream: plan.stream_stats(),
            warmup,
        };
        self.graphs.insert(name, plan);
        Ok(report)
    }

    /// The prepared plan for `name`, if any.
    pub fn plan(&self, name: &str) -> Option<&GcnPlan> {
        self.graphs.get(name)
    }

    /// Names of all prepared graphs (sorted for determinism).
    pub fn graph_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.graphs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Removes a prepared graph, returning whether it existed.
    pub fn evict(&mut self, name: &str) -> bool {
        self.graphs.remove(name).is_some()
    }

    /// Aggregate plan-cache counters (hits/misses/evictions plus the
    /// current residency footprint).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
            evictions: self.cache_evictions,
            resident_bytes: self.cache.values().map(|e| e.bytes).sum(),
            resident_plans: self.cache.len(),
        }
    }

    /// Scratch-arena counters summed over every resident plan (prepared
    /// graphs and the fingerprint-keyed cache): `created` stable across
    /// warm batches ⇔ steady-state serving allocates no accumulate
    /// scratch (see `AccelConfig::scratch_reuse`).
    pub fn scratch_stats(&self) -> crate::engine::ArenaStats {
        let mut total = crate::engine::ArenaStats::default();
        for plan in self.graphs.values() {
            total.absorb(plan.scratch_stats());
        }
        for entry in self.cache.values() {
            total.absorb(entry.plan.scratch_stats());
        }
        total
    }

    /// The cached plan for `input`'s graph, if resident and still
    /// matching (does not touch LRU order or counters).
    pub fn cached_plan(&self, input: &GcnInput) -> Option<Arc<GcnPlan>> {
        let (key, _) = self.plan_key(input);
        self.cache
            .get(&key)
            .filter(|e| e.plan.matches(input))
            .map(|e| Arc::clone(&e.plan))
    }

    /// Resolves `input`'s plan through the fingerprint-keyed cache:
    /// a resident plan that still [`matches`](GcnPlan::matches) is a hit;
    /// anything else (absent, or resident-but-mismatched — weights changed
    /// under an unchanged structure, or a fingerprint collision) is a miss
    /// that prepares a fresh plan, replaces the stale entry, and then
    /// evicts least-recently-used plans while the resident total exceeds
    /// the budget. The returned plan itself is never evicted by its own
    /// insertion (a budget smaller than one plan keeps exactly that plan).
    fn lookup_or_prepare(&mut self, input: &GcnInput) -> Result<Arc<GcnPlan>, AccelError> {
        let (key, decision) = self.plan_key(input);
        self.lru_clock += 1;
        if let Some(entry) = self.cache.get_mut(&key) {
            if entry.plan.matches(input) {
                entry.last_use = self.lru_clock;
                self.cache_hits += 1;
                return Ok(Arc::clone(&entry.plan));
            }
        }
        self.cache_misses += 1;
        let (plan, _warmup) =
            GcnRunner::new(self.config.clone()).prepare_with_decision(input, decision)?;
        let plan = Arc::new(plan);
        let entry = CacheEntry {
            plan: Arc::clone(&plan),
            bytes: plan.memory_bytes(),
            last_use: self.lru_clock,
        };
        if self.cache.insert(key, entry).is_some() {
            // Replacing a stale same-fingerprint entry evicts it.
            self.cache_evictions += 1;
        }
        self.evict_over_budget(key);
        Ok(plan)
    }

    /// The cache key for `input`'s plan, plus the Auto decision (if any)
    /// that was folded into it. Under [`StrategyPolicy::Manual`] the key is
    /// the structure fingerprint alone; under `Auto` the resolved choice is
    /// mixed in, so two tenants whose graphs collide on structure but
    /// resolve to different configurations occupy distinct cache slots.
    fn plan_key(&self, input: &GcnInput) -> (u64, Option<AutoDecision>) {
        let mut key = structure_fingerprint(&input.a_norm_csc);
        let decision = match self.config.strategy {
            StrategyPolicy::Manual => None,
            StrategyPolicy::Auto => GcnRunner::new(self.config.clone()).resolve_strategy(input),
        };
        if let Some(d) = &decision {
            key ^= d.choice_hash().rotate_left(17);
        }
        (key, decision)
    }

    /// Evicts least-recently-used entries (never `keep`) while the
    /// resident estimate exceeds the configured budget.
    fn evict_over_budget(&mut self, keep: u64) {
        let Some(budget) = self.options.cache_budget_bytes else {
            return;
        };
        loop {
            let resident: u64 = self.cache.values().map(|e| e.bytes).sum();
            if resident <= budget {
                return;
            }
            let victim = self
                .cache
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(victim) = victim else {
                // Only the just-used plan remains; an oversized single
                // plan stays resident (documented on ServeOptions).
                return;
            };
            self.cache.remove(&victim);
            self.cache_evictions += 1;
        }
    }

    /// Serves a batch of feature-matrix requests for `input`'s graph
    /// through the fingerprint-keyed plan cache (prepare-on-miss — no
    /// explicit [`prepare`](GcnService::prepare) call needed), fanning
    /// requests out like [`serve`](GcnService::serve).
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from a cache-miss warm-up or
    /// from the requests.
    pub fn serve_graph(
        &mut self,
        input: &GcnInput,
        requests: &[Csr],
    ) -> Result<BatchOutcome, AccelError> {
        validate_ingest(input)?;
        let plan = self.lookup_or_prepare(input)?;
        for x1 in requests {
            check_request(&plan, x1)?;
        }
        serve_on_plan(&plan, requests)
    }

    /// Admits one request to the queue, resolving its plan through the
    /// cache (prepare-on-miss happens here, at admission, so
    /// [`drain`](GcnService::drain) is pure execution and its queue-wait
    /// numbers measure queueing, not tuning). Returns the request's queue
    /// position. The admitted request holds its resolved plan: a later
    /// eviction or re-prepare never retroactively changes what an
    /// already-admitted request runs against.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::QueueFull`] when the queue is at
    /// [`ServeOptions::queue_depth`] (the request is NOT admitted);
    /// [`AccelError::InvalidInput`] when ingest validation rejects the
    /// graph, weights, or request features (see [`validate_ingest`] — a
    /// bad operand never reaches the plan cache); propagates warm-up
    /// errors from a cache miss.
    pub fn enqueue(&mut self, input: &GcnInput, x1: Csr) -> Result<usize, AccelError> {
        if self.queue.len() >= self.options.queue_depth {
            return Err(AccelError::QueueFull {
                depth: self.options.queue_depth,
            });
        }
        validate_ingest(input)?;
        let plan = self.lookup_or_prepare(input)?;
        check_request(&plan, &x1)?;
        self.queue.push_back(QueuedRequest {
            plan,
            x1,
            enqueued: Instant::now(),
        });
        Ok(self.queue.len() - 1)
    }

    /// [`enqueue`](GcnService::enqueue) with bounded retry-with-backoff
    /// for transient [`AccelError::QueueFull`] rejections: each retry
    /// sleeps the policy's (exponentially growing) backoff and then
    /// force-drains the queue — admitted work completes early to free
    /// capacity, trading batch size for admission under pressure. Any
    /// error other than `QueueFull` (validation, warm-up) fails
    /// immediately: retrying a request that was *rejected*, not
    /// *backpressured*, would never succeed.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] for an invalid policy; the last
    /// [`AccelError::QueueFull`] when every retry was exhausted; any
    /// non-transient admission error, immediately.
    pub fn enqueue_with_backoff(
        &mut self,
        input: &GcnInput,
        x1: &Csr,
        policy: &RetryPolicy,
    ) -> Result<AdmissionOutcome, AccelError> {
        policy.validate()?;
        let mut drained = Vec::new();
        for attempt in 0..=policy.max_retries {
            match self.enqueue(input, x1.clone()) {
                Ok(position) => {
                    return Ok(AdmissionOutcome {
                        position,
                        retries: attempt,
                        drained,
                    })
                }
                Err(AccelError::QueueFull { .. }) if attempt < policy.max_retries => {
                    std::thread::sleep(policy.backoff_for(attempt));
                    drained.push(self.drain_isolated());
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("the final attempt either admits or returns its error")
    }

    /// Admitted requests currently waiting for [`drain`](GcnService::drain).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Executes every admitted request as one batch over the [`exec`]
    /// substrate, emptying the queue. Results keep admission order at any
    /// thread count; each request's `queue_wait_s` spans admission to
    /// execution start. An empty queue yields an empty (guarded) batch.
    ///
    /// The fail-fast collapse of
    /// [`drain_isolated`](GcnService::drain_isolated): prefer that method
    /// when one faulty request should not discard its neighbours' results.
    ///
    /// # Errors
    ///
    /// Propagates the first per-request error (the queue is emptied
    /// either way — admitted work is never silently re-run).
    pub fn drain(&mut self) -> Result<BatchOutcome, AccelError> {
        self.drain_isolated().into_batch()
    }

    /// [`drain`](GcnService::drain) with per-request isolation: every
    /// admitted request gets its own `Result` slot — a worker panic is
    /// caught as [`AccelError::WorkerPanicked`], a blown
    /// [`ServeOptions::deadline`] is shed as
    /// [`AccelError::DeadlineExceeded`], and under an armed
    /// [`FaultPlan`](crate::fault::FaultPlan) a corrupted response is
    /// suppressed as [`AccelError::NonFiniteOutput`] — while every healthy
    /// request completes bit-identical to a cold run. The queue is emptied
    /// unconditionally.
    pub fn drain_isolated(&mut self) -> IsolatedBatch {
        let admitted: Vec<QueuedRequest> = self.queue.drain(..).collect();
        let threads = self.config.threads.unwrap_or_else(exec::num_threads);
        let ctx = ExecContext {
            site: "drain",
            deadline: self.options.deadline,
            faults: self.config.faults,
        };
        let indexed: Vec<(usize, QueuedRequest)> = admitted.into_iter().enumerate().collect();
        let start = Instant::now();
        let slots = exec::par_map_isolated(threads, &indexed, |(index, q)| {
            execute_one(&q.plan, &q.x1, q.enqueued, *index, ctx)
        });
        let wall_s = start.elapsed().as_secs_f64();
        IsolatedBatch {
            results: slots
                .into_iter()
                .enumerate()
                .map(|(index, slot)| collapse_slot("drain", index, slot))
                .collect(),
            wall_s,
            freq_mhz: self.config.freq_mhz,
        }
    }

    /// Serves a batch of feature-matrix requests against the prepared
    /// plan for `graph`, fanning requests out over the [`exec`] substrate.
    /// Results keep request order at any thread count; each request's
    /// outcome is bit-identical to a sequential (or cold) run.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when `graph` is not prepared;
    /// propagates the first per-request error otherwise.
    pub fn serve(&self, graph: &str, requests: &[Csr]) -> Result<BatchOutcome, AccelError> {
        let plan = self.named_plan(graph)?;
        serve_on_plan(plan, requests)
    }

    /// [`serve`](GcnService::serve) with per-request isolation (the
    /// batch-serve analogue of
    /// [`drain_isolated`](GcnService::drain_isolated); each request's
    /// `queue_wait_s` spans batch start to worker pickup, and requests are
    /// validated against the plan before execution).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when `graph` is not prepared,
    /// or [`AccelError::InvalidInput`] when a request fails validation —
    /// both reject the whole batch up front; per-request faults are
    /// reported inside the returned [`IsolatedBatch`] instead.
    pub fn serve_isolated(
        &self,
        graph: &str,
        requests: &[Csr],
    ) -> Result<IsolatedBatch, AccelError> {
        let plan = self.named_plan(graph)?;
        for x1 in requests {
            check_request(plan, x1)?;
        }
        Ok(serve_on_plan_isolated(
            plan,
            requests,
            self.options.deadline,
        ))
    }

    /// The prepared plan for `graph`, as a typed error when absent.
    fn named_plan(&self, graph: &str) -> Result<&GcnPlan, AccelError> {
        self.graphs.get(graph).ok_or_else(|| {
            AccelError::InvalidConfig(format!(
                "graph `{graph}` is not prepared (known: {:?})",
                self.graph_names()
            ))
        })
    }
}

/// The shared batch executor: fans `requests` out over the [`exec`]
/// substrate against one plan, recording per-request queue-wait (batch
/// start → worker pickup) and execute wall-clock. Fail-fast collapse of
/// [`serve_on_plan_isolated`].
fn serve_on_plan(plan: &GcnPlan, requests: &[Csr]) -> Result<BatchOutcome, AccelError> {
    serve_on_plan_isolated(plan, requests, None).into_batch()
}

/// The isolated batch executor behind [`GcnService::serve_isolated`] (and,
/// collapsed, every named-plan serve path): per-request `Result`s, faults
/// injected at the `"serve"` site when the plan's config arms a
/// [`FaultPlan`](crate::fault::FaultPlan).
fn serve_on_plan_isolated(
    plan: &GcnPlan,
    requests: &[Csr],
    deadline: Option<Duration>,
) -> IsolatedBatch {
    let threads = plan.config().threads.unwrap_or_else(exec::num_threads);
    let ctx = ExecContext {
        site: "serve",
        deadline,
        faults: plan.config().faults,
    };
    let indexed: Vec<(usize, &Csr)> = requests.iter().enumerate().collect();
    let start = Instant::now();
    let slots = exec::par_map_isolated(threads, &indexed, |(index, x1)| {
        execute_one(plan, x1, start, *index, ctx)
    });
    let wall_s = start.elapsed().as_secs_f64();
    IsolatedBatch {
        results: slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| collapse_slot("serve", index, slot))
            .collect(),
        wall_s,
        freq_mhz: plan.config().freq_mhz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use awb_datasets::{DatasetSpec, GeneratedDataset};

    fn service_and_input(nodes: usize, seed: u64, n_pes: usize) -> (GcnService, GcnInput) {
        let data =
            GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(nodes), seed).unwrap();
        let input = GcnInput::from_dataset(&data).unwrap();
        let config = Design::LocalPlusRemote { hop: 1 }
            .apply(AccelConfig::builder().n_pes(n_pes).build().unwrap());
        (GcnService::new(config), input)
    }

    #[test]
    fn prepare_then_serve_keeps_request_order() {
        let (mut service, input) = service_and_input(128, 21, 16);
        let report = service.prepare("g", &input).unwrap();
        assert!(report.warmup.stats.total_cycles() > 0);
        // Distinct requests: vary features via fresh generation on the
        // same graph.
        let requests: Vec<_> = (0..4)
            .map(|i| {
                GeneratedDataset::with_adjacency(
                    &input_spec(),
                    to_csr_adjacency(&input),
                    100 + i as u64,
                )
                .unwrap()
                .features
            })
            .collect();
        let batch = service.serve("g", &requests).unwrap();
        assert_eq!(batch.requests.len(), 4);
        for (i, r) in batch.requests.iter().enumerate() {
            assert_eq!(r.index, i);
            let direct = service.plan("g").unwrap().run(&requests[i]).unwrap();
            assert_eq!(r.outcome.output, direct.output);
            assert_eq!(r.outcome.stats, direct.stats);
        }
        assert!(batch.mean_cycles() > 0.0);
        assert!(batch.avg_utilization() > 0.0 && batch.avg_utilization() <= 1.0);
    }

    fn input_spec() -> DatasetSpec {
        DatasetSpec::cora().with_nodes(128)
    }

    fn to_csr_adjacency(input: &GcnInput) -> awb_sparse::Csr {
        // Rebuild an unnormalized-ish adjacency with the right shape; only
        // structure matters for feature regeneration.
        input.a_norm.clone()
    }

    #[test]
    fn unknown_graph_rejected() {
        let (service, input) = service_and_input(96, 22, 8);
        let err = service.serve("nope", std::slice::from_ref(&input.x1));
        assert!(matches!(err, Err(AccelError::InvalidConfig(_))));
    }

    #[test]
    fn prepare_overwrites_and_evict_removes() {
        let (mut service, input) = service_and_input(96, 23, 8);
        service.prepare("g", &input).unwrap();
        assert_eq!(service.graph_names(), vec!["g"]);
        service.prepare("g", &input).unwrap();
        assert_eq!(service.graph_names(), vec!["g"]);
        assert!(service.evict("g"));
        assert!(!service.evict("g"));
        assert!(service.plan("g").is_none());
    }

    #[test]
    fn freq_derived_metrics_guard_against_zero_frequency() {
        // A hand-built degenerate batch: freq_mhz of 0 (or worse) must
        // yield 0.0, never NaN/inf, from every freq-derived metric.
        let (mut service, input) = service_and_input(96, 25, 8);
        service.prepare("g", &input).unwrap();
        let batch = service.serve("g", std::slice::from_ref(&input.x1)).unwrap();
        assert!(batch.mean_latency_ms() > 0.0, "healthy batch has latency");
        for bad_freq in [0.0, -275.0, f64::NAN, f64::INFINITY] {
            let degenerate = BatchOutcome {
                freq_mhz: bad_freq,
                ..batch.clone()
            };
            let ms = degenerate.mean_latency_ms();
            assert_eq!(ms, 0.0, "freq {bad_freq}: got {ms}");
            assert!(ms.is_finite());
        }
        // Empty batches stay finite on every aggregate.
        let empty = BatchOutcome {
            requests: Vec::new(),
            wall_s: 0.0,
            freq_mhz: 0.0,
        };
        assert_eq!(empty.mean_cycles(), 0.0);
        assert_eq!(empty.mean_latency_ms(), 0.0);
        assert_eq!(empty.mean_wall_s(), 0.0);
        assert_eq!(empty.throughput_rps(), 0.0);
        assert_eq!(empty.avg_utilization(), 0.0);
        assert_eq!(empty.execute_percentiles(), LatencyPercentiles::default());
        assert_eq!(
            empty.queue_wait_percentiles(),
            LatencyPercentiles::default()
        );
    }

    #[test]
    fn percentiles_guard_degenerate_samples() {
        // Empty -> all zero.
        let p = LatencyPercentiles::from_samples(std::iter::empty());
        assert_eq!((p.p50, p.p95, p.p99), (0.0, 0.0, 0.0));
        // Single sample -> every percentile is that sample.
        let p = LatencyPercentiles::from_samples([0.25]);
        assert_eq!((p.p50, p.p95, p.p99), (0.25, 0.25, 0.25));
        // Non-finite and negative samples are dropped, not propagated.
        let p = LatencyPercentiles::from_samples([f64::NAN, f64::INFINITY, -1.0, 2.0]);
        assert_eq!((p.p50, p.p95, p.p99), (2.0, 2.0, 2.0));
        assert!(p.p50.is_finite() && p.p95.is_finite() && p.p99.is_finite());
        // All-degenerate input degrades to the empty guard.
        let p = LatencyPercentiles::from_samples([f64::NAN, f64::NEG_INFINITY]);
        assert_eq!((p.p50, p.p95, p.p99), (0.0, 0.0, 0.0));
        // Nearest-rank on a known ladder: p50 of 1..=100 is 50, p95 is
        // 95, p99 is 99.
        let p = LatencyPercentiles::from_samples((1..=100).map(|i| i as f64));
        assert_eq!((p.p50, p.p95, p.p99), (50.0, 95.0, 99.0));
        // Percentiles are monotone.
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        // Near-zero wall: a batch whose requests all ran in ~0s stays
        // finite and ordered.
        let p = LatencyPercentiles::from_samples([0.0, 0.0, 1e-12]);
        assert!(p.p50 >= 0.0 && p.p99.is_finite());
    }

    #[test]
    fn batch_percentiles_cover_wait_and_execute() {
        let (mut service, input) = service_and_input(96, 28, 8);
        let requests = vec![input.x1.clone(); 5];
        let batch = service.serve_graph(&input, &requests).unwrap();
        let exec_p = batch.execute_percentiles();
        assert!(exec_p.p50 > 0.0, "execution takes nonzero wall-clock");
        assert!(exec_p.p50 <= exec_p.p95 && exec_p.p95 <= exec_p.p99);
        let wait_p = batch.queue_wait_percentiles();
        assert!(wait_p.p50 >= 0.0 && wait_p.p99.is_finite());
        for r in &batch.requests {
            assert!(r.queue_wait_s >= 0.0 && r.queue_wait_s.is_finite());
        }
    }

    #[test]
    fn serve_options_validation() {
        let cfg = AccelConfig::builder().n_pes(8).build().unwrap();
        assert!(matches!(
            GcnService::with_options(
                cfg.clone(),
                ServeOptions {
                    queue_depth: 0,
                    cache_budget_bytes: None,
                    deadline: None,
                }
            ),
            Err(AccelError::InvalidConfig(_))
        ));
        assert!(matches!(
            GcnService::with_options(
                cfg.clone(),
                ServeOptions {
                    queue_depth: 4,
                    cache_budget_bytes: Some(0),
                    deadline: None,
                }
            ),
            Err(AccelError::InvalidConfig(_))
        ));
        let service = GcnService::with_options(
            cfg,
            ServeOptions {
                queue_depth: 4,
                cache_budget_bytes: Some(1 << 20),
                deadline: None,
            },
        )
        .unwrap();
        assert_eq!(service.options().queue_depth, 4);
    }

    #[test]
    fn cache_hit_and_miss_counters_track_lookups() {
        let (mut service, input) = service_and_input(96, 26, 8);
        assert_eq!(service.cache_stats(), CacheStats::default());
        service
            .serve_graph(&input, std::slice::from_ref(&input.x1))
            .unwrap();
        let s = service.cache_stats();
        assert_eq!((s.hits, s.misses, s.resident_plans), (0, 1, 1));
        assert!(s.resident_bytes > 0, "plan size estimate is nonzero");
        service
            .serve_graph(&input, std::slice::from_ref(&input.x1))
            .unwrap();
        let s = service.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!(service.cached_plan(&input).is_some());
    }

    #[test]
    fn queue_backpressure_rejects_then_drains_in_order() {
        let cfg = Design::LocalPlusRemote { hop: 1 }
            .apply(AccelConfig::builder().n_pes(8).build().unwrap());
        let (_, input) = service_and_input(96, 27, 8);
        let mut service = GcnService::with_options(
            cfg,
            ServeOptions {
                queue_depth: 3,
                cache_budget_bytes: None,
                deadline: None,
            },
        )
        .unwrap();
        let requests: Vec<Csr> = (0..3)
            .map(|i| {
                GeneratedDataset::with_adjacency(
                    &DatasetSpec::cora().with_nodes(96),
                    input.a_norm.clone(),
                    700 + i as u64,
                )
                .unwrap()
                .features
            })
            .collect();
        for (i, x1) in requests.iter().enumerate() {
            assert_eq!(service.enqueue(&input, x1.clone()).unwrap(), i);
        }
        assert_eq!(service.queue_len(), 3);
        // Admission past the depth is an explicit, typed rejection…
        let err = service.enqueue(&input, requests[0].clone());
        assert!(matches!(err, Err(AccelError::QueueFull { depth: 3 })));
        // …that does not grow the queue.
        assert_eq!(service.queue_len(), 3);
        let batch = service.drain().unwrap();
        assert_eq!(service.queue_len(), 0);
        assert_eq!(batch.requests.len(), 3);
        // Admission order is result order, bit-identical to direct runs.
        let plan = service.cached_plan(&input).unwrap();
        for (r, x1) in batch.requests.iter().zip(&requests) {
            let direct = plan.run(x1).unwrap();
            assert_eq!(r.outcome.output, direct.output);
            assert!(r.queue_wait_s >= 0.0);
        }
        // Draining an empty queue is a guarded no-op batch.
        let empty = service.drain().unwrap();
        assert!(empty.requests.is_empty());
        assert_eq!(empty.throughput_rps(), 0.0);
    }

    #[test]
    fn sharded_service_serves_bit_identical_requests() {
        use crate::config::ShardPolicy;
        let (unsharded, input) = service_and_input(128, 26, 16);
        let mut cfg = unsharded.config().clone();
        cfg.shards = ShardPolicy::Fixed(4);
        let mut service = GcnService::new(cfg);
        let report = service.prepare("g", &input).unwrap();
        assert_eq!(report.shards, 4);
        assert_eq!(report.combination_shards, 1);
        let requests = vec![input.x1.clone(); 3];
        let batch = service.serve("g", &requests).unwrap();
        let reference = GcnRunner::new(unsharded.config().clone())
            .run(&input)
            .unwrap();
        for r in &batch.requests {
            assert_eq!(r.outcome.output, reference.output);
        }
        assert!(batch.avg_utilization() > 0.0 && batch.avg_utilization() <= 1.0);
    }

    #[test]
    fn combination_sharded_service_serves_bit_identical_requests() {
        use crate::config::ShardPolicy;
        let (unsharded, input) = service_and_input(128, 27, 16);
        let mut cfg = unsharded.config().clone();
        cfg.shards = ShardPolicy::Fixed(2);
        cfg.combination_shards = ShardPolicy::Fixed(3);
        let mut service = GcnService::new(cfg);
        let report = service.prepare("g", &input).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.combination_shards, 3);
        let requests = vec![input.x1.clone(); 2];
        let batch = service.serve("g", &requests).unwrap();
        let reference = GcnRunner::new(unsharded.config().clone())
            .run(&input)
            .unwrap();
        for r in &batch.requests {
            assert_eq!(r.outcome.output, reference.output);
        }
    }

    #[test]
    fn batch_outputs_match_cold_runs_bitwise() {
        let (mut service, input) = service_and_input(128, 24, 16);
        service.prepare("g", &input).unwrap();
        let requests = vec![input.x1.clone(); 3];
        let batch = service.serve("g", &requests).unwrap();
        let cold = GcnRunner::new(service.config().clone())
            .run(&input)
            .unwrap();
        for r in &batch.requests {
            assert_eq!(r.outcome.output, cold.output);
            // Served requests never tune.
            for layer in &r.outcome.stats.layers {
                assert_eq!(layer.a_xw.tuning_rounds(), 0);
            }
        }
    }
}
