//! Batched multi-request serving front-end over prepared per-graph plans.
//!
//! The ROADMAP's north star is a production-scale system serving heavy
//! traffic on *fixed graphs*: the graph (and model weights) change rarely,
//! feature-matrix requests arrive constantly. [`GcnService`] is that
//! shape made concrete — [`prepare`](GcnService::prepare) pays auto-tuning
//! and replay-cache warm-up once per graph, and
//! [`serve`](GcnService::serve) fans request batches out over the
//! [`exec`](crate::exec) substrate against the shared [`GcnPlan`], with
//! deterministic ordering (`results[i]` always belongs to `requests[i]`,
//! at any thread count) and per-request latency plus aggregate
//! throughput/utilization reporting.
//!
//! Outputs are bit-identical to independent cold [`GcnRunner::run`] calls
//! on the same inputs; only the *cost* differs (no per-request tuning, the
//! replay cache is warm from request 1).

use crate::config::AccelConfig;
use crate::error::AccelError;
use crate::exec;
use crate::gcn_run::{GcnPlan, GcnRunOutcome, GcnRunner};
use awb_gcn_model::GcnInput;
use awb_sparse::Csr;
use std::collections::HashMap;
use std::time::Instant;

/// Report of one graph-preparation (warm-up) pass.
#[derive(Debug, Clone)]
pub struct PrepareReport {
    /// Graph name the plan was stored under.
    pub graph: String,
    /// The warm-up inference's outcome (tuning rounds included).
    pub warmup: GcnRunOutcome,
    /// Auto-tuning rounds spent on `A` before freezing (summed over
    /// shards when the configuration shards the graph).
    pub tuning_rounds: usize,
    /// Rows exchanged by remote switching during warm-up.
    pub total_switches: u64,
    /// Column-shard devices the graph (aggregation side, `A`) was
    /// partitioned across (1 when unsharded).
    pub shards: usize,
    /// Most column-shard devices any layer's feature matrix was
    /// partitioned across for `X × W` during the warm-up (1 when the
    /// combination phase is unsharded; each layer of each request
    /// re-derives its own cut from its `X`, so counts can differ per
    /// layer — e.g. a memory budget that holds the sparse X1 but not the
    /// dense hidden matrix shards only layer 2).
    pub combination_shards: usize,
    /// Host wall-clock of the warm-up pass in seconds.
    pub wall_s: f64,
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Position in the batch (results keep request order).
    pub index: usize,
    /// The inference outcome (output features + cycle statistics).
    pub outcome: GcnRunOutcome,
    /// Host wall-clock spent simulating this request, in seconds.
    pub wall_s: f64,
}

/// A served batch: per-request outcomes in request order plus aggregate
/// accounting.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-request results, `requests[i]` ↦ `outcomes[i]`.
    pub requests: Vec<RequestOutcome>,
    /// Host wall-clock of the whole batch in seconds.
    pub wall_s: f64,
    /// Clock frequency used for latency conversion (MHz).
    pub freq_mhz: f64,
}

impl BatchOutcome {
    /// Mean simulated cycles per request.
    pub fn mean_cycles(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .requests
            .iter()
            .map(|r| r.outcome.stats.total_cycles())
            .sum();
        total as f64 / self.requests.len() as f64
    }

    /// Mean simulated per-request latency in milliseconds. Returns 0.0
    /// (never NaN/inf) when `freq_mhz` is zero, negative, or non-finite —
    /// a degenerate record should read as "no latency measured", not
    /// poison downstream aggregation.
    pub fn mean_latency_ms(&self) -> f64 {
        if !(self.freq_mhz.is_finite() && self.freq_mhz > 0.0) {
            return 0.0;
        }
        self.mean_cycles() / (self.freq_mhz * 1e3)
    }

    /// Mean host wall-clock per request in seconds.
    pub fn mean_wall_s(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().map(|r| r.wall_s).sum::<f64>() / self.requests.len() as f64
    }

    /// Requests completed per host wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.requests.len() as f64 / self.wall_s
    }

    /// Average simulated PE utilization over all requests (weighted by
    /// each request's busy/denominator, like [`RunStats::avg_utilization`]
    /// (crate::RunStats::avg_utilization)).
    pub fn avg_utilization(&self) -> f64 {
        let (busy, denom) = self
            .requests
            .iter()
            .flat_map(|r| r.outcome.stats.spmms())
            .fold((0u64, 0u64), |(b, d), s| {
                (b + s.total_busy(), d + s.total_cycles() * s.n_pes as u64)
            });
        if denom == 0 {
            0.0
        } else {
            busy as f64 / denom as f64
        }
    }
}

/// A serving front-end holding prepared per-graph plans (see module docs).
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, Design, GcnService};
/// use awb_datasets::{DatasetSpec, GeneratedDataset};
/// use awb_gcn_model::GcnInput;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 5)?;
/// let input = GcnInput::from_dataset(&data)?;
/// let config = Design::LocalPlusRemote { hop: 1 }.apply(AccelConfig::builder().n_pes(16).build()?);
///
/// let mut service = GcnService::new(config);
/// service.prepare("cora", &input)?;          // pay tuning once
/// let requests = vec![input.x1.clone(); 4];  // …then serve a batch
/// let batch = service.serve("cora", &requests)?;
/// assert_eq!(batch.requests.len(), 4);
/// assert!(batch.avg_utilization() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GcnService {
    config: AccelConfig,
    graphs: HashMap<String, GcnPlan>,
}

impl GcnService {
    /// Creates an empty service with the given accelerator configuration.
    pub fn new(config: AccelConfig) -> Self {
        GcnService {
            config,
            graphs: HashMap::new(),
        }
    }

    /// The configuration new plans are prepared under.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Prepares (or re-prepares) a graph: runs one warm-up inference on
    /// `input`, extracts the [`GcnPlan`], and stores it under `name`.
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the warm-up.
    pub fn prepare(
        &mut self,
        name: impl Into<String>,
        input: &GcnInput,
    ) -> Result<PrepareReport, AccelError> {
        let name = name.into();
        let start = Instant::now();
        let (plan, warmup) = GcnRunner::new(self.config.clone()).prepare(input)?;
        // The merged X×W stats carry the total PE count over combination
        // shard devices, so the warm-up reveals each layer's shard count
        // without re-partitioning; report the deepest split (layers can
        // differ — see the field docs).
        let combination_shards = warmup
            .stats
            .layers
            .iter()
            .map(|l| (l.xw.n_pes / self.config.n_pes).max(1))
            .max()
            .unwrap_or(1);
        let report = PrepareReport {
            graph: name.clone(),
            tuning_rounds: plan.tuning_rounds(),
            total_switches: plan.total_switches(),
            shards: plan.shard_count(),
            combination_shards,
            wall_s: start.elapsed().as_secs_f64(),
            warmup,
        };
        self.graphs.insert(name, plan);
        Ok(report)
    }

    /// The prepared plan for `name`, if any.
    pub fn plan(&self, name: &str) -> Option<&GcnPlan> {
        self.graphs.get(name)
    }

    /// Names of all prepared graphs (sorted for determinism).
    pub fn graph_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.graphs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Removes a prepared graph, returning whether it existed.
    pub fn evict(&mut self, name: &str) -> bool {
        self.graphs.remove(name).is_some()
    }

    /// Serves a batch of feature-matrix requests against the prepared
    /// plan for `graph`, fanning requests out over the [`exec`] substrate.
    /// Results keep request order at any thread count; each request's
    /// outcome is bit-identical to a sequential (or cold) run.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when `graph` is not prepared;
    /// propagates the first per-request error otherwise.
    pub fn serve(&self, graph: &str, requests: &[Csr]) -> Result<BatchOutcome, AccelError> {
        let plan = self.graphs.get(graph).ok_or_else(|| {
            AccelError::InvalidConfig(format!(
                "graph `{graph}` is not prepared (known: {:?})",
                self.graph_names()
            ))
        })?;
        let threads = plan.config().threads.unwrap_or_else(exec::num_threads);
        let start = Instant::now();
        let results = exec::par_map_threads(threads, requests, |x1| {
            let t = Instant::now();
            plan.run(x1)
                .map(|outcome| (outcome, t.elapsed().as_secs_f64()))
        });
        let wall_s = start.elapsed().as_secs_f64();
        let mut outcomes = Vec::with_capacity(results.len());
        for (index, result) in results.into_iter().enumerate() {
            let (outcome, req_wall) = result?;
            outcomes.push(RequestOutcome {
                index,
                outcome,
                wall_s: req_wall,
            });
        }
        Ok(BatchOutcome {
            requests: outcomes,
            wall_s,
            freq_mhz: plan.config().freq_mhz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use awb_datasets::{DatasetSpec, GeneratedDataset};

    fn service_and_input(nodes: usize, seed: u64, n_pes: usize) -> (GcnService, GcnInput) {
        let data =
            GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(nodes), seed).unwrap();
        let input = GcnInput::from_dataset(&data).unwrap();
        let config = Design::LocalPlusRemote { hop: 1 }
            .apply(AccelConfig::builder().n_pes(n_pes).build().unwrap());
        (GcnService::new(config), input)
    }

    #[test]
    fn prepare_then_serve_keeps_request_order() {
        let (mut service, input) = service_and_input(128, 21, 16);
        let report = service.prepare("g", &input).unwrap();
        assert!(report.warmup.stats.total_cycles() > 0);
        // Distinct requests: vary features via fresh generation on the
        // same graph.
        let requests: Vec<_> = (0..4)
            .map(|i| {
                GeneratedDataset::with_adjacency(
                    &input_spec(),
                    to_csr_adjacency(&input),
                    100 + i as u64,
                )
                .unwrap()
                .features
            })
            .collect();
        let batch = service.serve("g", &requests).unwrap();
        assert_eq!(batch.requests.len(), 4);
        for (i, r) in batch.requests.iter().enumerate() {
            assert_eq!(r.index, i);
            let direct = service.plan("g").unwrap().run(&requests[i]).unwrap();
            assert_eq!(r.outcome.output, direct.output);
            assert_eq!(r.outcome.stats, direct.stats);
        }
        assert!(batch.mean_cycles() > 0.0);
        assert!(batch.avg_utilization() > 0.0 && batch.avg_utilization() <= 1.0);
    }

    fn input_spec() -> DatasetSpec {
        DatasetSpec::cora().with_nodes(128)
    }

    fn to_csr_adjacency(input: &GcnInput) -> awb_sparse::Csr {
        // Rebuild an unnormalized-ish adjacency with the right shape; only
        // structure matters for feature regeneration.
        input.a_norm.clone()
    }

    #[test]
    fn unknown_graph_rejected() {
        let (service, input) = service_and_input(96, 22, 8);
        let err = service.serve("nope", std::slice::from_ref(&input.x1));
        assert!(matches!(err, Err(AccelError::InvalidConfig(_))));
    }

    #[test]
    fn prepare_overwrites_and_evict_removes() {
        let (mut service, input) = service_and_input(96, 23, 8);
        service.prepare("g", &input).unwrap();
        assert_eq!(service.graph_names(), vec!["g"]);
        service.prepare("g", &input).unwrap();
        assert_eq!(service.graph_names(), vec!["g"]);
        assert!(service.evict("g"));
        assert!(!service.evict("g"));
        assert!(service.plan("g").is_none());
    }

    #[test]
    fn freq_derived_metrics_guard_against_zero_frequency() {
        // A hand-built degenerate batch: freq_mhz of 0 (or worse) must
        // yield 0.0, never NaN/inf, from every freq-derived metric.
        let (mut service, input) = service_and_input(96, 25, 8);
        service.prepare("g", &input).unwrap();
        let batch = service.serve("g", std::slice::from_ref(&input.x1)).unwrap();
        assert!(batch.mean_latency_ms() > 0.0, "healthy batch has latency");
        for bad_freq in [0.0, -275.0, f64::NAN, f64::INFINITY] {
            let degenerate = BatchOutcome {
                freq_mhz: bad_freq,
                ..batch.clone()
            };
            let ms = degenerate.mean_latency_ms();
            assert_eq!(ms, 0.0, "freq {bad_freq}: got {ms}");
            assert!(ms.is_finite());
        }
        // Empty batches stay finite on every aggregate.
        let empty = BatchOutcome {
            requests: Vec::new(),
            wall_s: 0.0,
            freq_mhz: 0.0,
        };
        assert_eq!(empty.mean_cycles(), 0.0);
        assert_eq!(empty.mean_latency_ms(), 0.0);
        assert_eq!(empty.mean_wall_s(), 0.0);
        assert_eq!(empty.throughput_rps(), 0.0);
        assert_eq!(empty.avg_utilization(), 0.0);
    }

    #[test]
    fn sharded_service_serves_bit_identical_requests() {
        use crate::config::ShardPolicy;
        let (unsharded, input) = service_and_input(128, 26, 16);
        let mut cfg = unsharded.config().clone();
        cfg.shards = ShardPolicy::Fixed(4);
        let mut service = GcnService::new(cfg);
        let report = service.prepare("g", &input).unwrap();
        assert_eq!(report.shards, 4);
        assert_eq!(report.combination_shards, 1);
        let requests = vec![input.x1.clone(); 3];
        let batch = service.serve("g", &requests).unwrap();
        let reference = GcnRunner::new(unsharded.config().clone())
            .run(&input)
            .unwrap();
        for r in &batch.requests {
            assert_eq!(r.outcome.output, reference.output);
        }
        assert!(batch.avg_utilization() > 0.0 && batch.avg_utilization() <= 1.0);
    }

    #[test]
    fn combination_sharded_service_serves_bit_identical_requests() {
        use crate::config::ShardPolicy;
        let (unsharded, input) = service_and_input(128, 27, 16);
        let mut cfg = unsharded.config().clone();
        cfg.shards = ShardPolicy::Fixed(2);
        cfg.combination_shards = ShardPolicy::Fixed(3);
        let mut service = GcnService::new(cfg);
        let report = service.prepare("g", &input).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.combination_shards, 3);
        let requests = vec![input.x1.clone(); 2];
        let batch = service.serve("g", &requests).unwrap();
        let reference = GcnRunner::new(unsharded.config().clone())
            .run(&input)
            .unwrap();
        for r in &batch.requests {
            assert_eq!(r.outcome.output, reference.output);
        }
    }

    #[test]
    fn batch_outputs_match_cold_runs_bitwise() {
        let (mut service, input) = service_and_input(128, 24, 16);
        service.prepare("g", &input).unwrap();
        let requests = vec![input.x1.clone(); 3];
        let batch = service.serve("g", &requests).unwrap();
        let cold = GcnRunner::new(service.config().clone())
            .run(&input)
            .unwrap();
        for r in &batch.requests {
            assert_eq!(r.outcome.output, cold.output);
            // Served requests never tune.
            for layer in &r.outcome.stats.layers {
                assert_eq!(layer.a_xw.tuning_rounds(), 0);
            }
        }
    }
}
