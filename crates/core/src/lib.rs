//! # AWB-GCN accelerator simulator
//!
//! The core crate of the reproduction of *AWB-GCN: A Graph Convolutional
//! Network Accelerator with Runtime Workload Rebalancing* (Geng et al.,
//! MICRO 2020): a cycle-level model of the paper's SPMM architecture with
//! its two runtime rebalancing techniques —
//!
//! * **dynamic local sharing** ([`LocalSharing`]): per-task diversion to
//!   under-loaded neighbour PEs within a configurable hop radius, and
//! * **dynamic remote switching** ([`RemoteSwitcher`]): per-round exchange
//!   of row ownership between the hotspot and coldspot PEs, sized by the
//!   paper's Eq. 5 and auto-tuned to convergence ([`AutoTuner`]), after
//!   which the configuration is frozen and reused.
//!
//! Two engines implement the same architecture ([`FastEngine`] for
//! dataset-scale sweeps, [`DetailedEngine`] for component-accurate
//! validation), and [`GcnRunner`] chains them into full GCN inference with
//! inter-SPMM pipelining (paper Fig. 8). [`AreaModel`] and [`EnergyModel`]
//! reproduce the paper's CLB and inferences-per-kJ reporting.
//!
//! The converged tuning state is a first-class artifact: a warm-up phase
//! ([`SpmmEngine::plan`] / [`GcnRunner::prepare`]) produces a frozen,
//! shareable [`TunedPlan`]/[`GcnPlan`], and per-request
//! [`SpmmSession`]s/[`GcnPlan::run`] execute against it without re-paying
//! tuning. [`GcnService`] builds the batched multi-request serving
//! front-end on top (prepared per-graph plans, deterministic batch
//! fan-out, per-request latency + aggregate throughput reporting).
//!
//! Graphs bigger than one device run column-sharded ([`ShardPolicy`] /
//! [`ShardedEngine`] / [`ShardedPlan`]): the adjacency is split into
//! nnz-balanced column shards, each with its own auto-tuned PE array, and
//! partial products merge in an order pinned bit-identical to the
//! unsharded path (see `DESIGN.md` §7).
//!
//! Strategy selection itself can be delegated to the calibrated per-layer
//! cost model ([`StrategyPolicy::Auto`] / [`cost`]): prepare profiles the
//! input, scores the candidate design/shard/replay space, and freezes the
//! predicted-fastest configuration — bit-identical to hand-specifying it.
//!
//! # Quickstart
//!
//! ```
//! use awb_accel::{AccelConfig, Design, GcnRunner};
//! use awb_datasets::{DatasetSpec, GeneratedDataset};
//! use awb_gcn_model::GcnInput;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(256), 1)?;
//! let input = GcnInput::from_dataset(&data)?;
//! let base = AccelConfig::builder().n_pes(64).build()?;
//!
//! let baseline = GcnRunner::new(Design::Baseline.apply(base.clone())).run(&input)?;
//! let awb = GcnRunner::new(Design::LocalPlusRemote { hop: 2 }.apply(base)).run(&input)?;
//! assert!(awb.stats.avg_utilization() >= baseline.stats.avg_utilization());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod config;
pub mod cost;
mod energy;
mod engine;
mod error;
pub mod exec;
pub mod fault;
mod gcn_run;
mod mapping;
pub mod pipeline;
mod rebalance;
mod serve;
mod stats;
mod sweep;
pub mod trace;

pub use area::{AreaBreakdown, AreaModel};
pub use config::{
    AccelConfig, AccelConfigBuilder, Design, MappingKind, RetryPolicy, ServeOptions, ShardPolicy,
    SltPolicy, StallMode, StrategyPolicy, DEFAULT_HOST_MEM_BUDGET,
};
pub use cost::{AutoDecision, Calibration, CostProfile, ExecOrder, IoForecast, LayerForecast};
pub use energy::{cycles_to_ms, EnergyModel};
pub use engine::{
    ArenaStats, DetailedEngine, FastEngine, PlanOutcome, PlanShard, Scratch, ScratchArena,
    ShardedEngine, ShardedOutcome, ShardedPlan, ShardedSession, SpmmEngine, SpmmOutcome,
    SpmmSession, StreamPlanShard, StreamStats, StreamedPlan, StreamedSession, StreamingEngine,
    TdqMode, TunedPlan,
};
pub use error::AccelError;
pub use exec::{num_threads, par_map, par_map_isolated, par_map_threads};
pub use fault::{FaultKind, FaultPlan};
pub use gcn_run::{verify_against_reference, GcnPlan, GcnRunOutcome, GcnRunner};
pub use mapping::RowMap;
pub use rebalance::{AutoTuner, LocalSharing, RemoteSwitcher, RoundProfile, SwitchPlan};
pub use serve::{
    validate_ingest, AdmissionOutcome, AutoReport, BatchOutcome, CacheStats, GcnService,
    IsolatedBatch, LatencyPercentiles, PrepareReport, RequestOutcome,
};
pub use stats::{LayerStats, RoundStats, RunStats, SpmmStats};
pub use sweep::{sweep_csv, DesignSweep, SweepPoint};
