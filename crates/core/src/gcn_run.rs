//! Full GCN inference on the simulated accelerator, split into a
//! *prepare* phase (pay auto-tuning once per graph) and a cheap *execute*
//! phase (per-request inference over the shared plan).
//!
//! Both phases run the paper's per-layer schedule: `X × W` first
//! (TDQ-1-class workload), then `A × (XW)` (TDQ-2-class), with
//! column-level pipelining between them (Fig. 8) and ReLU between layers.
//! A single engine serves every SPMM that uses `A`, so the auto-tuned row
//! map converged during layer 1 is *reused* in layer 2 — and, via
//! [`GcnPlan`], across every later request on the same graph: exactly the
//! paper's "ideal configuration is reused for the remaining iterations",
//! promoted from a per-call optimization to a shareable artifact.
//!
//! * [`GcnRunner::prepare`] runs one warm-up inference and extracts a
//!   [`GcnPlan`] (graph, weights, and the frozen [`TunedPlan`] for `A`).
//! * [`GcnPlan::run`] executes one feature-matrix request against the
//!   shared plan — no tuning, replay cache warm from request 1.
//! * [`GcnRunner::run`] is the thin compatibility wrapper: one cold
//!   inference, identical to the pre-split behaviour.

use crate::config::{AccelConfig, ShardPolicy, StrategyPolicy, DEFAULT_HOST_MEM_BUDGET};
use crate::cost::{self, AutoDecision, CostProfile};
use crate::engine::streaming::store_err;
use crate::engine::{
    ArenaStats, FastEngine, ScratchArena, ShardedEngine, ShardedPlan, SpmmEngine, StreamStats,
    StreamedPlan, StreamingEngine, TunedPlan,
};
use crate::error::AccelError;
use crate::pipeline::pipeline_two_stage;
use crate::stats::{LayerStats, RunStats};
use awb_gcn_model::{GcnInput, GcnModel};
use awb_sparse::store::SparseStore;
use awb_sparse::{Csc, Csr, DenseMatrix};
use std::sync::Arc;

/// Outcome of one accelerated inference.
#[derive(Debug, Clone)]
pub struct GcnRunOutcome {
    /// Final output features.
    pub output: DenseMatrix,
    /// Cycle/utilization statistics.
    pub stats: RunStats,
    /// Densities of each layer's input feature matrix as the accelerator
    /// saw them (`x_density[0]` = X1).
    pub x_density: Vec<f64>,
    /// Streaming statistics (resident peak, I/O bytes, prefetch overlap)
    /// when the run streamed `A` from an on-disk store; `None` for
    /// resident runs.
    pub stream: Option<StreamStats>,
}

impl GcnRunOutcome {
    /// Inference latency in milliseconds at `freq_mhz`.
    pub fn latency_ms(&self, freq_mhz: f64) -> f64 {
        self.stats.latency_ms(freq_mhz)
    }
}

/// The per-layer inference schedule, generic over how `A × (XW)` executes:
/// a mutable [`FastEngine`] during warm-up (tuning live), a
/// [`SpmmSession`](crate::SpmmSession) during per-request execution.
/// `X × W` uses a fresh engine per layer (X differs per layer and
/// request) — a single device, or one auto-tuned device per nnz-balanced
/// column shard of `X` under [`AccelConfig::combination_shards`], merged
/// through the pinned global-order kernel so layer outputs stay
/// bit-identical either way.
fn run_layers(
    config: &AccelConfig,
    a_csc: &Csc,
    weights: &[DenseMatrix],
    x1: &Csr,
    engine_a: &mut dyn SpmmEngine,
    xw_arena: Option<&Arc<ScratchArena>>,
) -> Result<GcnRunOutcome, AccelError> {
    let n_layers = weights.len();
    let mut layers = Vec::with_capacity(n_layers);
    let mut x_density = Vec::with_capacity(n_layers);

    // Layer 1 input: the sparse X1 as given.
    let mut x_csc = x1.to_csc();

    let mut x_dense_out: DenseMatrix = DenseMatrix::zeros(0, 0);
    for (l, w) in weights.iter().enumerate() {
        x_density.push(x_csc.density());
        // Stage 1: X × W (fresh engine per layer; X differs per layer and
        // request, so there is no tuned state to carry over — the shard
        // cut, when sharded, is re-derived from this layer's X). A policy
        // that resolves to a single shard for this X (Fixed(1), or a
        // memory budget the whole matrix fits) dispatches to the plain
        // engine: a 1-shard ShardedEngine would copy X every layer of
        // every request for bit-identical output and stats. `is_single`
        // is O(1), so the dispatch never pays a partition scan the
        // sharded engine would then repeat.
        let combination_sharded = config.combination_shards != ShardPolicy::Single
            && !config.combination_partitioner().is_single(&x_csc);
        // The per-layer X engines are transient, so a caller holding a
        // long-lived pool (GcnPlan) shares it in — without this every
        // layer of every request would re-grow a fresh arena.
        let mut engine_x: Box<dyn SpmmEngine> = if combination_sharded {
            let mut engine =
                ShardedEngine::with_partitioner(config.clone(), config.combination_partitioner());
            if let Some(arena) = xw_arena {
                engine.set_arena(Arc::clone(arena));
            }
            Box::new(engine)
        } else {
            let mut engine = FastEngine::new(config.clone());
            if let Some(arena) = xw_arena {
                engine.set_arena(Arc::clone(arena));
            }
            Box::new(engine)
        };
        let xw = engine_x.run(&x_csc, w, &format!("L{}:X*W", l + 1))?;
        let (xw_c, xw_stats) = (xw.c, xw.stats);
        // Stage 2: A × (XW) on the persistent A engine/session.
        let a_xw = engine_a.run(a_csc, &xw_c, &format!("L{}:A*(XW)", l + 1))?;
        // XW is consumed: its buffer feeds the next layer's XW output
        // instead of the allocator.
        if let Some(arena) = xw_arena {
            arena.recycle_f32(xw_c.into_vec());
        }

        let mut x_next = a_xw.c;
        if l + 1 < n_layers {
            x_next.relu_in_place();
        }

        let pipelined_cycles = if config.pipeline_spmms {
            pipeline_two_stage(&xw_stats.round_cycles(), &a_xw.stats.round_cycles())
        } else {
            xw_stats.total_cycles() + a_xw.stats.total_cycles()
        };
        layers.push(LayerStats {
            xw: xw_stats,
            a_xw: a_xw.stats,
            pipelined_cycles,
        });

        if l + 1 < n_layers {
            // Direct dense→CSC (no COO intermediate) — the inter-layer hop.
            x_csc = x_next.to_csc();
        }
        // The previous layer's dense output was consumed by the CSC hop
        // above on the last iteration — recycle its buffer too.
        let prev = std::mem::replace(&mut x_dense_out, x_next);
        if let Some(arena) = xw_arena {
            arena.recycle_f32(prev.into_vec());
        }
    }

    Ok(GcnRunOutcome {
        output: x_dense_out,
        stats: RunStats {
            layers,
            n_pes: config.n_pes,
        },
        x_density,
        stream: None,
    })
}

/// Drives GCN inference through the simulated accelerator.
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, GcnRunner};
/// use awb_datasets::{DatasetSpec, GeneratedDataset};
/// use awb_gcn_model::GcnInput;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 5)?;
/// let input = GcnInput::from_dataset(&data)?;
/// let config = AccelConfig::builder().n_pes(32).build()?;
/// let outcome = GcnRunner::new(config).run(&input)?;
/// assert_eq!(outcome.output.shape(), (128, 7));
/// assert!(outcome.stats.avg_utilization() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GcnRunner {
    config: AccelConfig,
}

impl GcnRunner {
    /// Creates a runner with the given accelerator configuration.
    pub fn new(config: AccelConfig) -> Self {
        GcnRunner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Runs inference with the paper's activation schedule (ReLU between
    /// layers, none after the last). Thin compatibility wrapper: one cold
    /// inference (tuning included), discarding the reusable plan — call
    /// [`prepare`](GcnRunner::prepare) instead when more requests on the
    /// same graph will follow. Honours both of the configuration's
    /// [`ShardPolicy`] axes: `shards` executes `A × (XW)` across
    /// column-shard devices, `combination_shards` does the same for each
    /// layer's `X × W` (outputs bit-identical in every combination).
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the engines.
    pub fn run(&self, input: &GcnInput) -> Result<GcnRunOutcome, AccelError> {
        // Under Auto, resolve the strategy first and run the resolved
        // (Manual) configuration — bit-identical to hand-specifying it.
        if let Some(decision) = self.resolve_strategy(input) {
            return GcnRunner::new(decision.apply(&self.config)).run(input);
        }
        // One engine per sparse operand: A's engine persists across layers
        // so its tuned row map is reused. A configured store takes the
        // out-of-core path (the builder rejects store + sharded A); it
        // stays a concrete engine so the outcome can carry its streaming
        // statistics.
        if self.config.store.is_some() {
            let mut engine_a = Self::open_streaming(&self.config, &input.a_norm_csc)?;
            let mut outcome = run_layers(
                &self.config,
                &input.a_norm_csc,
                &input.weights,
                &input.x1,
                &mut engine_a,
                None,
            )?;
            outcome.stream = Some(engine_a.stream_stats());
            return Ok(outcome);
        }
        let mut engine_a: Box<dyn SpmmEngine> = if self.config.shards == ShardPolicy::Single {
            Box::new(FastEngine::new(self.config.clone()))
        } else {
            Box::new(ShardedEngine::new(self.config.clone()))
        };
        run_layers(
            &self.config,
            &input.a_norm_csc,
            &input.weights,
            &input.x1,
            engine_a.as_mut(),
            None,
        )
    }

    /// Resolves [`StrategyPolicy::Auto`] for `input`: profiles its
    /// structure and scores the candidate space with the calibrated cost
    /// model ([`cost::select`]). Returns `None` under
    /// [`StrategyPolicy::Manual`] (nothing to resolve).
    pub fn resolve_strategy(&self, input: &GcnInput) -> Option<AutoDecision> {
        if self.config.strategy != StrategyPolicy::Auto {
            return None;
        }
        let profile = CostProfile::of_input(input);
        Some(Self::auto_select(&self.config, &profile))
    }

    /// The Auto candidate space, store-aware: with a store configured the
    /// aggregation operand streams out of core (device-sharding `A` is a
    /// config conflict), so only the unsharded candidates are scored.
    fn auto_select(config: &AccelConfig, profile: &CostProfile) -> AutoDecision {
        if config.store.is_some() {
            cost::select_unsharded(config, profile)
        } else {
            cost::select(config, profile)
        }
    }

    /// Runs one warm-up inference (identical to [`run`](GcnRunner::run))
    /// and extracts the reusable per-graph [`GcnPlan`]: the graph, the
    /// weights, and the frozen tuned plan (or per-shard plans, under a
    /// sharded [`ShardPolicy`]) for `A`. The warm-up's own outcome is
    /// returned alongside so the tuning pass is never wasted.
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the engines.
    pub fn prepare(&self, input: &GcnInput) -> Result<(GcnPlan, GcnRunOutcome), AccelError> {
        self.prepare_seeded(input, None, None)
    }

    /// [`prepare`](GcnRunner::prepare) against a structure profile the
    /// caller already computed — [`DesignSweep`](crate::DesignSweep) runs
    /// many prepares on one input, and the `O(n + nnz)` profile scan is a
    /// function of the input alone, so it is computed once and shared.
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the engines.
    pub fn prepare_profiled(
        &self,
        input: &GcnInput,
        profile: &CostProfile,
    ) -> Result<(GcnPlan, GcnRunOutcome), AccelError> {
        self.prepare_seeded(input, Some(profile), None)
    }

    /// [`prepare`](GcnRunner::prepare) with an Auto decision the caller
    /// already resolved (the serving front-end resolves it for the
    /// plan-cache key first; re-resolving here would double the work).
    pub(crate) fn prepare_with_decision(
        &self,
        input: &GcnInput,
        decision: Option<AutoDecision>,
    ) -> Result<(GcnPlan, GcnRunOutcome), AccelError> {
        self.prepare_seeded(input, None, decision)
    }

    fn prepare_seeded(
        &self,
        input: &GcnInput,
        profile: Option<&CostProfile>,
        decision: Option<AutoDecision>,
    ) -> Result<(GcnPlan, GcnRunOutcome), AccelError> {
        // Resolve Auto up front: every candidate is scored against the
        // structure profile and the winner becomes the concrete (Manual)
        // configuration the plan is built under.
        let is_auto = self.config.strategy == StrategyPolicy::Auto;
        let mut owned_profile: Option<CostProfile> = None;
        let decision = match (is_auto, decision) {
            (false, _) => None,
            (true, Some(decision)) => Some(decision),
            (true, None) => {
                let profile = match profile {
                    Some(p) => p,
                    None => {
                        owned_profile = Some(CostProfile::of_input(input));
                        owned_profile.as_ref().expect("just set")
                    }
                };
                Some(Self::auto_select(&self.config, profile))
            }
        };
        let exec_config = match &decision {
            Some(decision) => decision.apply(&self.config),
            None => self.config.clone(),
        };

        let (a_plan, outcome, degraded, decision, plan_config) = if exec_config.store.is_some() {
            // Out-of-core path: no degradation rung — a store that cannot
            // be opened (or does not hold this graph) is a typed ingest
            // error, not a condition a resident fallback could mask (the
            // caller asked for bounded residency; silently loading the
            // whole matrix would violate exactly that).
            let (a_plan, outcome) = Self::prepare_streamed(&exec_config, input)?;
            (a_plan, outcome, None, decision, exec_config)
        } else if exec_config.shards == ShardPolicy::Single {
            let (a_plan, outcome) = Self::prepare_single(&exec_config, input)?;
            (a_plan, outcome, None, decision, exec_config)
        } else {
            match Self::prepare_sharded(&exec_config, input) {
                Ok((a_plan, outcome)) => (a_plan, outcome, None, decision, exec_config),
                Err(reason) => {
                    // Degradation ladder, rung 2 (DESIGN.md §10): a failing
                    // sharded prepare falls back to an unsharded plan — the
                    // tenant gets a correct (bit-identical) plan on one
                    // device instead of an error, and the fallback is
                    // recorded on the plan / PrepareReport. Under Auto the
                    // decision is re-scored against the unsharded candidate
                    // set: the sharded predictions describe a plan that can
                    // no longer be built, so keeping them would be stale.
                    let (single, decision) = if decision.is_some() {
                        let rescored = match (profile, owned_profile.as_ref()) {
                            (Some(p), _) => cost::select_unsharded(&self.config, p),
                            (None, Some(p)) => cost::select_unsharded(&self.config, p),
                            (None, None) => {
                                let p = CostProfile::of_input(input);
                                cost::select_unsharded(&self.config, &p)
                            }
                        };
                        (rescored.apply(&self.config), Some(rescored))
                    } else {
                        let mut single = exec_config.clone();
                        single.shards = ShardPolicy::Single;
                        (single, None)
                    };
                    let (a_plan, outcome) = Self::prepare_single(&single, input)?;
                    (a_plan, outcome, Some(reason.to_string()), decision, single)
                }
            }
        };
        // One unified pool for the whole plan: the frozen A-side plan's
        // arena (already warm from the prepare run) also serves the
        // per-layer X engines — a second pool would double retention and
        // let recycled XW buffers strand in the wrong pool.
        let xw_arena = match &a_plan {
            APlan::Single(plan) => Arc::clone(plan.arena()),
            APlan::Sharded(plan) => Arc::clone(plan.merge_arena()),
            APlan::Streamed(plan) => Arc::clone(plan.arena()),
        };
        Ok((
            GcnPlan {
                // The resolved configuration (identical to self.config
                // under Manual, except that a degraded Auto prepare records
                // its re-scored unsharded resolution): per-request
                // execution must replay exactly the knobs the plan was
                // built under.
                config: if is_auto {
                    plan_config
                } else {
                    self.config.clone()
                },
                a_norm_csc: input.a_norm_csc.clone(),
                weights: input.weights.clone(),
                a_plan,
                degraded,
                auto: decision,
                xw_arena,
            },
            outcome,
        ))
    }

    /// The unsharded prepare path (also the sharded path's fallback).
    fn prepare_single(
        config: &AccelConfig,
        input: &GcnInput,
    ) -> Result<(APlan, GcnRunOutcome), AccelError> {
        let mut engine_a = FastEngine::new(config.clone());
        let outcome = run_layers(
            config,
            &input.a_norm_csc,
            &input.weights,
            &input.x1,
            &mut engine_a,
            None,
        )?;
        Ok((
            APlan::Single(engine_a.freeze_plan(&input.a_norm_csc)?),
            outcome,
        ))
    }

    /// Opens (ingesting on first use) the configured store and builds the
    /// streaming engine for `A`. When the store directory has no manifest
    /// yet, the normalized adjacency is written to it first — chunk
    /// target derived from the host budget so even small graphs split
    /// finely enough for the budget to bind; an existing store is opened
    /// as-is (full ingest validation) and must hold exactly this graph.
    fn open_streaming(config: &AccelConfig, a: &Csc) -> Result<StreamingEngine, AccelError> {
        let dir = config.store.as_ref().expect("caller checked config.store");
        let budget = config.host_mem_budget.unwrap_or(DEFAULT_HOST_MEM_BUDGET);
        let store = if SparseStore::exists(dir) {
            SparseStore::open(dir).map_err(store_err)?
        } else {
            // Aim for ≥ 4 chunks per half-budget shard window: a chunk's
            // resident bytes (~8 B/nnz) stay under 1/8 of the budget, so
            // chunk_nnz ≤ budget / 64, capped at the format default.
            let chunk_nnz = (budget / 64).clamp(1, awb_sparse::store::DEFAULT_CHUNK_NNZ);
            SparseStore::write_with_chunk_nnz(dir, a, chunk_nnz).map_err(store_err)?
        };
        StreamingEngine::new(config.clone(), Arc::new(store), budget)
    }

    /// The out-of-core prepare path: warm up through the streaming engine
    /// and freeze one tuned plan per stream shard.
    fn prepare_streamed(
        config: &AccelConfig,
        input: &GcnInput,
    ) -> Result<(APlan, GcnRunOutcome), AccelError> {
        let mut engine_a = Self::open_streaming(config, &input.a_norm_csc)?;
        let outcome = run_layers(
            config,
            &input.a_norm_csc,
            &input.weights,
            &input.x1,
            &mut engine_a,
            None,
        )?;
        Ok((APlan::Streamed(engine_a.freeze_plan()?), outcome))
    }

    /// The sharded prepare path, isolated behind `catch_unwind` so a
    /// panicking shard worker (or the fault harness's `prepare:sharded`
    /// site) surfaces as a typed error the caller can degrade on instead
    /// of unwinding through the service.
    fn prepare_sharded(
        config: &AccelConfig,
        input: &GcnInput,
    ) -> Result<(APlan, GcnRunOutcome), AccelError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(faults) = config.faults {
                // Any fault kind at this site means "the sharded prepare
                // dies": exercised as a panic so the recovery path under
                // test is the real catch_unwind boundary.
                if faults.decide("prepare:sharded", 0).is_some() {
                    panic!("injected fault: sharded prepare");
                }
            }
            let mut engine_a = ShardedEngine::new(config.clone());
            let outcome = run_layers(
                config,
                &input.a_norm_csc,
                &input.weights,
                &input.x1,
                &mut engine_a,
                None,
            )?;
            Ok((
                APlan::Sharded(engine_a.freeze_plan(&input.a_norm_csc)?),
                outcome,
            ))
        }))
        .unwrap_or_else(|payload| {
            Err(AccelError::WorkerPanicked {
                site: "prepare:sharded".into(),
                message: crate::exec::panic_message(payload.as_ref()),
            })
        })
    }
}

/// The frozen `A`-side tuning state a [`GcnPlan`] executes against: one
/// [`TunedPlan`] on a single device, or one per column shard.
#[derive(Debug, Clone)]
enum APlan {
    Single(TunedPlan),
    Sharded(ShardedPlan),
    Streamed(StreamedPlan),
}

impl APlan {
    /// The warm-up/replay counters both plan kinds expose; `GcnPlan`'s
    /// accessors forward here so the variant dispatch lives in one place.
    fn tuning_rounds(&self) -> usize {
        match self {
            APlan::Single(plan) => plan.tuning_rounds(),
            APlan::Sharded(plan) => plan.tuning_rounds(),
            APlan::Streamed(plan) => plan.tuning_rounds(),
        }
    }

    fn total_switches(&self) -> u64 {
        match self {
            APlan::Single(plan) => plan.total_switches(),
            APlan::Sharded(plan) => plan.total_switches(),
            APlan::Streamed(plan) => plan.total_switches(),
        }
    }

    fn replay_hits(&self) -> u64 {
        match self {
            APlan::Single(plan) => plan.replay_hits(),
            APlan::Sharded(plan) => plan.replay_hits(),
            APlan::Streamed(plan) => plan.replay_hits(),
        }
    }

    fn replay_misses(&self) -> u64 {
        match self {
            APlan::Single(plan) => plan.replay_misses(),
            APlan::Sharded(plan) => plan.replay_misses(),
            APlan::Streamed(plan) => plan.replay_misses(),
        }
    }

    fn memory_bytes(&self) -> u64 {
        match self {
            APlan::Single(plan) => plan.memory_bytes(),
            APlan::Sharded(plan) => plan.memory_bytes(),
            APlan::Streamed(plan) => plan.memory_bytes(),
        }
    }

    fn scratch_stats(&self) -> ArenaStats {
        match self {
            APlan::Single(plan) => plan.scratch_stats(),
            APlan::Sharded(plan) => plan.scratch_stats(),
            APlan::Streamed(plan) => plan.scratch_stats(),
        }
    }
}

/// A prepared per-graph inference plan: everything that is a function of
/// the graph and the model — the normalized adjacency, the layer weights,
/// and the frozen `A`-side tuning state (one [`TunedPlan`], or one per
/// column shard under a sharded [`ShardPolicy`]) — none of what is a
/// function of a request. Produced by [`GcnRunner::prepare`]; executed per
/// request by [`GcnPlan::run`]. Shareable: `&GcnPlan` may serve concurrent
/// requests (see the plan concurrency contract in `DESIGN.md` §6/§7).
#[derive(Debug, Clone)]
pub struct GcnPlan {
    config: AccelConfig,
    a_norm_csc: Csc,
    weights: Vec<DenseMatrix>,
    a_plan: APlan,
    /// `Some(reason)` when a failing sharded prepare degraded to this
    /// unsharded plan (see [`GcnPlan::degraded`]).
    degraded: Option<String>,
    /// The cost model's resolution when the plan was prepared under
    /// [`StrategyPolicy::Auto`] (see [`GcnPlan::auto_decision`]).
    auto: Option<AutoDecision>,
    /// Scratch pool shared into every per-layer `X × W` engine (those are
    /// transient, so without a plan-owned pool each layer of each request
    /// would re-grow one). The consumed `XW` intermediate is recycled here
    /// too. Excluded from [`memory_bytes`](GcnPlan::memory_bytes):
    /// transient scratch bounded by the worker count, observable via
    /// [`scratch_stats`](GcnPlan::scratch_stats).
    xw_arena: Arc<ScratchArena>,
}

impl GcnPlan {
    /// The configuration the plan was prepared under. For a plan prepared
    /// under [`StrategyPolicy::Auto`] this is the *resolved* configuration
    /// (the cost model's winning knobs, strategy set back to `Manual`) —
    /// per-request execution replays exactly what the warm-up ran.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The cost model's resolution when the plan was prepared under
    /// [`StrategyPolicy::Auto`]: the chosen design/shards/replay, the
    /// predicted cycles/wall, and the per-layer forecast. `None` for a
    /// `Manual` prepare. When [`degraded`](GcnPlan::degraded) is also set,
    /// the decision carries
    /// [`rescored_unsharded`](AutoDecision::rescored_unsharded): it was
    /// re-scored against the unsharded candidate set after the sharded
    /// prepare failed.
    pub fn auto_decision(&self) -> Option<&AutoDecision> {
        self.auto.as_ref()
    }

    /// The normalized adjacency the plan serves (CSC).
    pub fn graph(&self) -> &Csc {
        &self.a_norm_csc
    }

    /// The model's layer weights.
    pub fn weights(&self) -> &[DenseMatrix] {
        &self.weights
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.weights.len()
    }

    /// The frozen single-device tuned plan for `A`, when the plan was
    /// prepared unsharded (`None` under a sharded policy — see
    /// [`sharded_plan`](GcnPlan::sharded_plan)).
    pub fn plan_a(&self) -> Option<&TunedPlan> {
        match &self.a_plan {
            APlan::Single(plan) => Some(plan),
            _ => None,
        }
    }

    /// The frozen per-shard plans for `A`, when the plan was prepared
    /// under a sharded policy.
    pub fn sharded_plan(&self) -> Option<&ShardedPlan> {
        match &self.a_plan {
            APlan::Sharded(plan) => Some(plan),
            _ => None,
        }
    }

    /// The frozen out-of-core plan for `A`, when the plan was prepared
    /// against a configured store.
    pub fn streamed_plan(&self) -> Option<&StreamedPlan> {
        match &self.a_plan {
            APlan::Streamed(plan) => Some(plan),
            _ => None,
        }
    }

    /// The most recent request's streaming statistics (resident peak,
    /// I/O bytes, prefetch overlap), when this plan streams `A` from a
    /// store. `None` for resident plans.
    pub fn stream_stats(&self) -> Option<StreamStats> {
        match &self.a_plan {
            APlan::Streamed(plan) => Some(plan.stream_stats()),
            _ => None,
        }
    }

    /// Why the plan was degraded: `Some(reason)` when the configured
    /// sharded prepare failed and the runner fell back to this unsharded
    /// plan (outputs stay bit-identical; only the simulated device count
    /// changes). `None` for a plan prepared exactly as configured.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Number of `A`-side shard devices (1 when unsharded).
    pub fn shard_count(&self) -> usize {
        match &self.a_plan {
            APlan::Single(_) => 1,
            APlan::Sharded(plan) => plan.shard_count(),
            APlan::Streamed(plan) => plan.shard_count(),
        }
    }

    /// Auto-tuning rounds the warm-up spent before freezing (summed over
    /// shards when sharded).
    pub fn tuning_rounds(&self) -> usize {
        self.a_plan.tuning_rounds()
    }

    /// Rows exchanged by remote switching during the warm-up (summed over
    /// shards when sharded).
    pub fn total_switches(&self) -> u64 {
        self.a_plan.total_switches()
    }

    /// Steady-state rounds served from the shared replay cache(s).
    pub fn replay_hits(&self) -> u64 {
        self.a_plan.replay_hits()
    }

    /// Steady-state rounds that had to be simulated (and were memoized).
    pub fn replay_misses(&self) -> u64 {
        self.a_plan.replay_misses()
    }

    /// Estimated heap bytes this plan keeps resident while cached: the
    /// normalized adjacency (CSC arrays), the layer weights, and the
    /// frozen `A`-side tuning state (row map(s) + replay cache(s), plus
    /// per-shard operand slices when sharded). The serving front-end
    /// evicts against a budget over these estimates — they track the
    /// dominant arrays, not allocator-exact overheads, which is all a
    /// relative LRU budget needs.
    pub fn memory_bytes(&self) -> u64 {
        let weights: u64 = self.weights.iter().map(|w| w.heap_bytes() as u64).sum();
        self.a_norm_csc.heap_bytes() as u64 + weights + self.a_plan.memory_bytes()
    }

    /// Allocation/reuse counters over every scratch pool the plan owns.
    /// `xw_arena` is the `A`-side plan's own pool (unified at prepare), so
    /// the `A`-plan view already covers it — plus, when sharded, each
    /// shard member's pool. `created` stable across warm requests ⇔
    /// steady-state inference is allocation-free on the accumulate path.
    pub fn scratch_stats(&self) -> ArenaStats {
        self.a_plan.scratch_stats()
    }

    /// Returns a finished request's output buffer to the plan's pool. A
    /// serving loop that hands each response back once consumed makes the
    /// warm steady state *exactly* allocation-free; without it, the one
    /// output matrix the caller keeps is the only fresh allocation per
    /// request.
    pub fn recycle_output(&self, output: DenseMatrix) {
        self.xw_arena.recycle_f32(output.into_vec());
    }

    /// True when `input` carries the same graph (by structure fingerprint)
    /// and the same weights this plan was prepared for.
    pub fn matches(&self, input: &GcnInput) -> bool {
        let graph_matches = match &self.a_plan {
            APlan::Single(plan) => plan.matches(&input.a_norm_csc),
            APlan::Sharded(plan) => plan.matches(&input.a_norm_csc),
            APlan::Streamed(plan) => plan.matches(&input.a_norm_csc),
        };
        graph_matches && self.weights == input.weights
    }

    /// Executes one feature-matrix request against the shared plan: same
    /// schedule as [`GcnRunner::run`], but `A × (XW)` executes through a
    /// session on the frozen plan(s) — no tuning rounds, replay cache(s)
    /// warm. `X × W` still runs fresh per layer (X is request state), on
    /// one device or across `combination_shards` devices. Output features
    /// are bit-identical to a cold run on the same input, sharded on
    /// either axis or not (the numerics never depend on the row map, and
    /// the sharded merges are pinned to the unsharded addition order).
    ///
    /// # Errors
    ///
    /// Propagates shape errors when `x1` does not match the graph/weights.
    pub fn run(&self, x1: &Csr) -> Result<GcnRunOutcome, AccelError> {
        // The plan owns the adjacency the inner plan was built from, so
        // the session can skip the per-layer O(nnz) fingerprint re-hash.
        let mut session: Box<dyn SpmmEngine + '_> = match &self.a_plan {
            APlan::Single(plan) => Box::new(plan.session_trusted()),
            APlan::Sharded(plan) => Box::new(plan.session_trusted()),
            // Streamed sessions re-verify against the store's checksummed
            // column pointer instead of a fingerprint re-hash.
            APlan::Streamed(plan) => Box::new(plan.session()),
        };
        let mut outcome = run_layers(
            &self.config,
            &self.a_norm_csc,
            &self.weights,
            x1,
            session.as_mut(),
            Some(&self.xw_arena),
        )?;
        drop(session);
        outcome.stream = self.stream_stats();
        Ok(outcome)
    }

    /// [`run`](GcnPlan::run) for a full [`GcnInput`], first validating it
    /// is the graph/model this plan was prepared for.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the input's graph or
    /// weights differ from the prepared ones.
    pub fn run_input(&self, input: &GcnInput) -> Result<GcnRunOutcome, AccelError> {
        if !self.matches(input) {
            return Err(AccelError::InvalidConfig(
                "input graph/weights do not match the prepared plan".into(),
            ));
        }
        self.run(&input.x1)
    }
}

/// Cross-checks an accelerator outcome against the software reference.
///
/// Returns the maximum absolute difference on success.
///
/// # Errors
///
/// Returns [`AccelError::VerificationFailed`] when the difference exceeds
/// `tol`, or a shape error if the reference pass fails.
pub fn verify_against_reference(
    input: &GcnInput,
    outcome: &GcnRunOutcome,
    tol: f32,
) -> Result<f32, AccelError> {
    let reference = GcnModel::with_layers(input.layers())
        .forward(input)
        .map_err(AccelError::Shape)?;
    let diff = outcome
        .output
        .max_abs_diff(&reference.output)
        .map_err(AccelError::Shape)?;
    if diff > tol {
        return Err(AccelError::VerificationFailed {
            label: "gcn_output".into(),
            max_diff: format!("{diff}"),
        });
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use awb_datasets::{DatasetSpec, GeneratedDataset};

    fn small_input(nodes: usize, seed: u64) -> GcnInput {
        let data =
            GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(nodes), seed).unwrap();
        GcnInput::from_dataset(&data).unwrap()
    }

    fn config(n_pes: usize) -> AccelConfig {
        AccelConfig::builder().n_pes(n_pes).build().unwrap()
    }

    #[test]
    fn output_matches_software_reference() {
        let input = small_input(192, 3);
        for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
            let outcome = GcnRunner::new(design.apply(config(32)))
                .run(&input)
                .unwrap();
            let diff = verify_against_reference(&input, &outcome, 1e-3).unwrap();
            assert!(diff <= 1e-3, "{design:?}: diff {diff}");
        }
    }

    #[test]
    fn stats_structure() {
        let input = small_input(128, 4);
        let outcome = GcnRunner::new(config(16)).run(&input).unwrap();
        assert_eq!(outcome.stats.layers.len(), 2);
        assert_eq!(outcome.stats.spmms().len(), 4);
        assert_eq!(outcome.stats.spmms()[0].label, "L1:X*W");
        assert_eq!(outcome.stats.spmms()[3].label, "L2:A*(XW)");
        assert!(outcome.stats.total_cycles() > 0);
        assert!(outcome.latency_ms(275.0) > 0.0);
    }

    #[test]
    fn layer2_reuses_tuned_a_map() {
        let input = small_input(256, 5);
        let outcome = GcnRunner::new(Design::LocalPlusRemote { hop: 1 }.apply(config(32)))
            .run(&input)
            .unwrap();
        // Tuning happened in layer 1's A*(XW); by layer 2 it is frozen.
        let l1_tuning = outcome.stats.layers[0].a_xw.tuning_rounds();
        let l2_tuning = outcome.stats.layers[1].a_xw.tuning_rounds();
        assert!(l1_tuning > 0, "layer 1 should tune");
        assert_eq!(l2_tuning, 0, "layer 2 must reuse the frozen map");
    }

    #[test]
    fn prepare_matches_cold_run_and_freezes_plan() {
        let input = small_input(192, 12);
        let runner = GcnRunner::new(Design::LocalPlusRemote { hop: 1 }.apply(config(32)));
        let cold = runner.run(&input).unwrap();
        let (plan, warmup) = runner.prepare(&input).unwrap();
        // prepare's warm-up is the cold run, bit for bit.
        assert_eq!(warmup.stats, cold.stats);
        assert_eq!(warmup.output, cold.output);
        assert!(plan.matches(&input));
        assert!(plan.tuning_rounds() > 0);
        assert!(plan.plan_a().is_some(), "unsharded plan is single-device");
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.layers(), 2);
    }

    #[test]
    fn plan_requests_are_bit_identical_and_tune_free() {
        let input = small_input(192, 13);
        let runner = GcnRunner::new(Design::LocalPlusRemote { hop: 1 }.apply(config(32)));
        let (plan, warmup) = runner.prepare(&input).unwrap();
        let served = plan.run_input(&input).unwrap();
        // Outputs are bit-identical to the cold run (numerics never depend
        // on the row map or on replay)…
        assert_eq!(served.output, warmup.output);
        assert_eq!(served.x_density, warmup.x_density);
        // …and the served request never re-tunes.
        for layer in &served.stats.layers {
            assert_eq!(layer.a_xw.tuning_rounds(), 0);
        }
        // A second request keeps hitting the shared cache.
        let hits_before = plan.replay_hits();
        plan.run_input(&input).unwrap();
        assert!(plan.replay_hits() > hits_before);
    }

    #[test]
    fn plan_rejects_foreign_input() {
        let input = small_input(128, 14);
        let other = small_input(128, 15); // different graph, same shapes
        let (plan, _) = GcnRunner::new(config(16)).prepare(&input).unwrap();
        assert!(!plan.matches(&other));
        assert!(matches!(
            plan.run_input(&other),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn x2_density_recorded() {
        let input = small_input(128, 6);
        let outcome = GcnRunner::new(config(16)).run(&input).unwrap();
        assert_eq!(outcome.x_density.len(), 2);
        assert!(outcome.x_density[0] < 0.2, "X1 is sparse");
        assert!(outcome.x_density[1] > 0.3, "X2 is ReLU-dense");
    }

    #[test]
    fn pipelining_reduces_or_preserves_cycles() {
        let input = small_input(128, 7);
        let piped = GcnRunner::new(config(16)).run(&input).unwrap();
        let mut cfg = config(16);
        cfg.pipeline_spmms = false;
        let seq = GcnRunner::new(cfg).run(&input).unwrap();
        assert!(piped.stats.total_cycles() <= seq.stats.total_cycles());
        for layer in &piped.stats.layers {
            assert!(layer.pipelined_cycles <= layer.sequential_cycles());
            // Pipelining can never beat either stage alone.
            assert!(
                layer.pipelined_cycles >= layer.xw.total_cycles().max(layer.a_xw.total_cycles())
            );
        }
    }

    #[test]
    fn rebalanced_run_is_faster_on_skewed_graph() {
        // Nell-like clustering at small scale.
        let data = GeneratedDataset::generate(&DatasetSpec::nell().with_nodes(512), 8).unwrap();
        let input = GcnInput::from_dataset(&data).unwrap();
        let base = GcnRunner::new(Design::Baseline.apply(config(64)))
            .run(&input)
            .unwrap();
        let tuned = GcnRunner::new(Design::LocalPlusRemote { hop: 2 }.apply(config(64)))
            .run(&input)
            .unwrap();
        assert!(
            tuned.stats.total_cycles() < base.stats.total_cycles(),
            "base {} tuned {}",
            base.stats.total_cycles(),
            tuned.stats.total_cycles()
        );
        assert!(tuned.stats.avg_utilization() > base.stats.avg_utilization());
    }

    #[test]
    fn sharded_runs_are_bit_identical_to_unsharded() {
        use crate::config::ShardPolicy;
        let input = small_input(192, 16);
        let base = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        let reference = GcnRunner::new(base.clone()).run(&input).unwrap();
        for shards in [1, 2, 4] {
            let mut cfg = base.clone();
            cfg.shards = ShardPolicy::Fixed(shards);
            let runner = GcnRunner::new(cfg);
            let cold = runner.run(&input).unwrap();
            assert_eq!(cold.output, reference.output, "{shards} shards, cold");
            assert_eq!(cold.x_density, reference.x_density);
            // Prepared plan requests: bit-identical too, and tune-free.
            let (plan, warmup) = runner.prepare(&input).unwrap();
            assert_eq!(warmup.output, reference.output);
            assert_eq!(plan.shard_count(), shards);
            // Any Fixed policy (even Fixed(1)) takes the sharded path.
            assert!(plan.plan_a().is_none());
            assert!(plan.sharded_plan().is_some());
            assert!(plan.matches(&input));
            let served = plan.run_input(&input).unwrap();
            assert_eq!(served.output, reference.output, "{shards} shards, warm");
            for layer in &served.stats.layers {
                assert_eq!(layer.a_xw.tuning_rounds(), 0);
            }
        }
    }

    #[test]
    fn combination_sharded_runs_are_bit_identical_to_unsharded() {
        use crate::config::ShardPolicy;
        let input = small_input(192, 18);
        let base = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        let reference = GcnRunner::new(base.clone()).run(&input).unwrap();
        for xw_shards in [1, 2, 4] {
            let mut cfg = base.clone();
            cfg.combination_shards = ShardPolicy::Fixed(xw_shards);
            let runner = GcnRunner::new(cfg);
            let cold = runner.run(&input).unwrap();
            assert_eq!(cold.output, reference.output, "{xw_shards} X shards, cold");
            assert_eq!(cold.x_density, reference.x_density);
            if xw_shards == 1 {
                // A 1-resolved policy dispatches to the plain engine:
                // stats (not just outputs) degenerate to the unsharded run.
                assert_eq!(cold.stats, reference.stats);
            }
            // Warm requests against the prepared plan shard X too.
            let (plan, warmup) = runner.prepare(&input).unwrap();
            assert_eq!(warmup.output, reference.output);
            let served = plan.run_input(&input).unwrap();
            assert_eq!(
                served.output, reference.output,
                "{xw_shards} X shards, warm"
            );
        }
    }

    #[test]
    fn both_shard_axes_compose_bit_identically() {
        use crate::config::ShardPolicy;
        let input = small_input(192, 19);
        let base = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        let reference = GcnRunner::new(base.clone()).run(&input).unwrap();
        let mut cfg = base;
        cfg.shards = ShardPolicy::Fixed(3);
        cfg.combination_shards = ShardPolicy::Fixed(2);
        let runner = GcnRunner::new(cfg);
        let cold = runner.run(&input).unwrap();
        assert_eq!(cold.output, reference.output);
        let (plan, warmup) = runner.prepare(&input).unwrap();
        assert_eq!(warmup.output, reference.output);
        assert_eq!(plan.shard_count(), 3);
        let served = plan.run_input(&input).unwrap();
        assert_eq!(served.output, reference.output);
        for layer in &served.stats.layers {
            assert_eq!(layer.a_xw.tuning_rounds(), 0);
            // Both phases report their own device totals.
            assert_eq!(layer.a_xw.n_pes, 3 * 16);
            assert_eq!(layer.xw.n_pes, 2 * 16);
        }
    }

    #[test]
    fn sharded_stats_report_total_pes() {
        use crate::config::ShardPolicy;
        let input = small_input(128, 17);
        let mut cfg = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        cfg.shards = ShardPolicy::Fixed(4);
        let outcome = GcnRunner::new(cfg).run(&input).unwrap();
        for layer in &outcome.stats.layers {
            // A × (XW) merges 4 shard devices; X × W stays single-device.
            assert_eq!(layer.a_xw.n_pes, 64);
            assert_eq!(layer.xw.n_pes, 16);
        }
        let util = outcome.stats.avg_utilization();
        assert!(util > 0.0 && util <= 1.0);
    }

    #[test]
    fn streamed_runs_are_bit_identical_to_resident() {
        let input = small_input(192, 21);
        let base = Design::LocalPlusRemote { hop: 1 }.apply(config(16));
        let reference = GcnRunner::new(base.clone()).run(&input).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "awb-gcnrun-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = base;
        cfg.store = Some(dir.clone());
        // A budget half the adjacency forces a genuinely out-of-core run.
        cfg.host_mem_budget = Some(input.a_norm_csc.heap_bytes() / 2);
        let runner = GcnRunner::new(cfg);
        // Cold run ingests the store on first use, then streams from it.
        let cold = runner.run(&input).unwrap();
        assert_eq!(cold.output, reference.output);
        assert_eq!(cold.x_density, reference.x_density);
        // Prepared plans stream too, bit-identically and tune-free.
        let (plan, warmup) = runner.prepare(&input).unwrap();
        assert_eq!(warmup.output, reference.output);
        assert!(plan.streamed_plan().is_some());
        assert!(plan.plan_a().is_none());
        assert!(plan.shard_count() > 1, "budget must force stream shards");
        let served = plan.run_input(&input).unwrap();
        assert_eq!(served.output, reference.output);
        for layer in &served.stats.layers {
            assert_eq!(layer.a_xw.tuning_rounds(), 0);
        }
        let stream = plan.stream_stats().expect("streamed plan reports stats");
        assert!(stream.shards > 1);
        assert!(stream.io_bytes > 0);
        assert!(
            stream.resident_peak_bytes < input.a_norm_csc.heap_bytes(),
            "peak {} should undercut the resident adjacency {}",
            stream.resident_peak_bytes,
            input.a_norm_csc.heap_bytes()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_prepare_rejects_store_holding_a_different_graph() {
        let input = small_input(128, 22);
        let other = small_input(128, 23);
        let dir = std::env::temp_dir().join(format!(
            "awb-gcnrun-foreign-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Ingest `other`'s adjacency, then point `input`'s run at it.
        awb_sparse::store::SparseStore::write(&dir, &other.a_norm_csc).unwrap();
        let mut cfg = config(16);
        cfg.store = Some(dir.clone());
        let err = GcnRunner::new(cfg).run(&input).unwrap_err();
        assert!(matches!(err, AccelError::InvalidConfig(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verification_rejects_corrupted_output() {
        let input = small_input(96, 9);
        let mut outcome = GcnRunner::new(config(16)).run(&input).unwrap();
        outcome.output.set(0, 0, 1e6);
        assert!(matches!(
            verify_against_reference(&input, &outcome, 1e-3),
            Err(AccelError::VerificationFailed { .. })
        ));
    }
}
