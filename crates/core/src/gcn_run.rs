//! Full GCN inference on the simulated accelerator.
//!
//! Runs the paper's per-layer schedule: `X × W` first (TDQ-1-class
//! workload), then `A × (XW)` (TDQ-2-class), with column-level pipelining
//! between them (Fig. 8), ReLU between layers, and — crucially — a single
//! engine instance for every SPMM that uses `A`, so the auto-tuned row map
//! converged during layer 1 is *reused* in layer 2, exactly the paper's
//! "ideal configuration is reused for the remaining iterations".

use crate::config::AccelConfig;
use crate::engine::{FastEngine, SpmmEngine};
use crate::error::AccelError;
use crate::pipeline::pipeline_two_stage;
use crate::stats::{LayerStats, RunStats};
use awb_gcn_model::{GcnInput, GcnModel};
use awb_sparse::DenseMatrix;

/// Outcome of one accelerated inference.
#[derive(Debug, Clone)]
pub struct GcnRunOutcome {
    /// Final output features.
    pub output: DenseMatrix,
    /// Cycle/utilization statistics.
    pub stats: RunStats,
    /// Densities of each layer's input feature matrix as the accelerator
    /// saw them (`x_density[0]` = X1).
    pub x_density: Vec<f64>,
}

impl GcnRunOutcome {
    /// Inference latency in milliseconds at `freq_mhz`.
    pub fn latency_ms(&self, freq_mhz: f64) -> f64 {
        self.stats.latency_ms(freq_mhz)
    }
}

/// Drives GCN inference through the simulated accelerator.
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, GcnRunner};
/// use awb_datasets::{DatasetSpec, GeneratedDataset};
/// use awb_gcn_model::GcnInput;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 5)?;
/// let input = GcnInput::from_dataset(&data)?;
/// let config = AccelConfig::builder().n_pes(32).build()?;
/// let outcome = GcnRunner::new(config).run(&input)?;
/// assert_eq!(outcome.output.shape(), (128, 7));
/// assert!(outcome.stats.avg_utilization() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GcnRunner {
    config: AccelConfig,
}

impl GcnRunner {
    /// Creates a runner with the given accelerator configuration.
    pub fn new(config: AccelConfig) -> Self {
        GcnRunner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Runs inference with the paper's activation schedule (ReLU between
    /// layers, none after the last).
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the engines.
    pub fn run(&self, input: &GcnInput) -> Result<GcnRunOutcome, AccelError> {
        let n_layers = input.layers();
        // One engine per sparse operand: A's engine persists across layers
        // so its tuned row map is reused.
        let mut engine_a = FastEngine::new(self.config.clone());
        let mut layers = Vec::with_capacity(n_layers);
        let mut x_density = Vec::with_capacity(n_layers);

        // Layer 1 input: the sparse X1 as generated.
        let mut x_csc = input.x1.to_csc();

        let mut x_dense_out: DenseMatrix = DenseMatrix::zeros(0, 0);
        for (l, w) in input.weights.iter().enumerate() {
            x_density.push(x_csc.density());
            // Stage 1: X × W (fresh engine; X differs per layer).
            let mut engine_x = FastEngine::new(self.config.clone());
            let xw = engine_x.run(&x_csc, w, &format!("L{}:X*W", l + 1))?;
            // Stage 2: A × (XW) on the persistent A engine.
            let a_xw = engine_a.run(&input.a_norm_csc, &xw.c, &format!("L{}:A*(XW)", l + 1))?;

            let mut x_next = a_xw.c;
            if l + 1 < n_layers {
                x_next.relu_in_place();
            }

            let pipelined_cycles = if self.config.pipeline_spmms {
                pipeline_two_stage(&xw.stats.round_cycles(), &a_xw.stats.round_cycles())
            } else {
                xw.stats.total_cycles() + a_xw.stats.total_cycles()
            };
            layers.push(LayerStats {
                xw: xw.stats,
                a_xw: a_xw.stats,
                pipelined_cycles,
            });

            if l + 1 < n_layers {
                x_csc = x_next.to_coo(0.0).to_csc();
            }
            x_dense_out = x_next;
        }

        Ok(GcnRunOutcome {
            output: x_dense_out,
            stats: RunStats {
                layers,
                n_pes: self.config.n_pes,
            },
            x_density,
        })
    }
}

/// Cross-checks an accelerator outcome against the software reference.
///
/// Returns the maximum absolute difference on success.
///
/// # Errors
///
/// Returns [`AccelError::VerificationFailed`] when the difference exceeds
/// `tol`, or a shape error if the reference pass fails.
pub fn verify_against_reference(
    input: &GcnInput,
    outcome: &GcnRunOutcome,
    tol: f32,
) -> Result<f32, AccelError> {
    let reference = GcnModel::with_layers(input.layers())
        .forward(input)
        .map_err(AccelError::Shape)?;
    let diff = outcome
        .output
        .max_abs_diff(&reference.output)
        .map_err(AccelError::Shape)?;
    if diff > tol {
        return Err(AccelError::VerificationFailed {
            label: "gcn_output".into(),
            max_diff: format!("{diff}"),
        });
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use awb_datasets::{DatasetSpec, GeneratedDataset};

    fn small_input(nodes: usize, seed: u64) -> GcnInput {
        let data =
            GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(nodes), seed).unwrap();
        GcnInput::from_dataset(&data).unwrap()
    }

    fn config(n_pes: usize) -> AccelConfig {
        AccelConfig::builder().n_pes(n_pes).build().unwrap()
    }

    #[test]
    fn output_matches_software_reference() {
        let input = small_input(192, 3);
        for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
            let outcome = GcnRunner::new(design.apply(config(32)))
                .run(&input)
                .unwrap();
            let diff = verify_against_reference(&input, &outcome, 1e-3).unwrap();
            assert!(diff <= 1e-3, "{design:?}: diff {diff}");
        }
    }

    #[test]
    fn stats_structure() {
        let input = small_input(128, 4);
        let outcome = GcnRunner::new(config(16)).run(&input).unwrap();
        assert_eq!(outcome.stats.layers.len(), 2);
        assert_eq!(outcome.stats.spmms().len(), 4);
        assert_eq!(outcome.stats.spmms()[0].label, "L1:X*W");
        assert_eq!(outcome.stats.spmms()[3].label, "L2:A*(XW)");
        assert!(outcome.stats.total_cycles() > 0);
        assert!(outcome.latency_ms(275.0) > 0.0);
    }

    #[test]
    fn layer2_reuses_tuned_a_map() {
        let input = small_input(256, 5);
        let outcome = GcnRunner::new(Design::LocalPlusRemote { hop: 1 }.apply(config(32)))
            .run(&input)
            .unwrap();
        // Tuning happened in layer 1's A*(XW); by layer 2 it is frozen.
        let l1_tuning = outcome.stats.layers[0].a_xw.tuning_rounds();
        let l2_tuning = outcome.stats.layers[1].a_xw.tuning_rounds();
        assert!(l1_tuning > 0, "layer 1 should tune");
        assert_eq!(l2_tuning, 0, "layer 2 must reuse the frozen map");
    }

    #[test]
    fn x2_density_recorded() {
        let input = small_input(128, 6);
        let outcome = GcnRunner::new(config(16)).run(&input).unwrap();
        assert_eq!(outcome.x_density.len(), 2);
        assert!(outcome.x_density[0] < 0.2, "X1 is sparse");
        assert!(outcome.x_density[1] > 0.3, "X2 is ReLU-dense");
    }

    #[test]
    fn pipelining_reduces_or_preserves_cycles() {
        let input = small_input(128, 7);
        let piped = GcnRunner::new(config(16)).run(&input).unwrap();
        let mut cfg = config(16);
        cfg.pipeline_spmms = false;
        let seq = GcnRunner::new(cfg).run(&input).unwrap();
        assert!(piped.stats.total_cycles() <= seq.stats.total_cycles());
        for layer in &piped.stats.layers {
            assert!(layer.pipelined_cycles <= layer.sequential_cycles());
            // Pipelining can never beat either stage alone.
            assert!(
                layer.pipelined_cycles >= layer.xw.total_cycles().max(layer.a_xw.total_cycles())
            );
        }
    }

    #[test]
    fn rebalanced_run_is_faster_on_skewed_graph() {
        // Nell-like clustering at small scale.
        let data = GeneratedDataset::generate(&DatasetSpec::nell().with_nodes(512), 8).unwrap();
        let input = GcnInput::from_dataset(&data).unwrap();
        let base = GcnRunner::new(Design::Baseline.apply(config(64)))
            .run(&input)
            .unwrap();
        let tuned = GcnRunner::new(Design::LocalPlusRemote { hop: 2 }.apply(config(64)))
            .run(&input)
            .unwrap();
        assert!(
            tuned.stats.total_cycles() < base.stats.total_cycles(),
            "base {} tuned {}",
            base.stats.total_cycles(),
            tuned.stats.total_cycles()
        );
        assert!(tuned.stats.avg_utilization() > base.stats.avg_utilization());
    }

    #[test]
    fn verification_rejects_corrupted_output() {
        let input = small_input(96, 9);
        let mut outcome = GcnRunner::new(config(16)).run(&input).unwrap();
        outcome.output.set(0, 0, 1e6);
        assert!(matches!(
            verify_against_reference(&input, &outcome, 1e-3),
            Err(AccelError::VerificationFailed { .. })
        ));
    }
}
