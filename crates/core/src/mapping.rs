use crate::config::MappingKind;

/// The row→PE assignment, i.e. the state the Shuffling Switches apply.
///
/// Starts as a static equal partition (paper Fig. 6) and is mutated by
/// remote switching, which exchanges row ownership between a hotspot and a
/// coldspot PE. The map always stays a *partition*: every row is owned by
/// exactly one PE.
///
/// # Example
///
/// ```
/// use awb_accel::{MappingKind, RowMap};
///
/// let mut map = RowMap::new(8, 4, MappingKind::Block);
/// assert_eq!(map.pe_of(0), 0);
/// assert_eq!(map.pe_of(7), 3);
/// map.exchange(0, 3, &[0], &[7]);
/// assert_eq!(map.pe_of(0), 3);
/// assert_eq!(map.pe_of(7), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMap {
    n_rows: usize,
    n_pes: usize,
    pe_of_row: Vec<u32>,
    rows_of_pe: Vec<Vec<u32>>,
    total_exchanged: u64,
}

impl RowMap {
    /// Builds the initial static partition.
    ///
    /// # Panics
    ///
    /// Panics if `n_pes == 0`.
    pub fn new(n_rows: usize, n_pes: usize, kind: MappingKind) -> Self {
        assert!(n_pes > 0, "need at least one PE");
        let mut pe_of_row = vec![0u32; n_rows];
        let mut rows_of_pe: Vec<Vec<u32>> = vec![Vec::new(); n_pes];
        for (row, slot) in pe_of_row.iter_mut().enumerate() {
            let pe = match kind {
                MappingKind::Block => ((row as u64 * n_pes as u64) / n_rows.max(1) as u64) as u32,
                MappingKind::Cyclic => (row % n_pes) as u32,
            };
            *slot = pe;
            rows_of_pe[pe as usize].push(row as u32);
        }
        RowMap {
            n_rows,
            n_pes,
            pe_of_row,
            rows_of_pe,
            total_exchanged: 0,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Owner PE of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn pe_of(&self, row: usize) -> u32 {
        self.pe_of_row[row]
    }

    /// Raw owner array (row-indexed) — the hot path of the fast engine.
    #[inline]
    pub fn pe_of_row(&self) -> &[u32] {
        &self.pe_of_row
    }

    /// Rows currently owned by `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn rows_of(&self, pe: usize) -> &[u32] {
        &self.rows_of_pe[pe]
    }

    /// Total rows moved by remote switching so far.
    pub fn total_exchanged(&self) -> u64 {
        self.total_exchanged
    }

    /// Exchanges ownership: `from_hot` rows (owned by `hot`) move to
    /// `cold`, `from_cold` rows (owned by `cold`) move to `hot`.
    ///
    /// # Panics
    ///
    /// Panics if any listed row is not owned by the claimed PE — remote
    /// switching must never corrupt the partition.
    pub fn exchange(&mut self, hot: u32, cold: u32, from_hot: &[u32], from_cold: &[u32]) {
        for &row in from_hot {
            assert_eq!(
                self.pe_of_row[row as usize], hot,
                "row {row} is not owned by hotspot PE {hot}"
            );
        }
        for &row in from_cold {
            assert_eq!(
                self.pe_of_row[row as usize], cold,
                "row {row} is not owned by coldspot PE {cold}"
            );
        }
        self.move_rows(hot, cold, from_hot);
        self.move_rows(cold, hot, from_cold);
        self.total_exchanged += (from_hot.len() + from_cold.len()) as u64;
    }

    fn move_rows(&mut self, from: u32, to: u32, rows: &[u32]) {
        if rows.is_empty() {
            return;
        }
        for &row in rows {
            self.pe_of_row[row as usize] = to;
        }
        let from_list = &mut self.rows_of_pe[from as usize];
        from_list.retain(|r| !rows.contains(r));
        self.rows_of_pe[to as usize].extend_from_slice(rows);
    }

    /// Debug invariant: every row owned by exactly one PE and the per-PE
    /// lists agree with the row-indexed array.
    pub fn is_consistent(&self) -> bool {
        let mut seen = vec![false; self.n_rows];
        for (pe, rows) in self.rows_of_pe.iter().enumerate() {
            for &r in rows {
                if seen[r as usize] || self.pe_of_row[r as usize] != pe as u32 {
                    return false;
                }
                seen[r as usize] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_contiguous() {
        let map = RowMap::new(16, 8, MappingKind::Block);
        // Paper Fig. 6: each two consecutive rows on one PE.
        for row in 0..16 {
            assert_eq!(map.pe_of(row), (row / 2) as u32);
        }
        assert!(map.is_consistent());
    }

    #[test]
    fn cyclic_mapping_strided() {
        let map = RowMap::new(16, 8, MappingKind::Cyclic);
        for row in 0..16 {
            assert_eq!(map.pe_of(row), (row % 8) as u32);
        }
        assert!(map.is_consistent());
    }

    #[test]
    fn block_mapping_uneven_rows() {
        let map = RowMap::new(10, 4, MappingKind::Block);
        // Sizes differ by at most 1 between PEs for block partition.
        let sizes: Vec<usize> = (0..4).map(|p| map.rows_of(p).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
    }

    #[test]
    fn fewer_rows_than_pes() {
        let map = RowMap::new(3, 8, MappingKind::Block);
        assert!(map.is_consistent());
        let owned: usize = (0..8).map(|p| map.rows_of(p).len()).sum();
        assert_eq!(owned, 3);
    }

    #[test]
    fn exchange_moves_both_directions() {
        let mut map = RowMap::new(8, 2, MappingKind::Block);
        map.exchange(0, 1, &[0, 1], &[7]);
        assert_eq!(map.pe_of(0), 1);
        assert_eq!(map.pe_of(1), 1);
        assert_eq!(map.pe_of(7), 0);
        assert_eq!(map.rows_of(0).len(), 3);
        assert_eq!(map.rows_of(1).len(), 5);
        assert_eq!(map.total_exchanged(), 3);
        assert!(map.is_consistent());
    }

    #[test]
    fn exchange_empty_lists_is_noop() {
        let mut map = RowMap::new(4, 2, MappingKind::Block);
        let before = map.clone();
        map.exchange(0, 1, &[], &[]);
        assert_eq!(map.pe_of_row(), before.pe_of_row());
    }

    #[test]
    #[should_panic(expected = "not owned by hotspot")]
    fn exchange_wrong_owner_panics() {
        let mut map = RowMap::new(8, 2, MappingKind::Block);
        map.exchange(0, 1, &[7], &[]); // row 7 belongs to PE 1
    }

    #[test]
    fn repeated_exchanges_stay_consistent() {
        let mut map = RowMap::new(64, 8, MappingKind::Block);
        for i in 0..8u32 {
            let hot = i % 8;
            let cold = (i + 3) % 8;
            if hot == cold {
                continue;
            }
            let from_hot: Vec<u32> = map.rows_of(hot as usize).iter().take(2).copied().collect();
            let from_cold: Vec<u32> = map.rows_of(cold as usize).iter().take(1).copied().collect();
            map.exchange(hot, cold, &from_hot, &from_cold);
            assert!(map.is_consistent(), "after exchange {i}");
        }
    }
}
