use crate::error::AccelError;
use awb_hw::{MemoryModel, BYTES_PER_NNZ};
use awb_sparse::partition::ColumnPartitioner;

/// How matrix rows are initially partitioned across PEs (paper Fig. 6 uses
/// contiguous blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingKind {
    /// Row `r` belongs to PE `r * n_pes / n_rows` — contiguous blocks, the
    /// paper's layout. Clustered hub rows land on the same PE, which is
    /// what makes *remote* imbalance visible.
    #[default]
    Block,
    /// Row `r` belongs to PE `r % n_pes` — an ablation that spreads
    /// adjacent rows across PEs.
    Cyclic,
}

/// Which rows the Shuffling LUT exchanges during remote switching
/// (paper §4.2 leaves the selection unspecified; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SltPolicy {
    /// Exchange the next `N_i` rows of each PE in index order —
    /// hardware-cheap, no per-row state.
    #[default]
    Sequential,
    /// Exchange the hotspot's heaviest rows against the coldspot's lightest
    /// ones, using per-row task counters from the previous round — the
    /// idealized upper bound.
    DegreeAware,
}

/// How a Read-after-Write hazard interacts with the PE's issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StallMode {
    /// The hazard job parks in the stall buffer while younger jobs issue
    /// (the paper's design: "we buffer that job and delay for a few
    /// cycles"). No throughput loss unless the queue is otherwise empty.
    #[default]
    Park,
    /// Head-of-line blocking: the PE stalls until the hazard resolves
    /// (ablation).
    Block,
}

/// How a sparse operand is split across devices (column sharding; see
/// `awb_sparse::partition` and `DESIGN.md` §7/§8). The paper's accelerator
/// is a single device; sharding opens operands that do not fit one SPMMeM
/// by running one rebalanced PE array per column shard and merging partial
/// products. [`AccelConfig`] carries one policy per phase: `shards` for
/// the aggregation operand `A` and `combination_shards` for the per-layer
/// feature matrix `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPolicy {
    /// Unsharded single-device execution — the paper's setup (default).
    #[default]
    Single,
    /// Exactly this many nnz-balanced column shards (clamped to the
    /// operand's column count; must be ≥ 1).
    Fixed(usize),
    /// As few shards as possible such that each shard's non-zeros fit the
    /// on-chip budget of [`AccelConfig::memory`] — the memory-derived
    /// policy (an unbounded memory model yields one shard). This is a
    /// *device* budget: it sizes shards to the simulated accelerator's
    /// SPMMeM capacity. The orthogonal *host* budget
    /// ([`AccelConfig::host_mem_budget`]) instead bounds how many bytes
    /// of sparse slices the simulating host keeps resident when streaming
    /// from an on-disk [`store`](AccelConfig::store).
    MemoryBudget,
}

impl ShardPolicy {
    /// Short human-readable label (`"unsharded"`, `"4 shards"`, `"mem"`).
    pub fn label(&self) -> String {
        match self {
            ShardPolicy::Single => "unsharded".into(),
            ShardPolicy::Fixed(n) => format!("{n} shards"),
            ShardPolicy::MemoryBudget => "mem-budget".into(),
        }
    }
}

/// Who picks the execution strategy (design point, shard counts, replay):
/// the caller, or the calibrated cost model in [`cost`](crate::cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StrategyPolicy {
    /// Execute exactly the knobs set on the configuration (default).
    #[default]
    Manual,
    /// At [`GcnRunner::prepare`](crate::GcnRunner::prepare), profile the
    /// input's sparsity structure, score the candidate configurations with
    /// the calibrated cost model, and execute the predicted-fastest one.
    /// The design/shard/replay fields on the configuration then serve only
    /// as the scoring base; the resolved choice is recorded in
    /// [`AutoDecision`](crate::cost::AutoDecision) and outputs stay
    /// bit-identical to hand-specifying the same knobs under `Manual`.
    Auto,
}

impl StrategyPolicy {
    /// Short human-readable label (`"manual"` / `"auto"`).
    pub fn label(&self) -> &'static str {
        match self {
            StrategyPolicy::Manual => "manual",
            StrategyPolicy::Auto => "auto",
        }
    }
}

/// Named design points evaluated in the paper (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// §3 baseline: static equal partition, no rebalancing.
    Baseline,
    /// Dynamic local sharing only, with the given hop distance
    /// (paper Designs A/B are 1-hop/2-hop; Nell uses 2/3-hop).
    LocalSharing {
        /// Sharing radius in PEs.
        hop: usize,
    },
    /// Local sharing plus dynamic remote switching (paper Designs C/D).
    LocalPlusRemote {
        /// Sharing radius in PEs.
        hop: usize,
    },
    /// The EIE-derived reference of Table 3: the baseline datapath without
    /// rebalancing, clocked at 285 MHz.
    EieLike,
}

impl Design {
    /// Short label as used in the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Design::Baseline => "Base".into(),
            Design::LocalSharing { hop } => format!("LS{hop}"),
            Design::LocalPlusRemote { hop } => format!("LS{hop}+RS"),
            Design::EieLike => "EIE-like".into(),
        }
    }

    /// The paper's five-way comparison for a dataset: Base, two local-only
    /// hops, and the same two hops with remote switching. Nell uses 2/3-hop
    /// instead of 1/2-hop (§5.2).
    pub fn paper_lineup(small_hop: usize) -> [Design; 5] {
        [
            Design::Baseline,
            Design::LocalSharing { hop: small_hop },
            Design::LocalSharing { hop: small_hop + 1 },
            Design::LocalPlusRemote { hop: small_hop },
            Design::LocalPlusRemote { hop: small_hop + 1 },
        ]
    }

    /// Applies this design point to a base configuration.
    pub fn apply(&self, mut config: AccelConfig) -> AccelConfig {
        match *self {
            Design::Baseline => {
                config.local_hop = 0;
                config.remote_switching = false;
            }
            Design::LocalSharing { hop } => {
                config.local_hop = hop;
                config.remote_switching = false;
            }
            Design::LocalPlusRemote { hop } => {
                config.local_hop = hop;
                config.remote_switching = true;
            }
            Design::EieLike => {
                config.local_hop = 0;
                config.remote_switching = false;
                config.queues_per_pe = 1;
                config.freq_mhz = 285.0;
            }
        }
        config
    }
}

/// Full accelerator configuration.
///
/// Construct via [`AccelConfig::builder`]; defaults follow the paper's
/// evaluation setup (1024 PEs, 275 MHz, 6-cycle MAC, block mapping,
/// 2-entry hotspot tracking window).
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, Design};
///
/// # fn main() -> Result<(), awb_accel::AccelError> {
/// let base = AccelConfig::builder().n_pes(256).build()?;
/// let tuned = Design::LocalPlusRemote { hop: 2 }.apply(base);
/// assert_eq!(tuned.local_hop, 2);
/// assert!(tuned.remote_switching);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// Number of processing elements (≥ 2; the detailed TDQ-2 engine's
    /// Omega network additionally requires a power of two).
    pub n_pes: usize,
    /// Floating-point MAC pipeline depth in cycles (RaW hazard window).
    pub mac_latency: u32,
    /// Local-sharing radius in PEs (0 disables local sharing).
    pub local_hop: usize,
    /// Whether dynamic remote switching is active.
    pub remote_switching: bool,
    /// Row-selection policy of the Shuffling LUT.
    pub slt_policy: SltPolicy,
    /// How many hotspot/coldspot tuples the PE Status Monitor tracks
    /// concurrently (paper: 2).
    pub tracking_window: usize,
    /// Initial row→PE partition.
    pub mapping: MappingKind,
    /// Task queues per PE for TDQ-1 (paper Fig. 6: 4).
    pub queues_per_pe: usize,
    /// Omega-network per-port buffer depth (TDQ-2, detailed engine).
    pub net_buffer: usize,
    /// Hazard handling mode.
    pub stall_mode: StallMode,
    /// Clock frequency in MHz (for latency/energy conversion).
    pub freq_mhz: f64,
    /// Overlap consecutive SPMMs column-by-column (paper Fig. 8).
    pub pipeline_spmms: bool,
    /// Upper bound on auto-tuning rounds before the configuration freezes.
    pub max_tuning_rounds: usize,
    /// SPMMeM/DCM buffering model: bounds the distributor's delivery rate
    /// when the sparse operand does not fit on chip (paper Fig. 7).
    pub memory: MemoryModel,
    /// Host worker-thread override for the simulator's parallel phases
    /// (`None` = the [`exec`](crate::exec) default, i.e. `AWB_THREADS` /
    /// available parallelism). Purely a host wall-clock knob: results are
    /// bit-identical at any setting.
    pub threads: Option<usize>,
    /// Whether the steady-state replay cache is enabled (default `true`).
    /// Disabling forces every round through the full queue simulation —
    /// the straight-simulated reference the replay path is tested against.
    pub replay: bool,
    /// Whether engines and plans pool their steady-state scratch buffers
    /// (accumulators, simulator queues, output/intermediate matrices) in a
    /// shared [`ScratchArena`](crate::ScratchArena) instead of allocating
    /// fresh per request (default `true`). Disabling reverts to the
    /// pre-arena allocate-per-request behaviour — the A/B baseline; the
    /// numerics are bit-identical either way (buffers are zeroed at
    /// checkout).
    pub scratch_reuse: bool,
    /// How the sparse adjacency is partitioned across devices (default
    /// [`ShardPolicy::Single`], the paper's one-accelerator setup).
    pub shards: ShardPolicy,
    /// How each layer's feature matrix `X` is partitioned across devices
    /// for the combination phase `X × W` (default [`ShardPolicy::Single`]).
    /// Orthogonal to [`shards`](AccelConfig::shards): the aggregation and
    /// combination phases shard independently, and either axis alone (or
    /// both) keeps layer outputs bit-identical to the unsharded run.
    pub combination_shards: ShardPolicy,
    /// Deterministic fault-injection plan for the chaos harness (default
    /// `None` = injection off; every hook site is then a single
    /// `Option` test, so disabled injection is zero-cost). See
    /// [`FaultPlan`](crate::fault::FaultPlan).
    pub faults: Option<crate::fault::FaultPlan>,
    /// Who picks the execution strategy: the caller (default
    /// [`StrategyPolicy::Manual`]) or the calibrated per-layer cost model
    /// ([`StrategyPolicy::Auto`], resolved once per graph at prepare time).
    pub strategy: StrategyPolicy,
    /// Directory of a chunked on-disk sparse store
    /// ([`awb_sparse::store::SparseStore`]) to stream the adjacency from
    /// (default `None` = fully resident). When set, aggregation runs
    /// out-of-core through the [`StreamingEngine`](crate::StreamingEngine)
    /// under [`host_mem_budget`](AccelConfig::host_mem_budget).
    pub store: Option<std::path::PathBuf>,
    /// *Host*-memory budget in bytes for streamed sparse slices (default
    /// `None` = [`DEFAULT_HOST_MEM_BUDGET`] when a
    /// [`store`](AccelConfig::store) is configured, unused otherwise).
    /// Deliberately distinct from the *on-chip* capacity
    /// ([`memory`](AccelConfig::memory)`.on_chip_bytes`), which sizes the
    /// simulated device's SPMMeM/DCM buffers and drives
    /// [`ShardPolicy::MemoryBudget`]: one knob bounds what the simulated
    /// accelerator holds, the other bounds what the simulating host holds.
    pub host_mem_budget: Option<usize>,
}

/// Default [`AccelConfig::host_mem_budget`] when a store is configured
/// without an explicit budget: 256 MiB of resident sparse slices.
pub const DEFAULT_HOST_MEM_BUDGET: usize = 256 << 20;

impl AccelConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> AccelConfigBuilder {
        AccelConfigBuilder::default()
    }

    /// The paper's Table 3 setup: 1024 PEs at 275 MHz.
    ///
    /// # Panics
    ///
    /// Never panics (the defaults are valid).
    pub fn paper_default() -> Self {
        AccelConfig::builder()
            .build()
            .expect("paper defaults are valid")
    }

    /// Rows initially assigned to each PE under equal partition — the `R`
    /// of the paper's Eq. 5.
    pub fn rows_per_pe(&self, n_rows: usize) -> usize {
        n_rows.div_ceil(self.n_pes)
    }

    /// The column partitioner the aggregation-side policy
    /// ([`shards`](AccelConfig::shards)) resolves to
    /// ([`ShardPolicy::Single`] behaves as one shard;
    /// [`ShardPolicy::MemoryBudget`] derives its nnz budget from
    /// [`memory`](AccelConfig::memory)'s on-chip capacity).
    pub fn partitioner(&self) -> ColumnPartitioner {
        Self::resolve_partitioner(self.shards, &self.memory)
    }

    /// The column partitioner the combination-side policy
    /// ([`combination_shards`](AccelConfig::combination_shards)) resolves
    /// to — same resolution rules as [`partitioner`](AccelConfig::partitioner),
    /// applied to each layer's feature matrix `X`.
    pub fn combination_partitioner(&self) -> ColumnPartitioner {
        Self::resolve_partitioner(self.combination_shards, &self.memory)
    }

    fn resolve_partitioner(policy: ShardPolicy, memory: &MemoryModel) -> ColumnPartitioner {
        match policy {
            ShardPolicy::Single => ColumnPartitioner::by_shards(1),
            ShardPolicy::Fixed(n) => ColumnPartitioner::by_shards(n),
            ShardPolicy::MemoryBudget => {
                ColumnPartitioner::by_max_nnz((memory.on_chip_bytes / BYTES_PER_NNZ).max(1))
            }
        }
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig::paper_default()
    }
}

/// Multi-tenant serving options for
/// [`GcnService`](crate::serve::GcnService): the admission-queue depth and
/// the plan-cache memory budget. Validated by
/// [`GcnService::with_options`](crate::serve::GcnService::with_options)
/// with the same zero-rejected rules as the shard policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Maximum queued (admitted but not yet drained) requests. Admission
    /// past this depth is rejected with
    /// [`AccelError::QueueFull`](crate::AccelError::QueueFull) — explicit
    /// backpressure instead of unbounded growth. Must be ≥ 1.
    pub queue_depth: usize,
    /// Plan-cache memory budget in bytes, over
    /// [`GcnPlan::memory_bytes`](crate::GcnPlan::memory_bytes) estimates.
    /// Least-recently-used plans are evicted while the resident total
    /// exceeds the budget (the most recent plan always stays resident,
    /// even oversized — a budget smaller than one plan must not deadlock
    /// serving). `None` disables eviction. `Some(0)` is rejected: use
    /// `None` for "no budget".
    pub cache_budget_bytes: Option<u64>,
    /// Per-request deadline budget on *queue wait*: a request whose wait
    /// between admission and drain pickup exceeds this duration is shed
    /// with [`AccelError::DeadlineExceeded`](crate::AccelError::DeadlineExceeded)
    /// instead of executing stale work. `None` disables shedding;
    /// `Some(Duration::ZERO)` is rejected (it would shed everything).
    pub deadline: Option<std::time::Duration>,
}

impl ServeOptions {
    /// Checks the zero-rejected rules (queue depth ≥ 1, budget ≥ 1 byte).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError`] describing the offending field.
    pub fn validate(&self) -> Result<(), AccelError> {
        if self.queue_depth == 0 {
            return Err(AccelError::InvalidConfig(
                "serve queue depth must be >= 1 (a zero-depth queue can never admit)".into(),
            ));
        }
        if self.cache_budget_bytes == Some(0) {
            return Err(AccelError::InvalidConfig(
                "plan-cache budget must be >= 1 byte (use None for an unbounded cache)".into(),
            ));
        }
        if self.deadline == Some(std::time::Duration::ZERO) {
            return Err(AccelError::InvalidConfig(
                "deadline must be > 0 when set (a zero budget sheds every request; use None to \
                 disable shedding)"
                    .into(),
            ));
        }
        Ok(())
    }
}

impl Default for ServeOptions {
    /// Depth 64 (explicit backpressure well before memory pressure),
    /// unbounded plan cache.
    fn default() -> Self {
        ServeOptions {
            queue_depth: 64,
            cache_budget_bytes: None,
            deadline: None,
        }
    }
}

/// Bounded retry-with-backoff policy for transient
/// [`AccelError::QueueFull`](crate::AccelError::QueueFull) rejections
/// (see [`GcnService::enqueue_with_backoff`](crate::GcnService::enqueue_with_backoff)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-admission attempts after the first rejection (≥ 1).
    pub max_retries: usize,
    /// Backoff slept before the first retry; doubles per attempt, capped
    /// at 64× (must be > 0).
    pub backoff: std::time::Duration,
}

impl RetryPolicy {
    /// Checks the zero-rejected rules (retries ≥ 1, backoff > 0).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] describing the offending
    /// field.
    pub fn validate(&self) -> Result<(), AccelError> {
        if self.max_retries == 0 {
            return Err(AccelError::InvalidConfig(
                "retry count must be >= 1 (skip the retry helper for fail-fast admission)".into(),
            ));
        }
        if self.backoff.is_zero() {
            return Err(AccelError::InvalidConfig(
                "retry backoff must be > 0".into(),
            ));
        }
        Ok(())
    }

    /// The backoff before retry `attempt` (0-based): exponential doubling
    /// capped at 64× the base.
    pub fn backoff_for(&self, attempt: usize) -> std::time::Duration {
        self.backoff * (1u32 << attempt.min(6))
    }
}

impl Default for RetryPolicy {
    /// 3 retries starting at a 1 ms backoff.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: std::time::Duration::from_millis(1),
        }
    }
}

/// Builder for [`AccelConfig`].
#[derive(Debug, Clone)]
pub struct AccelConfigBuilder {
    config: AccelConfig,
}

impl Default for AccelConfigBuilder {
    fn default() -> Self {
        AccelConfigBuilder {
            config: AccelConfig {
                n_pes: 1024,
                mac_latency: 6,
                local_hop: 1,
                remote_switching: true,
                slt_policy: SltPolicy::default(),
                tracking_window: 2,
                mapping: MappingKind::default(),
                queues_per_pe: 4,
                net_buffer: 4,
                stall_mode: StallMode::default(),
                freq_mhz: 275.0,
                pipeline_spmms: true,
                max_tuning_rounds: 32,
                memory: MemoryModel::unbounded(),
                threads: None,
                replay: true,
                scratch_reuse: true,
                shards: ShardPolicy::Single,
                combination_shards: ShardPolicy::Single,
                faults: None,
                strategy: StrategyPolicy::Manual,
                store: None,
                host_mem_budget: None,
            },
        }
    }
}

impl AccelConfigBuilder {
    /// Sets the PE count (must be a power of two ≥ 2).
    pub fn n_pes(&mut self, n: usize) -> &mut Self {
        self.config.n_pes = n;
        self
    }

    /// Sets the MAC pipeline latency in cycles (≥ 1).
    pub fn mac_latency(&mut self, cycles: u32) -> &mut Self {
        self.config.mac_latency = cycles;
        self
    }

    /// Sets the local-sharing hop distance (0 disables).
    pub fn local_hop(&mut self, hop: usize) -> &mut Self {
        self.config.local_hop = hop;
        self
    }

    /// Enables or disables remote switching.
    pub fn remote_switching(&mut self, on: bool) -> &mut Self {
        self.config.remote_switching = on;
        self
    }

    /// Sets the Shuffling-LUT policy.
    pub fn slt_policy(&mut self, policy: SltPolicy) -> &mut Self {
        self.config.slt_policy = policy;
        self
    }

    /// Sets the PESM tracking window (≥ 1).
    pub fn tracking_window(&mut self, tuples: usize) -> &mut Self {
        self.config.tracking_window = tuples;
        self
    }

    /// Sets the initial row mapping.
    pub fn mapping(&mut self, mapping: MappingKind) -> &mut Self {
        self.config.mapping = mapping;
        self
    }

    /// Sets TDQ-1 queues per PE (≥ 1).
    pub fn queues_per_pe(&mut self, n: usize) -> &mut Self {
        self.config.queues_per_pe = n;
        self
    }

    /// Sets the Omega-network buffer depth (≥ 1).
    pub fn net_buffer(&mut self, depth: usize) -> &mut Self {
        self.config.net_buffer = depth;
        self
    }

    /// Sets hazard handling.
    pub fn stall_mode(&mut self, mode: StallMode) -> &mut Self {
        self.config.stall_mode = mode;
        self
    }

    /// Sets the clock frequency in MHz (> 0).
    pub fn freq_mhz(&mut self, mhz: f64) -> &mut Self {
        self.config.freq_mhz = mhz;
        self
    }

    /// Enables or disables inter-SPMM pipelining.
    pub fn pipeline_spmms(&mut self, on: bool) -> &mut Self {
        self.config.pipeline_spmms = on;
        self
    }

    /// Sets the auto-tuning round budget (≥ 1).
    pub fn max_tuning_rounds(&mut self, rounds: usize) -> &mut Self {
        self.config.max_tuning_rounds = rounds;
        self
    }

    /// Sets the SPMMeM/DCM memory model.
    pub fn memory(&mut self, memory: MemoryModel) -> &mut Self {
        self.config.memory = memory;
        self
    }

    /// Sets the host worker-thread override (`None` restores the
    /// [`exec`](crate::exec) default; `Some(n)` requires `n >= 1`).
    pub fn threads(&mut self, threads: Option<usize>) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Enables or disables scratch-buffer pooling (see
    /// [`AccelConfig::scratch_reuse`]).
    pub fn scratch_reuse(&mut self, on: bool) -> &mut Self {
        self.config.scratch_reuse = on;
        self
    }

    /// Enables or disables the steady-state replay cache.
    pub fn replay(&mut self, on: bool) -> &mut Self {
        self.config.replay = on;
        self
    }

    /// Sets the adjacency (aggregation-phase) shard policy
    /// ([`ShardPolicy::Fixed`] requires a count ≥ 1).
    pub fn shards(&mut self, policy: ShardPolicy) -> &mut Self {
        self.config.shards = policy;
        self
    }

    /// Sets the feature-matrix (combination-phase `X × W`) shard policy
    /// ([`ShardPolicy::Fixed`] requires a count ≥ 1).
    pub fn combination_shards(&mut self, policy: ShardPolicy) -> &mut Self {
        self.config.combination_shards = policy;
        self
    }

    /// Arms (or with `None`, disarms) deterministic fault injection for
    /// the chaos harness.
    pub fn faults(&mut self, plan: Option<crate::fault::FaultPlan>) -> &mut Self {
        self.config.faults = plan;
        self
    }

    /// Sets the strategy policy (manual knobs vs cost-model `Auto`).
    pub fn strategy(&mut self, policy: StrategyPolicy) -> &mut Self {
        self.config.strategy = policy;
        self
    }

    /// Sets (or with `None`, clears) the on-disk sparse store directory
    /// the adjacency streams from (see [`AccelConfig::store`]).
    pub fn store(&mut self, dir: Option<std::path::PathBuf>) -> &mut Self {
        self.config.store = dir;
        self
    }

    /// Sets the host-memory budget in bytes for streamed sparse slices
    /// (`Some(n)` requires `n >= 1` and a configured
    /// [`store`](AccelConfigBuilder::store); `None` restores the default).
    pub fn host_mem_budget(&mut self, bytes: Option<usize>) -> &mut Self {
        self.config.host_mem_budget = bytes;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when any field is out of its
    /// documented domain.
    pub fn build(&self) -> Result<AccelConfig, AccelError> {
        let c = &self.config;
        // Any PE count >= 2 is valid for the fast engine; the Omega network
        // of the detailed TDQ-2 engine additionally requires a power of two
        // (checked there). The paper's Fig. 15 sweeps 512/768/1024.
        if c.n_pes < 2 {
            return Err(AccelError::InvalidConfig(format!(
                "n_pes must be >= 2, got {}",
                c.n_pes
            )));
        }
        if c.mac_latency == 0 {
            return Err(AccelError::InvalidConfig("mac_latency must be >= 1".into()));
        }
        if c.local_hop >= c.n_pes {
            return Err(AccelError::InvalidConfig(format!(
                "local_hop {} must be < n_pes {}",
                c.local_hop, c.n_pes
            )));
        }
        if c.tracking_window == 0 {
            return Err(AccelError::InvalidConfig(
                "tracking_window must be >= 1".into(),
            ));
        }
        if c.queues_per_pe == 0 {
            return Err(AccelError::InvalidConfig(
                "queues_per_pe must be >= 1".into(),
            ));
        }
        if c.net_buffer == 0 {
            return Err(AccelError::InvalidConfig("net_buffer must be >= 1".into()));
        }
        if !(c.freq_mhz.is_finite() && c.freq_mhz > 0.0) {
            return Err(AccelError::InvalidConfig(format!(
                "freq_mhz must be positive, got {}",
                c.freq_mhz
            )));
        }
        if c.max_tuning_rounds == 0 {
            return Err(AccelError::InvalidConfig(
                "max_tuning_rounds must be >= 1".into(),
            ));
        }
        if c.threads == Some(0) {
            return Err(AccelError::InvalidConfig(
                "threads must be >= 1 when set (use None for the default)".into(),
            ));
        }
        if c.shards == ShardPolicy::Fixed(0) {
            return Err(AccelError::InvalidConfig(
                "shard count must be >= 1 (use ShardPolicy::Single for no sharding)".into(),
            ));
        }
        if c.combination_shards == ShardPolicy::Fixed(0) {
            return Err(AccelError::InvalidConfig(
                "combination shard count must be >= 1 (use ShardPolicy::Single for no sharding)"
                    .into(),
            ));
        }
        if c.store.is_some() && c.shards != ShardPolicy::Single {
            return Err(AccelError::InvalidConfig(
                "a sparse store streams the aggregation operand out of core; it conflicts \
                 with an aggregation shard policy (leave shards at ShardPolicy::Single)"
                    .into(),
            ));
        }
        if c.host_mem_budget == Some(0) {
            return Err(AccelError::InvalidConfig(
                "host_mem_budget must be >= 1 byte when set (use None for the default)".into(),
            ));
        }
        if c.host_mem_budget.is_some() && c.store.is_none() {
            return Err(AccelError::InvalidConfig(
                "host_mem_budget only applies to out-of-core runs; configure a store directory"
                    .into(),
            ));
        }
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AccelConfig::paper_default();
        assert_eq!(c.n_pes, 1024);
        assert_eq!(c.freq_mhz, 275.0);
        assert_eq!(c.mac_latency, 6);
        assert_eq!(c.tracking_window, 2);
        assert_eq!(c.mapping, MappingKind::Block);
        assert_eq!(c.threads, None);
        assert!(c.replay);
        assert!(c.scratch_reuse);
        assert_eq!(c.shards, ShardPolicy::Single);
        assert_eq!(c.combination_shards, ShardPolicy::Single);
        assert_eq!(c.strategy, StrategyPolicy::Manual);
    }

    #[test]
    fn strategy_policy_labels_and_builder() {
        assert_eq!(StrategyPolicy::Manual.label(), "manual");
        assert_eq!(StrategyPolicy::Auto.label(), "auto");
        let c = AccelConfig::builder()
            .strategy(StrategyPolicy::Auto)
            .build()
            .unwrap();
        assert_eq!(c.strategy, StrategyPolicy::Auto);
    }

    #[test]
    fn shard_policy_validation_and_partitioner() {
        assert!(AccelConfig::builder()
            .shards(ShardPolicy::Fixed(0))
            .build()
            .is_err());
        assert!(AccelConfig::builder()
            .shards(ShardPolicy::Fixed(4))
            .build()
            .is_ok());
        assert!(AccelConfig::builder()
            .shards(ShardPolicy::MemoryBudget)
            .build()
            .is_ok());
        // Single and Fixed(1) resolve to a one-shard partitioner; a tight
        // memory budget resolves to the budgeted split.
        let a = {
            let mut coo = awb_sparse::Coo::new(8, 8);
            for c in 0..8 {
                coo.push(0, c, 1.0).unwrap();
            }
            coo.to_csc()
        };
        let single = AccelConfig::paper_default();
        assert_eq!(single.partitioner().partition(&a).len(), 1);
        let mut budgeted = AccelConfig::builder()
            .shards(ShardPolicy::MemoryBudget)
            .build()
            .unwrap();
        budgeted.memory = awb_hw::MemoryModel {
            on_chip_bytes: 2 * awb_hw::BYTES_PER_NNZ,
            off_chip_bytes_per_cycle: 64.0,
        };
        assert_eq!(budgeted.partitioner().partition(&a).len(), 4);
        assert_eq!(ShardPolicy::Fixed(4).label(), "4 shards");
        assert_eq!(ShardPolicy::Single.label(), "unsharded");
        assert_eq!(ShardPolicy::MemoryBudget.label(), "mem-budget");
    }

    #[test]
    fn combination_shard_policy_validation_and_partitioner() {
        assert!(AccelConfig::builder()
            .combination_shards(ShardPolicy::Fixed(0))
            .build()
            .is_err());
        assert!(AccelConfig::builder()
            .combination_shards(ShardPolicy::Fixed(3))
            .build()
            .is_ok());
        // The two axes resolve independently: A sharded 4-way, X 2-way.
        let a = {
            let mut coo = awb_sparse::Coo::new(8, 8);
            for c in 0..8 {
                coo.push(0, c, 1.0).unwrap();
            }
            coo.to_csc()
        };
        let cfg = AccelConfig::builder()
            .shards(ShardPolicy::Fixed(4))
            .combination_shards(ShardPolicy::Fixed(2))
            .build()
            .unwrap();
        assert_eq!(cfg.partitioner().partition(&a).len(), 4);
        assert_eq!(cfg.combination_partitioner().partition(&a).len(), 2);
        // MemoryBudget on the combination axis derives from the same
        // on-chip capacity as the aggregation axis.
        let mut budgeted = AccelConfig::builder()
            .combination_shards(ShardPolicy::MemoryBudget)
            .build()
            .unwrap();
        budgeted.memory = awb_hw::MemoryModel {
            on_chip_bytes: 2 * awb_hw::BYTES_PER_NNZ,
            off_chip_bytes_per_cycle: 64.0,
        };
        assert_eq!(budgeted.combination_partitioner().partition(&a).len(), 4);
        assert_eq!(budgeted.partitioner().partition(&a).len(), 1);
    }

    #[test]
    fn store_and_host_budget_validation() {
        // Defaults: fully resident, no budget.
        let c = AccelConfig::paper_default();
        assert_eq!(c.store, None);
        assert_eq!(c.host_mem_budget, None);
        // A store alone is fine (budget defaults downstream).
        assert!(AccelConfig::builder()
            .store(Some("graphs/pubmed.store".into()))
            .build()
            .is_ok());
        // Budget with a store is fine; zero budget is rejected; a budget
        // without a store is a typed error, not silently ignored.
        assert!(AccelConfig::builder()
            .store(Some("graphs/pubmed.store".into()))
            .host_mem_budget(Some(64 << 20))
            .build()
            .is_ok());
        assert!(matches!(
            AccelConfig::builder()
                .store(Some("graphs/pubmed.store".into()))
                .host_mem_budget(Some(0))
                .build(),
            Err(AccelError::InvalidConfig(_))
        ));
        assert!(matches!(
            AccelConfig::builder()
                .host_mem_budget(Some(64 << 20))
                .build(),
            Err(AccelError::InvalidConfig(_))
        ));
        // Streaming replaces device-sharding of A: combining them is a
        // conflict, not a silent precedence rule.
        assert!(matches!(
            AccelConfig::builder()
                .store(Some("graphs/pubmed.store".into()))
                .shards(ShardPolicy::Fixed(2))
                .build(),
            Err(AccelError::InvalidConfig(_))
        ));
        // The combination axis is orthogonal (X is never streamed).
        assert!(AccelConfig::builder()
            .store(Some("graphs/pubmed.store".into()))
            .combination_shards(ShardPolicy::Fixed(2))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_validates_n_pes() {
        assert!(AccelConfig::builder().n_pes(0).build().is_err());
        assert!(AccelConfig::builder().n_pes(1).build().is_err());
        assert!(AccelConfig::builder().n_pes(512).build().is_ok());
        // Non-power-of-two is allowed (paper Fig. 15 uses 768 PEs); only
        // the detailed TDQ-2 engine restricts it.
        assert!(AccelConfig::builder().n_pes(768).build().is_ok());
    }

    #[test]
    fn builder_validates_other_fields() {
        assert!(AccelConfig::builder().mac_latency(0).build().is_err());
        assert!(AccelConfig::builder().tracking_window(0).build().is_err());
        assert!(AccelConfig::builder().queues_per_pe(0).build().is_err());
        assert!(AccelConfig::builder().net_buffer(0).build().is_err());
        assert!(AccelConfig::builder().freq_mhz(0.0).build().is_err());
        assert!(AccelConfig::builder().freq_mhz(f64::NAN).build().is_err());
        assert!(AccelConfig::builder().max_tuning_rounds(0).build().is_err());
        assert!(AccelConfig::builder().threads(Some(0)).build().is_err());
        assert!(AccelConfig::builder().threads(Some(4)).build().is_ok());
        assert!(AccelConfig::builder().threads(None).build().is_ok());
        assert!(AccelConfig::builder()
            .n_pes(4)
            .local_hop(4)
            .build()
            .is_err());
    }

    #[test]
    fn design_apply_baseline_disables_rebalancing() {
        let c = Design::Baseline.apply(AccelConfig::paper_default());
        assert_eq!(c.local_hop, 0);
        assert!(!c.remote_switching);
    }

    #[test]
    fn design_apply_variants() {
        let base = AccelConfig::paper_default();
        let a = Design::LocalSharing { hop: 1 }.apply(base.clone());
        assert_eq!((a.local_hop, a.remote_switching), (1, false));
        let d = Design::LocalPlusRemote { hop: 2 }.apply(base.clone());
        assert_eq!((d.local_hop, d.remote_switching), (2, true));
        let e = Design::EieLike.apply(base);
        assert_eq!(e.freq_mhz, 285.0);
        assert_eq!(e.queues_per_pe, 1);
    }

    #[test]
    fn paper_lineup_shapes() {
        let lineup = Design::paper_lineup(1);
        assert_eq!(lineup[0], Design::Baseline);
        assert_eq!(lineup[1], Design::LocalSharing { hop: 1 });
        assert_eq!(lineup[2], Design::LocalSharing { hop: 2 });
        assert_eq!(lineup[3], Design::LocalPlusRemote { hop: 1 });
        assert_eq!(lineup[4], Design::LocalPlusRemote { hop: 2 });
        let nell = Design::paper_lineup(2);
        assert_eq!(nell[1], Design::LocalSharing { hop: 2 });
        assert_eq!(nell[4], Design::LocalPlusRemote { hop: 3 });
    }

    #[test]
    fn labels() {
        assert_eq!(Design::Baseline.label(), "Base");
        assert_eq!(Design::LocalSharing { hop: 2 }.label(), "LS2");
        assert_eq!(Design::LocalPlusRemote { hop: 3 }.label(), "LS3+RS");
        assert_eq!(Design::EieLike.label(), "EIE-like");
    }

    #[test]
    fn rows_per_pe_rounds_up() {
        let c = AccelConfig::builder().n_pes(8).build().unwrap();
        assert_eq!(c.rows_per_pe(17), 3);
        assert_eq!(c.rows_per_pe(16), 2);
    }
}
