//! Deterministic, seed-driven fault injection for the serving stack.
//!
//! A [`FaultPlan`] decides — as a *pure function* of `(seed, site, index)`
//! — whether a given execution site faults and how: a worker panic, a
//! NaN-corrupted payload, or a synthetic delay. Determinism matters twice
//! over: the chaos suite can predict exactly which requests fault (and
//! assert every non-faulted response is bit-identical to a cold run), and
//! a failure seen under `awb_sim serve --faults SEED` reproduces exactly
//! under the same seed.
//!
//! Injection is **off by default and zero-cost when off**: the plan lives
//! in `AccelConfig` as an `Option<FaultPlan>` (a `Copy` of two words), and
//! every hook site is a single `if let None` test on the hot path.
//!
//! # Named sites
//!
//! | site | faulted behaviour |
//! |---|---|
//! | `"drain"` | per queued request in [`GcnService::drain_isolated`](crate::GcnService::drain_isolated) |
//! | `"serve"` | per request in an isolated serve batch |
//! | `"prepare:sharded"` | panics the sharded prepare, exercising the fallback to an unsharded plan |

use std::fmt;

use crate::error::AccelError;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics mid-request; the isolation boundary must convert
    /// it to [`AccelError::WorkerPanicked`] without disturbing the batch.
    Panic,
    /// The response payload is corrupted with a NaN; the output guard must
    /// suppress it as [`AccelError::NonFiniteOutput`], never hand it back.
    NanPayload,
    /// The worker sleeps a few milliseconds; the request still completes
    /// bit-identically (and may trip a deadline budget upstream).
    Delay,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::NanPayload => write!(f, "nan-payload"),
            FaultKind::Delay => write!(f, "delay"),
        }
    }
}

/// Default fraction of site hits that fault, in percent.
pub const DEFAULT_FAULT_RATE_PERCENT: u8 = 25;

/// A deterministic fault-injection plan (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rate_percent: u8,
}

impl FaultPlan {
    /// A plan faulting [`DEFAULT_FAULT_RATE_PERCENT`]% of site hits under
    /// the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rate_percent: DEFAULT_FAULT_RATE_PERCENT,
        }
    }

    /// A plan with an explicit fault rate in percent.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] unless `1 <= rate_percent <= 100`.
    pub fn with_rate(seed: u64, rate_percent: u8) -> Result<Self, AccelError> {
        if rate_percent == 0 || rate_percent > 100 {
            return Err(AccelError::InvalidConfig(
                "fault rate must be between 1 and 100 percent".into(),
            ));
        }
        Ok(FaultPlan { seed, rate_percent })
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fraction of site hits that fault, in percent.
    pub fn rate_percent(&self) -> u8 {
        self.rate_percent
    }

    /// FNV-1a over `(seed, site, index)` with a splitmix64 finalizer —
    /// the single source of all decisions, so they are reproducible
    /// across runs, thread counts, and machines. The finalizer matters:
    /// bare FNV-1a has weak avalanche when inputs differ only in the
    /// last mixed word (consecutive request indices), which would
    /// correlate fault *kinds* across a batch and make some kind
    /// combinations unreachable under any seed.
    fn roll(&self, site: &str, index: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.seed);
        for b in site.bytes() {
            mix(b as u64);
        }
        mix(index.wrapping_add(1));
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        h
    }

    /// Whether the `index`-th hit of `site` faults, and how. Pure in
    /// `(seed, site, index)`.
    pub fn decide(&self, site: &str, index: u64) -> Option<FaultKind> {
        let h = self.roll(site, index);
        if (h % 100) as u8 >= self.rate_percent {
            return None;
        }
        Some(match (h >> 8) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::NanPayload,
            _ => FaultKind::Delay,
        })
    }

    /// Synthetic-delay duration for a [`FaultKind::Delay`] at this site:
    /// 1–8 ms, seed-derived.
    pub fn delay_ms(&self, site: &str, index: u64) -> u64 {
        1 + (self.roll(site, index) >> 16) % 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(42);
        let b = FaultPlan::new(42);
        for i in 0..200 {
            assert_eq!(a.decide("drain", i), b.decide("drain", i));
            assert_eq!(a.delay_ms("drain", i), b.delay_ms("drain", i));
        }
    }

    #[test]
    fn seeds_and_sites_differentiate() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let differs_by_seed = (0..64).any(|i| a.decide("drain", i) != b.decide("drain", i));
        assert!(differs_by_seed);
        let differs_by_site = (0..64).any(|i| a.decide("drain", i) != a.decide("serve", i));
        assert!(differs_by_site);
    }

    #[test]
    fn rate_bounds_enforced() {
        assert!(FaultPlan::with_rate(1, 0).is_err());
        assert!(FaultPlan::with_rate(1, 101).is_err());
        assert!(FaultPlan::with_rate(1, 1).is_ok());
        assert!(FaultPlan::with_rate(1, 100).is_ok());
    }

    #[test]
    fn rate_100_faults_everything_and_covers_all_kinds() {
        let plan = FaultPlan::with_rate(7, 100).unwrap();
        let kinds: Vec<FaultKind> = (0..64).map(|i| plan.decide("drain", i).unwrap()).collect();
        assert!(kinds.contains(&FaultKind::Panic));
        assert!(kinds.contains(&FaultKind::NanPayload));
        assert!(kinds.contains(&FaultKind::Delay));
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::with_rate(3, 25).unwrap();
        let n = 2000;
        let faulted = (0..n)
            .filter(|&i| plan.decide("drain", i).is_some())
            .count();
        let pct = 100 * faulted / n as usize;
        assert!(
            (15..=35).contains(&pct),
            "observed {pct}% vs configured 25%"
        );
    }

    #[test]
    fn delays_are_small_and_positive() {
        let plan = FaultPlan::new(9);
        for i in 0..100 {
            let d = plan.delay_ms("drain", i);
            assert!((1..=8).contains(&d));
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(FaultKind::Panic.to_string(), "panic");
        assert_eq!(FaultKind::NanPayload.to_string(), "nan-payload");
        assert_eq!(FaultKind::Delay.to_string(), "delay");
    }
}
