//! Simulation statistics: the raw material of the paper's Figs. 14/15.

/// Statistics of one *round* — the processing of one column of the dense
/// operand `B` (paper §4: rebalancing decisions are made per round).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Cycles from first dispatch to barrier (including pipeline drain).
    pub cycles: u64,
    /// Total MAC tasks executed this round.
    pub tasks: u64,
    /// Sum of busy cycles over all PEs.
    pub busy_cycles: u64,
    /// Busiest single PE's busy cycles (the hotspot load).
    pub max_pe_busy: u64,
    /// Least-busy single PE's busy cycles (the coldspot load).
    pub min_pe_busy: u64,
    /// Largest task-queue occupancy observed on any PE this round.
    pub max_queue_depth: usize,
    /// RaW-hazard stall cycles summed over PEs.
    pub raw_stalls: u64,
    /// Whether the auto-tuner was still adjusting during this round.
    pub tuning_active: bool,
}

impl RoundStats {
    /// PE utilization for this round (`busy / (cycles × n_pes)`).
    pub fn utilization(&self, n_pes: usize) -> f64 {
        if self.cycles == 0 || n_pes == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (self.cycles as f64 * n_pes as f64)
        }
    }

    /// Ideal cycles for this round under perfect balance.
    pub fn ideal_cycles(&self, n_pes: usize) -> u64 {
        self.tasks.div_ceil(n_pes as u64)
    }
}

/// Aggregated statistics of one SPMM operation (all rounds/columns).
#[derive(Debug, Clone, PartialEq)]
pub struct SpmmStats {
    /// Human-readable label, e.g. `"L1:A*(XW)"`.
    pub label: String,
    /// PE count used.
    pub n_pes: usize,
    /// Per-round statistics in execution order.
    pub rounds: Vec<RoundStats>,
    /// Per-PE maximum queue occupancy over the whole SPMM — the required
    /// TQ depth per PE, which the paper's area results size TQ buffers by
    /// (§5.2). Empty when the engine did not track it.
    pub queue_high_water: Vec<u32>,
}

impl SpmmStats {
    /// Total cycles across rounds (sequential within one SPMM).
    pub fn total_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.cycles).sum()
    }

    /// Total MAC tasks.
    pub fn total_tasks(&self) -> u64 {
        self.rounds.iter().map(|r| r.tasks).sum()
    }

    /// Total busy cycles over all PEs.
    pub fn total_busy(&self) -> u64 {
        self.rounds.iter().map(|r| r.busy_cycles).sum()
    }

    /// Cycles under perfect balance — the non-shaded "Ideal" bars of the
    /// paper's Fig. 14 F-J.
    pub fn ideal_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.ideal_cycles(self.n_pes)).sum()
    }

    /// Barrier-waiting cycles — the shaded "Sync" portion of Fig. 14 F-J
    /// (`actual − ideal`).
    pub fn sync_cycles(&self) -> u64 {
        self.total_cycles().saturating_sub(self.ideal_cycles())
    }

    /// Average PE utilization over the whole SPMM.
    pub fn utilization(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 || self.n_pes == 0 {
            0.0
        } else {
            self.total_busy() as f64 / (cycles as f64 * self.n_pes as f64)
        }
    }

    /// Largest queue depth any PE needed during any round — what the paper
    /// quotes as "TQ depth" (§5.2: Nell layer-1 baseline needs 65 128,
    /// Design D only 2 675).
    pub fn max_queue_depth(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Total TQ slots needed across the PE array (sum of per-PE high-water
    /// marks) — the quantity the area model charges for.
    pub fn total_queue_slots(&self) -> usize {
        if self.queue_high_water.is_empty() {
            // Conservative fallback: every PE sized to the global max.
            self.max_queue_depth() * self.n_pes
        } else {
            self.queue_high_water.iter().map(|&d| d as usize).sum()
        }
    }

    /// Number of rounds before the auto-tuner froze (0 when tuning never
    /// ran).
    pub fn tuning_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.tuning_active).count()
    }

    /// Per-round cycle vector (used by the inter-SPMM pipeline model).
    pub fn round_cycles(&self) -> Vec<u64> {
        self.rounds.iter().map(|r| r.cycles).collect()
    }

    /// Total RaW stall cycles.
    pub fn raw_stalls(&self) -> u64 {
        self.rounds.iter().map(|r| r.raw_stalls).sum()
    }
}

/// Statistics of one GCN layer (two chained SPMMs, possibly pipelined).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// Stats of `X × W`.
    pub xw: SpmmStats,
    /// Stats of `A × (XW)`.
    pub a_xw: SpmmStats,
    /// Layer latency in cycles after column-level pipelining of the two
    /// SPMMs (equals the sum when pipelining is disabled).
    pub pipelined_cycles: u64,
}

impl LayerStats {
    /// Sequential (non-overlapped) layer cycles.
    pub fn sequential_cycles(&self) -> u64 {
        self.xw.total_cycles() + self.a_xw.total_cycles()
    }

    /// Cycles saved by inter-SPMM pipelining.
    pub fn pipeline_savings(&self) -> u64 {
        self.sequential_cycles()
            .saturating_sub(self.pipelined_cycles)
    }
}

/// Statistics of a full GCN inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Per-layer statistics.
    pub layers: Vec<LayerStats>,
    /// PE count.
    pub n_pes: usize,
}

impl RunStats {
    /// End-to-end inference cycles (layers execute sequentially).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.pipelined_cycles).sum()
    }

    /// Total MAC tasks over all SPMMs.
    pub fn total_tasks(&self) -> u64 {
        self.spmms().iter().map(|s| s.total_tasks()).sum()
    }

    /// Overall average PE utilization, weighted by SPMM duration (the line
    /// series of Fig. 14 A-E).
    pub fn avg_utilization(&self) -> f64 {
        let (busy, denom) = self.spmms().iter().fold((0u64, 0u64), |(b, d), s| {
            (b + s.total_busy(), d + s.total_cycles() * s.n_pes as u64)
        });
        if denom == 0 {
            0.0
        } else {
            busy as f64 / denom as f64
        }
    }

    /// The latency lower bound at full utilization marked in Fig. 14 A-E.
    pub fn ideal_cycles(&self) -> u64 {
        self.spmms().iter().map(|s| s.ideal_cycles()).sum()
    }

    /// Flat list of the SPMM stats in execution order
    /// (`L1:XW, L1:AXW, L2:XW, L2:AXW, …`).
    pub fn spmms(&self) -> Vec<&SpmmStats> {
        self.layers.iter().flat_map(|l| [&l.xw, &l.a_xw]).collect()
    }

    /// Largest task-queue depth needed anywhere in the run.
    pub fn max_queue_depth(&self) -> usize {
        self.spmms()
            .iter()
            .map(|s| s.max_queue_depth())
            .max()
            .unwrap_or(0)
    }

    /// Latency in milliseconds at the given clock.
    pub fn latency_ms(&self, freq_mhz: f64) -> f64 {
        self.total_cycles() as f64 / (freq_mhz * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(cycles: u64, tasks: u64, busy: u64) -> RoundStats {
        RoundStats {
            cycles,
            tasks,
            busy_cycles: busy,
            max_pe_busy: busy,
            min_pe_busy: 0,
            max_queue_depth: 3,
            raw_stalls: 0,
            tuning_active: false,
        }
    }

    #[test]
    fn round_utilization() {
        let r = round(10, 40, 40);
        assert!((r.utilization(8) - 0.5).abs() < 1e-12);
        assert_eq!(r.ideal_cycles(8), 5);
        assert_eq!(round(0, 0, 0).utilization(8), 0.0);
    }

    #[test]
    fn spmm_aggregates() {
        let s = SpmmStats {
            label: "t".into(),
            n_pes: 4,
            rounds: vec![round(10, 20, 20), round(6, 12, 12)],
            queue_high_water: Vec::new(),
        };
        assert_eq!(s.total_cycles(), 16);
        assert_eq!(s.total_tasks(), 32);
        assert_eq!(s.ideal_cycles(), 5 + 3);
        assert_eq!(s.sync_cycles(), 8);
        assert!((s.utilization() - 32.0 / 64.0).abs() < 1e-12);
        assert_eq!(s.max_queue_depth(), 3);
    }

    #[test]
    fn layer_pipeline_savings() {
        let s1 = SpmmStats {
            label: "xw".into(),
            n_pes: 4,
            rounds: vec![round(10, 1, 1)],
            queue_high_water: Vec::new(),
        };
        let s2 = SpmmStats {
            label: "axw".into(),
            n_pes: 4,
            rounds: vec![round(8, 1, 1)],
            queue_high_water: Vec::new(),
        };
        let l = LayerStats {
            xw: s1,
            a_xw: s2,
            pipelined_cycles: 14,
        };
        assert_eq!(l.sequential_cycles(), 18);
        assert_eq!(l.pipeline_savings(), 4);
    }

    #[test]
    fn run_aggregates() {
        let mk = |c, t| SpmmStats {
            label: "x".into(),
            n_pes: 2,
            rounds: vec![round(c, t, t)],
            queue_high_water: Vec::new(),
        };
        let run = RunStats {
            layers: vec![LayerStats {
                xw: mk(10, 10),
                a_xw: mk(10, 10),
                pipelined_cycles: 15,
            }],
            n_pes: 2,
        };
        assert_eq!(run.total_cycles(), 15);
        assert_eq!(run.total_tasks(), 20);
        assert_eq!(run.spmms().len(), 2);
        // busy 20, denom (10+10)*2 = 40
        assert!((run.avg_utilization() - 0.5).abs() < 1e-12);
        let ms = run.latency_ms(275.0);
        assert!((ms - 15.0 / 275e3).abs() < 1e-12);
    }
}
