//! Design-space sweeps: run a grid of (design × PE count) points over one
//! workload and collect the per-point metrics the paper's Figs. 14/15 plot.

use crate::area::AreaModel;
use crate::config::{AccelConfig, Design, StrategyPolicy};
use crate::cost::CostProfile;
use crate::error::AccelError;
use crate::exec;
use crate::gcn_run::GcnRunner;
use awb_gcn_model::GcnInput;

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Design evaluated.
    pub design: Design,
    /// PE count evaluated.
    pub n_pes: usize,
    /// End-to-end inference cycles of the cold (tuning-inclusive) run.
    pub cycles: u64,
    /// Average PE utilization of the cold run.
    pub utilization: f64,
    /// End-to-end cycles of a warm request executed against the point's
    /// prepared [`GcnPlan`](crate::GcnPlan) (frozen map, no tuning rounds)
    /// — the steady-state serving latency the paper's "reuse the ideal
    /// configuration" regime delivers.
    pub warm_cycles: u64,
    /// Average PE utilization of the warm request.
    pub warm_utilization: f64,
    /// Deepest task queue needed anywhere.
    pub max_queue_depth: usize,
    /// Total TQ slots needed across the array (max over SPMMs).
    pub tq_slots: usize,
    /// Modeled total area in CLBs.
    pub clb_total: f64,
    /// The calibrated cost model's warm-path cycle prediction for this
    /// point (see [`crate::cost::predict_config_cycles`]) — computed from
    /// one structure profile shared across the whole grid, so sweeps put
    /// the model next to every measurement for free.
    pub predicted_cycles: f64,
}

/// Grid sweep runner.
///
/// # Example
///
/// ```
/// use awb_accel::{AccelConfig, Design, DesignSweep};
/// use awb_datasets::{DatasetSpec, GeneratedDataset};
/// use awb_gcn_model::GcnInput;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 2)?;
/// let input = GcnInput::from_dataset(&data)?;
/// let points = DesignSweep::new()
///     .designs(vec![Design::Baseline, Design::LocalSharing { hop: 1 }])
///     .pe_counts(vec![16, 32])
///     .run(&input)?;
/// assert_eq!(points.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesignSweep {
    designs: Vec<Design>,
    pe_counts: Vec<usize>,
    base: AccelConfig,
    area_model: AreaModel,
}

impl Default for DesignSweep {
    fn default() -> Self {
        DesignSweep::new()
    }
}

impl DesignSweep {
    /// A sweep with the paper's design lineup at 1024 PEs.
    pub fn new() -> Self {
        DesignSweep {
            designs: Design::paper_lineup(1).to_vec(),
            pe_counts: vec![1024],
            base: AccelConfig::paper_default(),
            area_model: AreaModel::paper_default(),
        }
    }

    /// Replaces the design list.
    pub fn designs(mut self, designs: Vec<Design>) -> Self {
        self.designs = designs;
        self
    }

    /// Replaces the PE-count list.
    pub fn pe_counts(mut self, pe_counts: Vec<usize>) -> Self {
        self.pe_counts = pe_counts;
        self
    }

    /// Replaces the base configuration the designs are applied to.
    pub fn base_config(mut self, base: AccelConfig) -> Self {
        self.base = base;
        self
    }

    /// Replaces the area model.
    pub fn area_model(mut self, model: AreaModel) -> Self {
        self.area_model = model;
        self
    }

    /// Runs every grid point, returning results in PE-major order.
    ///
    /// Grid points are independent simulations, so they execute on the
    /// [`exec`] substrate (`AWB_THREADS` workers); the result vector is
    /// identical to a sequential sweep — see the `exec` determinism
    /// contract.
    ///
    /// # Errors
    ///
    /// Propagates configuration/shape errors from the runner (e.g. an
    /// invalid PE count).
    pub fn run(&self, input: &GcnInput) -> Result<Vec<SweepPoint>, AccelError> {
        let grid: Vec<(usize, Design)> = self
            .pe_counts
            .iter()
            .flat_map(|&n_pes| self.designs.iter().map(move |&design| (n_pes, design)))
            .collect();
        // Configuration errors are detectable up front; reject them before
        // burning simulation time on the rest of the grid.
        for &(n_pes, design) in &grid {
            let config = design.apply(self.base.clone());
            if config.local_hop >= n_pes {
                return Err(AccelError::InvalidConfig(format!(
                    "hop {} does not fit {} PEs",
                    config.local_hop, n_pes
                )));
            }
        }
        // The structure profile depends only on the input, not the grid
        // point, so compute it once here and share it with every prepare
        // instead of re-profiling per point.
        let profile = CostProfile::of_input(input);
        exec::par_map(&grid, |&(n_pes, design)| {
            let mut config = design.apply(self.base.clone());
            config.n_pes = n_pes;
            // The design/PE axes ARE the sweep variables: an Auto base
            // would collapse every point onto the model's single winner,
            // so grid points always execute their own configuration.
            config.strategy = StrategyPolicy::Manual;
            // Prepare once per point: the cold warm-up run is the classic
            // (tuning-inclusive) measurement, and the extracted plan is
            // reused for a warm request — the steady-state serving figure
            // (plan shared between both, tuning paid exactly once).
            let (plan, outcome) =
                GcnRunner::new(config.clone()).prepare_profiled(input, &profile)?;
            let warm = plan.run_input(input)?;
            let tq_slots = outcome
                .stats
                .spmms()
                .iter()
                .map(|s| s.total_queue_slots())
                .max()
                .unwrap_or(0);
            Ok(SweepPoint {
                design,
                n_pes,
                cycles: outcome.stats.total_cycles(),
                utilization: outcome.stats.avg_utilization(),
                warm_cycles: warm.stats.total_cycles(),
                warm_utilization: warm.stats.avg_utilization(),
                max_queue_depth: outcome.stats.max_queue_depth(),
                tq_slots,
                clb_total: self.area_model.breakdown(&config, tq_slots).total(),
                predicted_cycles: crate::cost::predict_config_cycles(&config, &profile),
            })
        })
        .into_iter()
        .collect()
    }
}

/// Renders sweep points as CSV:
/// `design,n_pes,cycles,utilization,warm_cycles,warm_utilization,max_queue_depth,tq_slots,clb_total,predicted_cycles`.
pub fn sweep_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "design,n_pes,cycles,utilization,warm_cycles,warm_utilization,\
         max_queue_depth,tq_slots,clb_total,predicted_cycles\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.4},{},{:.4},{},{},{:.0},{:.0}\n",
            p.design.label(),
            p.n_pes,
            p.cycles,
            p.utilization,
            p.warm_cycles,
            p.warm_utilization,
            p.max_queue_depth,
            p.tq_slots,
            p.clb_total,
            p.predicted_cycles,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_datasets::{DatasetSpec, GeneratedDataset};

    fn input() -> GcnInput {
        let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(128), 4).unwrap();
        GcnInput::from_dataset(&data).unwrap()
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let points = DesignSweep::new()
            .designs(vec![Design::Baseline, Design::LocalPlusRemote { hop: 1 }])
            .pe_counts(vec![8, 16])
            .run(&input())
            .unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].n_pes, 8);
        assert_eq!(points[0].design, Design::Baseline);
        assert_eq!(points[3].n_pes, 16);
        assert_eq!(points[3].design, Design::LocalPlusRemote { hop: 1 });
        for p in &points {
            assert!(p.cycles > 0);
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
            assert!(p.clb_total > 0.0);
            // Warm (plan-reusing) requests never pay tuning, so they are
            // never slower than the cold run.
            assert!(p.warm_cycles > 0);
            assert!(
                p.warm_cycles <= p.cycles,
                "warm {} cold {}",
                p.warm_cycles,
                p.cycles
            );
            assert!(p.warm_utilization > 0.0 && p.warm_utilization <= 1.0);
            // The shared-profile cost prediction rides along every point.
            assert!(p.predicted_cycles.is_finite() && p.predicted_cycles > 0.0);
        }
    }

    #[test]
    fn more_pes_cost_more_area_but_fewer_cycles() {
        let points = DesignSweep::new()
            .designs(vec![Design::LocalPlusRemote { hop: 1 }])
            .pe_counts(vec![8, 64])
            .run(&input())
            .unwrap();
        assert!(points[1].cycles < points[0].cycles);
        // More PEs always cost more non-TQ area; TQ shrinkage rarely
        // overcomes an 8x PE increase.
        assert!(points[1].clb_total > points[0].clb_total);
    }

    #[test]
    fn sharded_base_config_sweeps() {
        // The shard policy rides in the base configuration, so a sweep
        // over a sharded deployment needs no dedicated plumbing.
        use crate::config::ShardPolicy;
        let mut base = AccelConfig::paper_default();
        base.shards = ShardPolicy::Fixed(2);
        let points = DesignSweep::new()
            .designs(vec![Design::LocalPlusRemote { hop: 1 }])
            .pe_counts(vec![8, 16])
            .base_config(base)
            .run(&input())
            .unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.cycles > 0);
            assert!(p.warm_cycles > 0 && p.warm_cycles <= p.cycles);
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
        }
    }

    #[test]
    fn combination_sharded_base_config_sweeps() {
        // The combination-phase policy rides the base configuration too,
        // so sweeping an X×W-sharded (or doubly sharded) deployment needs
        // no dedicated plumbing either.
        use crate::config::ShardPolicy;
        let mut base = AccelConfig::paper_default();
        base.shards = ShardPolicy::Fixed(2);
        base.combination_shards = ShardPolicy::Fixed(2);
        let points = DesignSweep::new()
            .designs(vec![Design::LocalPlusRemote { hop: 1 }])
            .pe_counts(vec![8, 16])
            .base_config(base)
            .run(&input())
            .unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.cycles > 0);
            assert!(p.warm_cycles > 0 && p.warm_cycles <= p.cycles);
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
        }
    }

    #[test]
    fn invalid_hop_rejected() {
        let res = DesignSweep::new()
            .designs(vec![Design::LocalSharing { hop: 9 }])
            .pe_counts(vec![8])
            .run(&input());
        assert!(res.is_err());
    }

    #[test]
    fn csv_shape() {
        let points = DesignSweep::new()
            .designs(vec![Design::Baseline])
            .pe_counts(vec![8])
            .run(&input())
            .unwrap();
        let csv = sweep_csv(&points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("design,n_pes"));
        assert!(lines[1].starts_with("Base,8,"));
    }
}
