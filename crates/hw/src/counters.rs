/// Per-PE busy/idle cycle counter.
///
/// The paper instruments every PE with "a counter … for tracking the number
/// of idle cycles for utilization measurement"; Figs. 14/15 report the
/// resulting utilization. One counter instance tracks one PE.
///
/// # Example
///
/// ```
/// use awb_hw::UtilizationCounter;
///
/// let mut c = UtilizationCounter::new();
/// c.record(true);
/// c.record(false);
/// c.record(true);
/// assert_eq!(c.busy_cycles(), 2);
/// assert_eq!(c.total_cycles(), 3);
/// assert!((c.utilization() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UtilizationCounter {
    busy: u64,
    total: u64,
}

impl UtilizationCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        UtilizationCounter::default()
    }

    /// Records one cycle, busy or idle.
    #[inline]
    pub fn record(&mut self, busy: bool) {
        self.total += 1;
        if busy {
            self.busy += 1;
        }
    }

    /// Adds pre-aggregated cycles (used by the fast engine, which computes
    /// per-round busy totals analytically).
    #[inline]
    pub fn add(&mut self, busy: u64, total: u64) {
        debug_assert!(busy <= total, "busy cycles cannot exceed total");
        self.busy += busy;
        self.total += total;
    }

    /// Busy cycles so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Idle cycles so far.
    pub fn idle_cycles(&self) -> u64 {
        self.total - self.busy
    }

    /// Total observed cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Busy fraction in `[0, 1]`; 0 when nothing was recorded.
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }
}

/// Aggregates utilization across a PE array.
///
/// # Example
///
/// ```
/// use awb_hw::UtilizationCounter;
/// use awb_hw::average_utilization;
///
/// let mut a = UtilizationCounter::new();
/// a.add(1, 2);
/// let mut b = UtilizationCounter::new();
/// b.add(2, 2);
/// assert!((average_utilization(&[a, b]) - 0.75).abs() < 1e-12);
/// ```
pub fn average_utilization(counters: &[UtilizationCounter]) -> f64 {
    let (busy, total) = counters.iter().fold((0u64, 0u64), |(b, t), c| {
        (b + c.busy_cycles(), t + c.total_cycles())
    });
    if total == 0 {
        0.0
    } else {
        busy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_counter_zero() {
        let c = UtilizationCounter::new();
        assert_eq!(c.total_cycles(), 0);
        assert_eq!(c.utilization(), 0.0);
    }

    #[test]
    fn record_accumulates() {
        let mut c = UtilizationCounter::new();
        for i in 0..10 {
            c.record(i % 2 == 0);
        }
        assert_eq!(c.busy_cycles(), 5);
        assert_eq!(c.idle_cycles(), 5);
        assert_eq!(c.utilization(), 0.5);
    }

    #[test]
    fn add_merges_aggregates() {
        let mut c = UtilizationCounter::new();
        c.add(10, 20);
        c.add(5, 5);
        assert_eq!(c.busy_cycles(), 15);
        assert_eq!(c.total_cycles(), 25);
    }

    #[test]
    fn average_over_array_weights_by_cycles() {
        let mut a = UtilizationCounter::new();
        a.add(0, 10);
        let mut b = UtilizationCounter::new();
        b.add(10, 10);
        assert_eq!(average_utilization(&[a, b]), 0.5);
        assert_eq!(average_utilization(&[]), 0.0);
    }
}
