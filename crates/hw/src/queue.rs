use std::collections::VecDeque;

/// A hardware task queue (TQ) with optional capacity and high-water
/// tracking.
///
/// The paper sizes the TQ contribution to chip area by the queue depth a
/// workload requires (§5.2: rebalancing shrinks Nell's layer-1 TQ depth
/// from 65 128 to 2 675 slots); [`TaskQueue::high_water`] records exactly
/// that statistic.
///
/// # Example
///
/// ```
/// use awb_hw::TaskQueue;
///
/// let mut q: TaskQueue<u32> = TaskQueue::unbounded();
/// q.push(7).unwrap();
/// q.push(9).unwrap();
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.high_water(), 2);
/// assert_eq!(q.pop(), Some(7));
/// assert_eq!(q.high_water(), 2); // high water is sticky
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskQueue<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    high_water: usize,
    total_pushed: u64,
}

impl<T> TaskQueue<T> {
    /// An unbounded queue (the fast engine measures required depth rather
    /// than enforcing one).
    pub fn unbounded() -> Self {
        TaskQueue {
            items: VecDeque::new(),
            capacity: None,
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// A bounded queue; `push` fails when full (models backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TaskQueue {
            items: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Pushes a task; returns it back as `Err` when the queue is full.
    pub fn push(&mut self, task: T) -> Result<(), T> {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                return Err(task);
            }
        }
        self.items.push_back(task);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Pops the oldest task.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest task.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy (the "pending task counter" the local-sharing
    /// comparators read).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no tasks are pending (the "empty" signal wired to the PE
    /// Status Monitor).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when a bounded queue has no free slot.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.items.len() >= c)
    }

    /// Maximum occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total number of tasks ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Configured capacity, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Clears pending tasks but keeps statistics (used between rounds).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T> Default for TaskQueue<T> {
    fn default() -> Self {
        TaskQueue::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = TaskQueue::unbounded();
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_rejects_when_full() {
        let mut q = TaskQueue::bounded(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        q.pop();
        assert!(q.push(3).is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: TaskQueue<u32> = TaskQueue::bounded(0);
    }

    #[test]
    fn high_water_is_sticky_max() {
        let mut q = TaskQueue::unbounded();
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        q.pop();
        q.pop();
        q.push(4).unwrap();
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 4);
    }

    #[test]
    fn clear_keeps_stats() {
        let mut q = TaskQueue::unbounded();
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = TaskQueue::unbounded();
        q.push(42).unwrap();
        assert_eq!(q.peek(), Some(&42));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn unbounded_reports_no_capacity() {
        let q: TaskQueue<u8> = TaskQueue::unbounded();
        assert_eq!(q.capacity(), None);
        assert!(!q.is_full());
        let b: TaskQueue<u8> = TaskQueue::bounded(3);
        assert_eq!(b.capacity(), Some(3));
    }
}
