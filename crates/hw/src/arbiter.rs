/// Round-robin arbiter over `n` requesters.
///
/// In TDQ-1 each PE owns several task queues (one per matrix row mapped to
/// it that can deliver a non-zero in the same cycle); each cycle the
/// arbiter picks one non-empty queue to pop (paper §3.3: "an arbitrator
/// selects a non-empty queue, pops an element, …").
///
/// # Example
///
/// ```
/// use awb_hw::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(3);
/// // Queues 0 and 2 have pending work.
/// assert_eq!(arb.grant(&[true, false, true]), Some(0));
/// assert_eq!(arb.grant(&[true, false, true]), Some(2));
/// assert_eq!(arb.grant(&[true, false, true]), Some(0)); // wrapped
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    n: usize,
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter { n, next: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (an arbiter has ≥ 1 requesters).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants the next requester at or after the rotating priority pointer
    /// whose `requests` flag is set; advances the pointer past the grantee.
    ///
    /// Returns `None` when no requester is active.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.len()`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_fairly_over_all_active() {
        let mut arb = RoundRobinArbiter::new(4);
        let all = [true; 4];
        let grants: Vec<_> = (0..8).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_inactive() {
        let mut arb = RoundRobinArbiter::new(4);
        let req = [false, true, false, true];
        assert_eq!(arb.grant(&req), Some(1));
        assert_eq!(arb.grant(&req), Some(3));
        assert_eq!(arb.grant(&req), Some(1));
    }

    #[test]
    fn none_when_idle() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
        // Pointer did not move: next active grant starts from 0.
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_requesters_panics() {
        RoundRobinArbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_request_length_panics() {
        RoundRobinArbiter::new(2).grant(&[true]);
    }

    #[test]
    fn starvation_freedom() {
        // Requester 3 competes against always-on 0..2 and still gets grants.
        let mut arb = RoundRobinArbiter::new(4);
        let req = [true; 4];
        let hits3 = (0..100).filter(|_| arb.grant(&req) == Some(3)).count();
        assert_eq!(hits3, 25);
    }
}
