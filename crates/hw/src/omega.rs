use std::collections::VecDeque;

/// A packet traversing the TDQ-2 Omega network: a non-zero's MAC task on
/// its way to the PE that owns its output row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Destination PE (set by the row→PE map, possibly after remote
    /// switching).
    pub dest: u32,
    /// Global output row of the task.
    pub row: u32,
    /// `a(i,j) * b(j,k)` product value.
    pub product: f32,
}

/// Multi-stage Omega network with destination-tag routing and per-stage
/// buffering (paper §3.3, TDQ-2).
///
/// `log2(n)` stages of 2×2 switches connect `n` injection ports to `n`
/// output ports. Each stage output has a small buffer; when both switch
/// inputs contend for the same output port, one packet stalls ("each router
/// … has a local buffer in case the buffer of the next stage is
/// saturated"). Compared with a crossbar this is cheap — which is exactly
/// why the paper chose it.
///
/// # Example
///
/// ```
/// use awb_hw::{OmegaNetwork, Packet};
///
/// let mut net = OmegaNetwork::new(8, 4);
/// net.inject(0, Packet { dest: 5, row: 5, product: 1.0 }).unwrap();
/// let mut delivered = Vec::new();
/// for _ in 0..net.stages() + 1 {
///     delivered.extend(net.tick());
/// }
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].0, 5); // arrived at its destination port
/// ```
#[derive(Debug, Clone)]
pub struct OmegaNetwork {
    n: usize,
    stages: usize,
    cap: usize,
    /// `buffers[s][p]`: packets waiting at stage `s`, port `p`.
    buffers: Vec<Vec<VecDeque<Packet>>>,
    /// Rotating priority so neither switch input starves.
    priority: usize,
    delivered: u64,
    contention_stalls: u64,
}

impl OmegaNetwork {
    /// Creates an `n`-port network (`n` must be a power of two ≥ 2) with
    /// per-port buffers of `buffer_capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2 or `buffer_capacity == 0`.
    pub fn new(n: usize, buffer_capacity: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "ports must be a power of two >= 2"
        );
        assert!(buffer_capacity > 0, "buffer capacity must be positive");
        let stages = n.trailing_zeros() as usize;
        OmegaNetwork {
            n,
            stages,
            cap: buffer_capacity,
            buffers: (0..stages)
                .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                .collect(),
            priority: 0,
            delivered: 0,
            contention_stalls: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Number of switch stages (`log2(ports)`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Attempts to inject a packet at `port`; fails (returning the packet)
    /// when the stage-0 buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `port >= self.ports()` or `packet.dest >= self.ports()`.
    pub fn inject(&mut self, port: usize, packet: Packet) -> Result<(), Packet> {
        assert!(port < self.n, "injection port out of range");
        assert!((packet.dest as usize) < self.n, "destination out of range");
        let buf = &mut self.buffers[0][port];
        if buf.len() >= self.cap {
            return Err(packet);
        }
        buf.push_back(packet);
        Ok(())
    }

    /// Port a packet at stage `s`, port `p` moves to next: the perfect
    /// shuffle rotates the port index left, and the switch overwrites the
    /// low bit with the destination-tag bit for this stage.
    fn next_port(&self, s: usize, p: usize, dest: u32) -> usize {
        let bit = (dest as usize >> (self.stages - 1 - s)) & 1;
        ((p << 1) & (self.n - 1)) | bit
    }

    /// Advances the network one cycle; returns packets delivered to output
    /// ports this cycle as `(output_port, packet)` pairs.
    ///
    /// Output ports are never blocked (the engine's PE queues absorb
    /// deliveries and measure their own depth); internal stages observe
    /// buffer capacity and one-packet-per-port bandwidth.
    pub fn tick(&mut self) -> Vec<(usize, Packet)> {
        let mut delivered = Vec::new();
        // One packet per receiving port per cycle, network-wide.
        let mut claimed: Vec<Vec<bool>> = (0..self.stages).map(|_| vec![false; self.n]).collect();
        let mut out_claimed = vec![false; self.n];
        // Back-to-front so a packet moves at most one stage per cycle and
        // freed slots are visible upstream within the same cycle.
        for s in (0..self.stages).rev() {
            for off in 0..self.n {
                let p = (self.priority + off) % self.n;
                let Some(pkt) = self.buffers[s][p].front().copied() else {
                    continue;
                };
                let np = self.next_port(s, p, pkt.dest);
                if s + 1 == self.stages {
                    // Final stage: deliver to output port np (== dest).
                    if out_claimed[np] {
                        self.contention_stalls += 1;
                        continue;
                    }
                    out_claimed[np] = true;
                    self.buffers[s][p].pop_front();
                    self.delivered += 1;
                    delivered.push((np, pkt));
                } else {
                    if claimed[s + 1][np] || self.buffers[s + 1][np].len() >= self.cap {
                        self.contention_stalls += 1;
                        continue;
                    }
                    claimed[s + 1][np] = true;
                    self.buffers[s][p].pop_front();
                    self.buffers[s + 1][np].push_back(pkt);
                }
            }
        }
        self.priority = (self.priority + 1) % self.n;
        delivered
    }

    /// True when no packet is anywhere in the network.
    pub fn is_drained(&self) -> bool {
        self.buffers
            .iter()
            .all(|stage| stage.iter().all(|b| b.is_empty()))
    }

    /// Total packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Cycles in which a packet could not advance because of port
    /// contention or a saturated buffer.
    pub fn contention_stalls(&self) -> u64 {
        self.contention_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(dest: u32) -> Packet {
        Packet {
            dest,
            row: dest,
            product: 1.0,
        }
    }

    fn drain(net: &mut OmegaNetwork, max_cycles: usize) -> Vec<(usize, Packet)> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            out.extend(net.tick());
            if net.is_drained() {
                break;
            }
        }
        out
    }

    #[test]
    fn routes_every_source_to_every_destination() {
        for n in [2usize, 4, 8, 16] {
            for src in 0..n {
                for dst in 0..n {
                    let mut net = OmegaNetwork::new(n, 4);
                    net.inject(src, pkt(dst as u32)).unwrap();
                    let delivered = drain(&mut net, 4 * n);
                    assert_eq!(delivered.len(), 1, "n={n} src={src} dst={dst}");
                    assert_eq!(delivered[0].0, dst, "n={n} src={src} dst={dst}");
                }
            }
        }
    }

    #[test]
    fn latency_is_stage_count_when_uncontended() {
        let mut net = OmegaNetwork::new(8, 4);
        net.inject(3, pkt(6)).unwrap();
        let mut cycles = 0;
        loop {
            cycles += 1;
            if !net.tick().is_empty() {
                break;
            }
            assert!(cycles < 10, "packet lost");
        }
        assert_eq!(cycles, net.stages());
    }

    #[test]
    fn single_destination_throughput_is_one_per_cycle() {
        // All 8 ports fire at PE 0: deliveries serialize at the output.
        let mut net = OmegaNetwork::new(8, 8);
        for p in 0..8 {
            net.inject(p, pkt(0)).unwrap();
        }
        let delivered = drain(&mut net, 64);
        assert_eq!(delivered.len(), 8);
        assert!(net.contention_stalls() > 0);
    }

    #[test]
    fn identity_permutation_is_conflict_lighter_than_hotspot() {
        let run = |dests: Vec<u32>| {
            let mut net = OmegaNetwork::new(8, 8);
            for (p, d) in dests.into_iter().enumerate() {
                net.inject(p, pkt(d)).unwrap();
            }
            drain(&mut net, 64);
            net.contention_stalls()
        };
        let uniform = run((0..8).collect());
        let hotspot = run(vec![0; 8]);
        assert!(uniform < hotspot, "uniform {uniform} hotspot {hotspot}");
    }

    #[test]
    fn injection_backpressure_when_buffer_full() {
        let mut net = OmegaNetwork::new(4, 1);
        net.inject(0, pkt(1)).unwrap();
        assert!(net.inject(0, pkt(2)).is_err());
        net.tick();
        assert!(net.inject(0, pkt(2)).is_ok());
    }

    #[test]
    fn conservation_no_packet_lost_or_duplicated() {
        let mut net = OmegaNetwork::new(16, 2);
        let mut injected = 0u32;
        let mut delivered = Vec::new();
        // Stream 200 packets with pseudo-random destinations, injecting as
        // buffers permit.
        let mut next_dest = 7u32;
        let mut pending: Vec<Packet> = (0..200)
            .map(|i| {
                next_dest = (next_dest.wrapping_mul(13).wrapping_add(5)) % 16;
                Packet {
                    dest: next_dest,
                    row: i,
                    product: 1.0,
                }
            })
            .collect();
        pending.reverse();
        let mut cycles = 0;
        while (!pending.is_empty() || !net.is_drained()) && cycles < 10_000 {
            for port in 0..16 {
                if let Some(p) = pending.last().copied() {
                    if net.inject(port, p).is_ok() {
                        pending.pop();
                        injected += 1;
                    }
                }
            }
            delivered.extend(net.tick());
            cycles += 1;
        }
        assert_eq!(injected, 200);
        assert_eq!(delivered.len(), 200);
        // Every packet arrived at its own destination.
        for (port, p) in &delivered {
            assert_eq!(*port as u32, p.dest);
        }
        // No duplicates: row ids unique.
        let mut rows: Vec<u32> = delivered.iter().map(|(_, p)| p.row).collect();
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows.len(), 200);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        OmegaNetwork::new(6, 2);
    }

    #[test]
    #[should_panic(expected = "destination out of range")]
    fn bad_destination_panics() {
        let mut net = OmegaNetwork::new(4, 2);
        let _ = net.inject(0, pkt(9));
    }
}
