//! Cycle-level hardware building blocks for the AWB-GCN simulator.
//!
//! These components mirror the modules of the paper's Fig. 7 / Fig. 12
//! block diagrams and are wired together by the *detailed* engine in
//! `awb-accel`:
//!
//! * [`TaskQueue`] — a task queue (TQ) with occupancy tracking and
//!   high-water marking (the paper sizes TQ area by required depth),
//! * [`RoundRobinArbiter`] — the per-PE arbiter selecting among multiple
//!   TQs in TDQ-1,
//! * [`OmegaNetwork`] — the multi-stage interconnect of TDQ-2 with per-stage
//!   buffering and backpressure,
//! * [`MacPipeline`] + [`RawScoreboard`] — the floating-point
//!   multiply-accumulate pipeline and the Read-after-Write hazard tracking
//!   of §3.3,
//! * [`AccumulatorBank`] — the per-PE ACC buffer slice,
//! * [`UtilizationCounter`] — per-PE busy/idle cycle counters backing the
//!   utilization results of Figs. 14/15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
mod arbiter;
mod counters;
mod mac;
mod memory;
mod omega;
mod queue;

pub use acc::AccumulatorBank;
pub use arbiter::RoundRobinArbiter;
pub use counters::{average_utilization, UtilizationCounter};
pub use mac::{MacOp, MacPipeline, RawScoreboard};
pub use memory::{MemoryModel, BYTES_PER_NNZ};
pub use omega::{OmegaNetwork, Packet};
pub use queue::TaskQueue;
