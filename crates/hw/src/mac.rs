/// One multiply-accumulate operation entering a PE: accumulate `product`
/// into output row `row` of the current result column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacOp {
    /// Global output row the product accumulates into.
    pub row: u32,
    /// `a(i,j) * b(j,k)` product value.
    pub product: f32,
}

/// Read-after-Write scoreboard (paper §3.3).
///
/// The pipelined floating-point MAC takes `latency` cycles; a new op that
/// accumulates into a row whose previous accumulation is still in flight
/// would read a stale partial sum. The scoreboard tracks, per row, the
/// cycle at which its last accumulation completes; ops targeting such a row
/// must stall ("similar to the role of the scoreboard for register RaW
/// hazards in processor design").
///
/// # Example
///
/// ```
/// use awb_hw::RawScoreboard;
///
/// let mut sb = RawScoreboard::new(4); // 4-cycle MAC
/// assert_eq!(sb.earliest_issue(7, 10), 10); // row idle: issue now
/// sb.record_issue(7, 10);
/// assert_eq!(sb.earliest_issue(7, 11), 14); // must wait for completion
/// assert_eq!(sb.earliest_issue(8, 11), 11); // other rows unaffected
/// ```
#[derive(Debug, Clone, Default)]
pub struct RawScoreboard {
    latency: u64,
    ready_at: std::collections::HashMap<u32, u64>,
    stalls: u64,
}

impl RawScoreboard {
    /// Creates a scoreboard for a MAC pipeline of the given latency.
    pub fn new(latency: u64) -> Self {
        RawScoreboard {
            latency,
            ready_at: std::collections::HashMap::new(),
            stalls: 0,
        }
    }

    /// Earliest cycle (≥ `now`) at which an op targeting `row` may issue.
    pub fn earliest_issue(&self, row: u32, now: u64) -> u64 {
        self.ready_at.get(&row).copied().unwrap_or(0).max(now)
    }

    /// Records that an op for `row` issued at `cycle`; its result is ready
    /// (and the row free) at `cycle + latency`.
    pub fn record_issue(&mut self, row: u32, cycle: u64) {
        self.ready_at.insert(row, cycle + self.latency);
    }

    /// Convenience: computes the issue cycle for an op arriving at `now`,
    /// records it, and counts any stall.
    pub fn issue(&mut self, row: u32, now: u64) -> u64 {
        let at = self.earliest_issue(row, now);
        if at > now {
            self.stalls += at - now;
        }
        self.record_issue(row, at);
        at
    }

    /// Total stall cycles caused by RaW hazards.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls
    }

    /// Pipeline latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Forgets all in-flight state (between rounds).
    pub fn reset(&mut self) {
        self.ready_at.clear();
    }
}

/// A cycle-stepped pipelined MAC unit of fixed depth.
///
/// Accepts at most one [`MacOp`] per cycle; completed ops emerge `latency`
/// cycles later. The detailed engine couples it with a [`RawScoreboard`].
#[derive(Debug, Clone)]
pub struct MacPipeline {
    latency: usize,
    /// Stage i holds the op issued i+1 cycles ago (`stages[latency-1]` is
    /// about to complete).
    stages: Vec<Option<MacOp>>,
    completed: u64,
}

impl MacPipeline {
    /// Creates a pipeline with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn new(latency: usize) -> Self {
        assert!(latency > 0, "pipeline needs at least one stage");
        MacPipeline {
            latency,
            stages: vec![None; latency],
            completed: 0,
        }
    }

    /// Pipeline depth.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Advances one cycle, optionally issuing a new op, and returns the op
    /// completing this cycle (if any).
    pub fn tick(&mut self, issue: Option<MacOp>) -> Option<MacOp> {
        let out = self.stages.pop().expect("pipeline has stages");
        self.stages.insert(0, issue);
        if out.is_some() {
            self.completed += 1;
        }
        out
    }

    /// True when any stage holds an op.
    pub fn busy(&self) -> bool {
        self.stages.iter().any(|s| s.is_some())
    }

    /// True when an op targeting `row` is in flight (hazard condition).
    pub fn row_in_flight(&self, row: u32) -> bool {
        self.stages.iter().flatten().any(|op| op.row == row)
    }

    /// Ops completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Drains the pipeline, returning remaining ops oldest-first.
    pub fn drain(&mut self) -> Vec<MacOp> {
        let mut out = Vec::new();
        while self.busy() {
            if let Some(op) = self.tick(None) {
                out.push(op);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_no_hazard_across_rows() {
        let mut sb = RawScoreboard::new(6);
        assert_eq!(sb.issue(1, 0), 0);
        assert_eq!(sb.issue(2, 1), 1);
        assert_eq!(sb.issue(3, 2), 2);
        assert_eq!(sb.stall_cycles(), 0);
    }

    #[test]
    fn scoreboard_same_row_stalls_by_latency() {
        let mut sb = RawScoreboard::new(6);
        assert_eq!(sb.issue(5, 0), 0);
        assert_eq!(sb.issue(5, 1), 6);
        assert_eq!(sb.stall_cycles(), 5);
        // Third access chains after the second.
        assert_eq!(sb.issue(5, 7), 12);
    }

    #[test]
    fn scoreboard_reset_clears_state() {
        let mut sb = RawScoreboard::new(4);
        sb.issue(9, 0);
        sb.reset();
        assert_eq!(sb.earliest_issue(9, 1), 1);
    }

    #[test]
    fn pipeline_latency_respected() {
        let mut p = MacPipeline::new(3);
        let op = MacOp {
            row: 1,
            product: 2.0,
        };
        assert_eq!(p.tick(Some(op)), None);
        assert_eq!(p.tick(None), None);
        assert_eq!(p.tick(None), None);
        assert_eq!(p.tick(None), Some(op));
        assert_eq!(p.completed(), 1);
    }

    #[test]
    fn pipeline_sustains_one_per_cycle() {
        let mut p = MacPipeline::new(2);
        let mk = |i: u32| MacOp {
            row: i,
            product: i as f32,
        };
        assert_eq!(p.tick(Some(mk(0))), None);
        assert_eq!(p.tick(Some(mk(1))), None);
        assert_eq!(p.tick(Some(mk(2))), Some(mk(0)));
        assert_eq!(p.tick(Some(mk(3))), Some(mk(1)));
    }

    #[test]
    fn row_in_flight_detection() {
        let mut p = MacPipeline::new(3);
        p.tick(Some(MacOp {
            row: 7,
            product: 1.0,
        }));
        assert!(p.row_in_flight(7));
        assert!(!p.row_in_flight(8));
        p.tick(None);
        p.tick(None);
        p.tick(None);
        assert!(!p.row_in_flight(7));
    }

    #[test]
    fn drain_returns_in_flight_ops_in_order() {
        let mut p = MacPipeline::new(4);
        for i in 0..3 {
            p.tick(Some(MacOp {
                row: i,
                product: 0.0,
            }));
        }
        let drained = p.drain();
        let rows: Vec<u32> = drained.iter().map(|o| o.row).collect();
        assert_eq!(rows, vec![0, 1, 2]);
        assert!(!p.busy());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_latency_panics() {
        MacPipeline::new(0);
    }
}
