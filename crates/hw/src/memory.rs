//! Sparse-matrix-memory (SPMMeM) and dense-column-memory (DCM) model.
//!
//! The paper's Fig. 7 buffers the sparse operand in SPMMeM and the dense
//! operand's current column in DCM. When the operand fits on chip, the
//! distributor can sustain its full rate (`n_pes` non-zeros per cycle);
//! when it does not, every round must re-stream the matrix from off-chip
//! memory and the delivery rate is bounded by that bandwidth instead.
//! This module models exactly that ceiling.
//!
//! The default constants describe the paper's VCU118 board: ~45 MB of
//! usable URAM+BRAM and a DDR4 interface worth ~77 GB/s.

/// Bytes to store one CSC non-zero (f32 value + u32 row index).
pub const BYTES_PER_NNZ: usize = 8;

/// On-chip buffering capacity and off-chip streaming bandwidth.
///
/// # Example
///
/// ```
/// use awb_hw::MemoryModel;
///
/// let mem = MemoryModel::vcu118();
/// // Nell's adjacency (266K nnz) fits on chip: full distributor rate.
/// assert_eq!(mem.delivery_rate_limit(266_000, 1024), 1024);
/// // Full Reddit (23M nnz) does not: the stream throttles.
/// assert!(mem.delivery_rate_limit(23_000_000, 1024) < 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// On-chip buffer capacity in bytes (URAM + BRAM budget for SPMMeM).
    pub on_chip_bytes: usize,
    /// Off-chip bandwidth in bytes per clock cycle.
    pub off_chip_bytes_per_cycle: f64,
}

impl MemoryModel {
    /// The paper's evaluation board: Xilinx VCU118 (~45 MB on-chip RAM,
    /// DDR4 at ~77 GB/s ≈ 280 B/cycle at 275 MHz).
    pub fn vcu118() -> Self {
        MemoryModel {
            on_chip_bytes: 45 << 20,
            off_chip_bytes_per_cycle: 280.0,
        }
    }

    /// An idealized memory with unbounded buffering (the default engine
    /// assumption, matching the paper's reported operating points).
    pub fn unbounded() -> Self {
        MemoryModel {
            on_chip_bytes: usize::MAX,
            off_chip_bytes_per_cycle: f64::INFINITY,
        }
    }

    /// Whether a sparse operand with `nnz` non-zeros fits in SPMMeM.
    pub fn fits_on_chip(&self, nnz: usize) -> bool {
        nnz.saturating_mul(BYTES_PER_NNZ) <= self.on_chip_bytes
    }

    /// Maximum non-zeros the distributor can deliver per cycle for an
    /// operand of `nnz` non-zeros, given the requested rate (`n_pes`).
    ///
    /// On-chip operands get the full rate; off-chip operands are bounded
    /// by the streaming bandwidth (at least 1/cycle so progress is always
    /// possible).
    pub fn delivery_rate_limit(&self, nnz: usize, requested: usize) -> usize {
        if self.fits_on_chip(nnz) {
            requested
        } else {
            let streamed = (self.off_chip_bytes_per_cycle / BYTES_PER_NNZ as f64) as usize;
            streamed.clamp(1, requested)
        }
    }

    /// Cycles to load an operand of `nnz` non-zeros on chip once (the
    /// one-time fill cost when it fits; re-paid per round when it does
    /// not).
    pub fn fill_cycles(&self, nnz: usize) -> u64 {
        if self.off_chip_bytes_per_cycle.is_infinite() {
            return 0;
        }
        ((nnz * BYTES_PER_NNZ) as f64 / self.off_chip_bytes_per_cycle).ceil() as u64
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_throttles() {
        let mem = MemoryModel::unbounded();
        assert!(mem.fits_on_chip(usize::MAX / BYTES_PER_NNZ));
        assert_eq!(mem.delivery_rate_limit(1 << 40, 1024), 1024);
        assert_eq!(mem.fill_cycles(1 << 30), 0);
    }

    #[test]
    fn vcu118_capacity_boundary() {
        let mem = MemoryModel::vcu118();
        let capacity_nnz = mem.on_chip_bytes / BYTES_PER_NNZ;
        assert!(mem.fits_on_chip(capacity_nnz));
        assert!(!mem.fits_on_chip(capacity_nnz + 1));
    }

    #[test]
    fn off_chip_rate_is_bandwidth_bound() {
        let mem = MemoryModel::vcu118();
        // 280 B/cycle / 8 B per nnz = 35 nnz/cycle.
        assert_eq!(mem.delivery_rate_limit(usize::MAX / 16, 1024), 35);
        // Requested rate below the bandwidth limit passes through.
        assert_eq!(mem.delivery_rate_limit(usize::MAX / 16, 16), 16);
    }

    #[test]
    fn rate_never_zero() {
        let mem = MemoryModel {
            on_chip_bytes: 0,
            off_chip_bytes_per_cycle: 0.5,
        };
        assert_eq!(mem.delivery_rate_limit(100, 8), 1);
    }

    #[test]
    fn fill_cycles_rounds_up() {
        let mem = MemoryModel {
            on_chip_bytes: 1 << 20,
            off_chip_bytes_per_cycle: 100.0,
        };
        // 10 nnz * 8 B = 80 B -> 1 cycle; 100 nnz -> 8 cycles.
        assert_eq!(mem.fill_cycles(10), 1);
        assert_eq!(mem.fill_cycles(100), 8);
    }
}
