/// A per-PE slice of the accumulation buffer array (ACC).
///
/// Each PE owns the partial results of the output rows mapped to it; PEs
/// "fetch present partial results of C from ACC, perform the new
/// multiplication task, add to the partial results, and save back to ACC"
/// (paper §3.3). The bank stores one column of `C` at a time (the engine
/// drains it at the end of each round/column).
///
/// # Example
///
/// ```
/// use awb_hw::AccumulatorBank;
///
/// let mut acc = AccumulatorBank::new(4);
/// acc.accumulate(2, 1.5);
/// acc.accumulate(2, 0.5);
/// assert_eq!(acc.get(2), 2.0);
/// let col = acc.drain();
/// assert_eq!(col[2], 2.0);
/// assert_eq!(acc.get(2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccumulatorBank {
    values: Vec<f32>,
    writes: u64,
}

impl AccumulatorBank {
    /// Creates a bank with `slots` local rows, zero-initialized.
    pub fn new(slots: usize) -> Self {
        AccumulatorBank {
            values: vec![0.0; slots],
            writes: 0,
        }
    }

    /// Number of local row slots.
    pub fn slots(&self) -> usize {
        self.values.len()
    }

    /// Adds `value` into local slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn accumulate(&mut self, slot: usize, value: f32) {
        assert!(slot < self.values.len(), "ACC slot {slot} out of range");
        self.values[slot] += value;
        self.writes += 1;
    }

    /// Current partial value in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn get(&self, slot: usize) -> f32 {
        assert!(slot < self.values.len(), "ACC slot {slot} out of range");
        self.values[slot]
    }

    /// Returns the finished column and resets all slots to zero (the
    /// end-of-round synchronization point).
    pub fn drain(&mut self) -> Vec<f32> {
        let out = self.values.clone();
        self.values.iter_mut().for_each(|v| *v = 0.0);
        out
    }

    /// Total accumulate operations performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reads() {
        let mut acc = AccumulatorBank::new(3);
        acc.accumulate(0, 1.0);
        acc.accumulate(0, 2.0);
        acc.accumulate(2, -1.0);
        assert_eq!(acc.get(0), 3.0);
        assert_eq!(acc.get(1), 0.0);
        assert_eq!(acc.get(2), -1.0);
        assert_eq!(acc.writes(), 3);
    }

    #[test]
    fn drain_resets() {
        let mut acc = AccumulatorBank::new(2);
        acc.accumulate(1, 5.0);
        assert_eq!(acc.drain(), vec![0.0, 5.0]);
        assert_eq!(acc.get(1), 0.0);
        assert_eq!(acc.drain(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        AccumulatorBank::new(2).accumulate(2, 1.0);
    }

    #[test]
    fn zero_slot_bank() {
        let mut acc = AccumulatorBank::new(0);
        assert_eq!(acc.slots(), 0);
        assert!(acc.drain().is_empty());
    }
}
