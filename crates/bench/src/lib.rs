//! Shared helpers for the AWB-GCN benchmark harness.
//!
//! Every table/figure of the paper's evaluation has a `harness = false`
//! bench target in `benches/` (see `DESIGN.md` §4 for the index); this
//! library holds what they share: dataset preparation with the scaling
//! policy, design-point execution, and plain-text table rendering.
//!
//! # Scaling policy
//!
//! Full-size Nell/Reddit runs cost 0.8–6.6 G MAC tasks *per design point*.
//! By default the harness runs shape-preserving scaled instances
//! (`AWB_FULL_SCALE=1` overrides):
//!
//! * nodes scale by the dataset's factor below, average degree preserved,
//! * the PE count scales proportionally, so **rows per PE — the parameter
//!   that governs the balancing problem — is unchanged**, and cycle counts
//!   stay comparable to the paper's 1024-PE setup (ideal cycles =
//!   tasks/PEs is scale-invariant).

use awb_accel::{AccelConfig, Design, GcnPlan, GcnRunOutcome, GcnRunner};
use awb_datasets::{DatasetSpec, GeneratedDataset, PaperDataset};
use awb_gcn_model::GcnInput;

/// Deterministic seed used by every bench target.
pub const BENCH_SEED: u64 = 20200417; // AWB-GCN's MICRO-53 submission year-ish

/// The paper's PE count (Table 3).
pub const PAPER_PES: usize = 1024;

/// Default node-scale factor per dataset (1.0 = full size).
pub fn default_scale(dataset: PaperDataset) -> f64 {
    if full_scale_requested() {
        return 1.0;
    }
    match dataset {
        PaperDataset::Cora | PaperDataset::Citeseer | PaperDataset::Pubmed => 1.0,
        PaperDataset::Nell => 0.25,
        PaperDataset::Reddit => 1.0 / 16.0,
    }
}

/// True when the user asked for full-size datasets via `AWB_FULL_SCALE=1`.
pub fn full_scale_requested() -> bool {
    std::env::var("AWB_FULL_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// PE count scaled with the dataset so rows/PE match the paper's setup.
pub fn scaled_pes(scale: f64) -> usize {
    (((PAPER_PES as f64) * scale).round() as usize).max(32)
}

/// A prepared dataset: spec, generated matrices, and inference input.
pub struct BenchDataset {
    /// Which paper dataset this models.
    pub paper: PaperDataset,
    /// Node-scale factor applied.
    pub scale: f64,
    /// PE count matched to the scale.
    pub n_pes: usize,
    /// The scaled spec.
    pub spec: DatasetSpec,
    /// Generated matrices.
    pub data: GeneratedDataset,
    /// Normalized inference input.
    pub input: GcnInput,
}

impl BenchDataset {
    /// Generates the dataset at its default scale.
    ///
    /// # Panics
    ///
    /// Panics on generation failure (a bug, not an input condition — bench
    /// targets have no error channel worth threading).
    pub fn load(paper: PaperDataset) -> Self {
        let scale = default_scale(paper);
        let spec = paper.spec().scaled(scale);
        let data = GeneratedDataset::generate(&spec, BENCH_SEED).expect("dataset generation");
        let input = GcnInput::from_dataset(&data).expect("input assembly");
        BenchDataset {
            paper,
            scale,
            n_pes: scaled_pes(scale),
            spec,
            data,
            input,
        }
    }

    /// Base accelerator config matched to this dataset's scale.
    pub fn base_config(&self) -> AccelConfig {
        let mut b = AccelConfig::builder();
        b.n_pes(self.n_pes);
        b.build().expect("valid config")
    }

    /// The small hop used for this dataset's paper lineup (Nell uses 2/3
    /// hop, everything else 1/2 — paper §5.2).
    pub fn small_hop(&self) -> usize {
        match self.paper {
            PaperDataset::Nell => 2,
            _ => 1,
        }
    }

    /// The paper's five-way design lineup for this dataset.
    pub fn designs(&self) -> [Design; 5] {
        Design::paper_lineup(self.small_hop())
    }

    /// The paper's best design for this dataset (Design D).
    pub fn design_d(&self) -> Design {
        Design::LocalPlusRemote {
            hop: self.small_hop() + 1,
        }
    }

    /// Runs one design point end to end.
    pub fn run_design(&self, design: Design) -> GcnRunOutcome {
        let config = design.apply(self.base_config());
        GcnRunner::new(config).run(&self.input).expect("simulation")
    }

    /// Runs one design point's warm-up and extracts its reusable
    /// [`GcnPlan`] alongside the (cold, tuning-inclusive) outcome. The
    /// warm-up outcome is bit-identical to [`run_design`]; the plan lets
    /// grid code that needs more runs on the same (dataset, design) point
    /// execute them without re-paying tuning.
    pub fn prepare_design(&self, design: Design) -> (GcnPlan, GcnRunOutcome) {
        let config = design.apply(self.base_config());
        GcnRunner::new(config)
            .prepare(&self.input)
            .expect("simulation")
    }
}

/// Renders a plain-text table: header row plus data rows, columns padded.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats large counts as the paper does (`62.3M`, `999.7K`, `257G`).
pub fn human_ops(ops: u64) -> String {
    let v = ops as f64;
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{ops}")
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats a fraction as a percentage with enough significant digits for
/// ultra-sparse densities (the paper prints `0.0073%` for Nell).
pub fn pct_sig(frac: f64) -> String {
    let v = frac * 100.0;
    if v == 0.0 {
        "0%".into()
    } else if v >= 1.0 {
        format!("{v:.1}%")
    } else {
        format!("{v:.4}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_keep_small_datasets_full_size() {
        assert_eq!(default_scale(PaperDataset::Cora), 1.0);
        assert!(default_scale(PaperDataset::Reddit) < 0.1);
    }

    #[test]
    fn scaled_pes_proportional() {
        assert_eq!(scaled_pes(1.0), 1024);
        assert_eq!(scaled_pes(0.25), 256);
        assert_eq!(scaled_pes(1.0 / 16.0), 64);
        assert_eq!(scaled_pes(1e-6), 32);
    }

    #[test]
    fn human_ops_matches_paper_style() {
        assert_eq!(human_ops(999_700), "999.7K");
        assert_eq!(human_ops(62_300_000), "62.3M");
        assert_eq!(human_ops(257_000_000_000), "257.0G");
        assert_eq!(human_ops(42), "42");
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn bench_dataset_loads_smallest() {
        // Cora at full scale is small enough for a unit test.
        let d = BenchDataset::load(PaperDataset::Cora);
        assert_eq!(d.n_pes, 1024);
        assert_eq!(d.spec.nodes, 2708);
        assert_eq!(d.designs()[0], Design::Baseline);
        assert_eq!(d.small_hop(), 1);
    }
}
