//! Reproduces **Fig. 13**: the number of non-zeros per row in the
//! adjacency matrices of Citeseer, Nell, and Reddit, as log-binned
//! histograms (the paper plots the raw series; the histogram shows the
//! same distribution shape compactly).
//!
//! Run: `cargo bench -p awb-bench --bench fig13_row_nnz`

use awb_bench::{render_table, BenchDataset};
use awb_datasets::PaperDataset;
use awb_sparse::profile::{row_nnz_stats, RowNnzHistogram};

fn main() {
    println!("== Fig. 13: non-zeros per row of the adjacency matrices ==\n");
    for dataset in [
        PaperDataset::Citeseer,
        PaperDataset::Nell,
        PaperDataset::Reddit,
    ] {
        let bench = BenchDataset::load(dataset);
        let a = &bench.data.adjacency;
        let stats = row_nnz_stats(a);
        println!(
            "{} ({} rows, {} nnz): max row {} vs mean {:.1} -> imbalance {:.0}x, Gini {:.2}",
            dataset.name(),
            a.rows(),
            a.nnz(),
            stats.max,
            stats.mean,
            stats.imbalance_factor,
            stats.gini
        );
        let hist = RowNnzHistogram::of(a);
        let rows: Vec<Vec<String>> = hist
            .series()
            .into_iter()
            .map(|(edge, count)| {
                let bar_len = ((count as f64 + 1.0).log2() * 3.0) as usize;
                vec![
                    format!("<= {edge}"),
                    format!("{count}"),
                    "#".repeat(bar_len),
                ]
            })
            .collect();
        println!("{}", render_table(&["row nnz", "rows", "log-scale"], &rows));
    }
    println!(
        "Shapes match the paper's Fig. 13: Citeseer is power-law with a short\n\
         tail, Nell has a cluster of extreme hub rows orders of magnitude above\n\
         its median, Reddit is high-degree but comparatively even."
    );
}
