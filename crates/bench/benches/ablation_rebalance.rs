//! Ablations over the design choices DESIGN.md calls out (not a paper
//! table — these quantify the decisions the paper leaves implicit):
//!
//! 1. hop radius sweep (0–4) with and without remote switching,
//! 2. Shuffling-LUT policy: `Sequential` vs `DegreeAware`,
//! 3. PESM tracking window 1–4,
//! 4. initial mapping: `Block` vs `Cyclic`,
//! 5. RaW stall handling: `Park` (stall buffer) vs `Block` (head-of-line),
//! 6. inter-SPMM pipelining on/off.
//!
//! Run on Cora (moderate power-law imbalance) and a scaled Nell (clustered
//! hubs) so both imbalance regimes are covered.
//!
//! Run: `cargo bench -p awb-bench --bench ablation_rebalance`

use awb_accel::{AccelConfig, Design, GcnRunner, MappingKind, SltPolicy, StallMode};
use awb_bench::{pct, render_table, BenchDataset};
use awb_datasets::PaperDataset;
use awb_gcn_model::GcnInput;

fn run(input: &GcnInput, config: AccelConfig) -> (u64, f64) {
    let out = GcnRunner::new(config).run(input).expect("simulation");
    (out.stats.total_cycles(), out.stats.avg_utilization())
}

fn main() {
    println!("== Ablations: rebalancing design choices ==\n");
    for dataset in [PaperDataset::Cora, PaperDataset::Nell] {
        let bench = BenchDataset::load(dataset);
        let base = bench.base_config();
        println!(
            "---- {} ({} PEs, scale {:.3}) ----\n",
            dataset.name(),
            bench.n_pes,
            bench.scale
        );

        // 1. Hop radius sweep.
        let mut rows = Vec::new();
        for hop in 0..=4usize {
            for remote in [false, true] {
                let design = match (hop, remote) {
                    (0, false) => Design::Baseline,
                    (0, true) => Design::LocalPlusRemote { hop: 0 },
                    (h, false) => Design::LocalSharing { hop: h },
                    (h, true) => Design::LocalPlusRemote { hop: h },
                };
                let (cycles, util) = run(&bench.input, design.apply(base.clone()));
                rows.push(vec![
                    format!("{hop}"),
                    if remote { "yes" } else { "no" }.into(),
                    format!("{cycles}"),
                    pct(util),
                ]);
            }
        }
        println!("hop radius sweep:");
        println!(
            "{}",
            render_table(&["hop", "remote", "cycles", "util"], &rows)
        );

        // 2. SLT policy.
        let mut rows = Vec::new();
        for policy in [SltPolicy::Sequential, SltPolicy::DegreeAware] {
            let mut config = Design::LocalPlusRemote { hop: 2 }.apply(base.clone());
            config.slt_policy = policy;
            let (cycles, util) = run(&bench.input, config);
            rows.push(vec![format!("{policy:?}"), format!("{cycles}"), pct(util)]);
        }
        println!("Shuffling-LUT policy (LS2+RS):");
        println!("{}", render_table(&["policy", "cycles", "util"], &rows));

        // 3. Tracking window.
        let mut rows = Vec::new();
        for window in 1..=4usize {
            let mut config = Design::LocalPlusRemote { hop: 2 }.apply(base.clone());
            config.tracking_window = window;
            let (cycles, util) = run(&bench.input, config);
            rows.push(vec![format!("{window}"), format!("{cycles}"), pct(util)]);
        }
        println!("PESM tracking window (LS2+RS):");
        println!("{}", render_table(&["window", "cycles", "util"], &rows));

        // 4. Initial mapping.
        let mut rows = Vec::new();
        for mapping in [MappingKind::Block, MappingKind::Cyclic] {
            for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
                let mut config = design.apply(base.clone());
                config.mapping = mapping;
                let (cycles, util) = run(&bench.input, config);
                rows.push(vec![
                    format!("{mapping:?}"),
                    design.label(),
                    format!("{cycles}"),
                    pct(util),
                ]);
            }
        }
        println!("initial row mapping:");
        println!(
            "{}",
            render_table(&["mapping", "design", "cycles", "util"], &rows)
        );

        // 5. RaW stall handling.
        let mut rows = Vec::new();
        for stall in [StallMode::Park, StallMode::Block] {
            let mut config = Design::LocalPlusRemote { hop: 2 }.apply(base.clone());
            config.stall_mode = stall;
            let (cycles, util) = run(&bench.input, config);
            rows.push(vec![format!("{stall:?}"), format!("{cycles}"), pct(util)]);
        }
        println!("RaW hazard handling (LS2+RS):");
        println!("{}", render_table(&["mode", "cycles", "util"], &rows));

        // 6. Inter-SPMM pipelining.
        let mut rows = Vec::new();
        for pipeline in [true, false] {
            let mut config = Design::LocalPlusRemote { hop: 2 }.apply(base.clone());
            config.pipeline_spmms = pipeline;
            let (cycles, util) = run(&bench.input, config);
            rows.push(vec![
                if pipeline { "on" } else { "off" }.into(),
                format!("{cycles}"),
                pct(util),
            ]);
        }
        println!("inter-SPMM column pipelining (LS2+RS):");
        println!("{}", render_table(&["pipelining", "cycles", "util"], &rows));
        println!();
    }
}
