//! Reproduces **Fig. 9**: the 8-PE toy example of local vs remote workload
//! imbalance. A 16-row, 75%-sparse matrix is processed by 8 PEs (2 rows
//! each); perfectly even non-zeros finish a column in ~2 work-cycles per
//! PE, local imbalance stretches it to ~5, remote imbalance to ~7 — and the
//! rebalancing designs recover the loss.
//!
//! Uses the *detailed* cycle-stepped engine (real task queues, Omega
//! network, MAC pipeline), since this is precisely the component-level
//! scale it exists for.
//!
//! Run: `cargo bench -p awb-bench --bench fig09_imbalance_demo`

use awb_accel::{AccelConfig, Design, DetailedEngine, SpmmEngine, TdqMode};
use awb_bench::render_table;
use awb_sparse::{Coo, Csc, DenseMatrix};

const N_ROWS: usize = 16;
const N_PES: usize = 8;
/// 16x16 at 75% sparsity = 64 non-zeros, 4 per row when balanced.
const NNZ: usize = 64;

/// Perfectly balanced: every row has exactly 4 non-zeros.
fn balanced() -> Csc {
    let mut coo = Coo::new(N_ROWS, N_ROWS);
    for r in 0..N_ROWS {
        for k in 0..4 {
            coo.push(r, (r + 4 * k + 1) % N_ROWS, 1.0).unwrap();
        }
    }
    coo.to_csc()
}

/// Local imbalance (paper Fig. 9-A): counts vary between adjacent rows,
/// but each 4-row neighbourhood holds the same total.
fn local_imbalance() -> Csc {
    let mut coo = Coo::new(N_ROWS, N_ROWS);
    // Row pattern per 4-row group: 10, 4, 1, 1 (total 16 = 4 rows x 4).
    let pattern = [10usize, 4, 1, 1];
    for r in 0..N_ROWS {
        let nnz = pattern[r % 4];
        for k in 0..nnz {
            coo.push(r, (r * 3 + k) % N_ROWS, 1.0).unwrap();
        }
    }
    coo.to_csc()
}

/// Remote imbalance (paper Fig. 9-B): non-zeros concentrated in the first
/// rows — whole neighbourhoods are overloaded.
fn remote_imbalance() -> Csc {
    let mut coo = Coo::new(N_ROWS, N_ROWS);
    // Rows 0..3 hold 14 each (one PE-region drowning), rest hold the rest.
    let mut remaining = NNZ;
    for r in 0..4 {
        for k in 0..14.min(N_ROWS) {
            coo.push(r, (r + k) % N_ROWS, 1.0).unwrap();
            remaining -= 1;
        }
    }
    let light_rows = N_ROWS - 4;
    for r in 4..N_ROWS {
        let nnz = remaining / light_rows; // spread what's left evenly
        for k in 0..nnz {
            coo.push(r, (r * 5 + k) % N_ROWS, 1.0).unwrap();
        }
    }
    coo.to_csc()
}

fn run(a: &Csc, design: Design) -> u64 {
    let config = design.apply(
        AccelConfig::builder()
            .n_pes(N_PES)
            .max_tuning_rounds(8)
            .build()
            .expect("valid config"),
    );
    let b = DenseMatrix::from_vec(N_ROWS, 8, vec![1.0; N_ROWS * 8]).expect("dense B");
    let mut engine = DetailedEngine::new(config, TdqMode::Tdq2);
    let out = engine.run(a, &b, "fig9").expect("simulation");
    // Report the steady-state (post-tuning) cost of one column.
    out.stats.rounds.last().expect("rounds").cycles
}

fn main() {
    println!("== Fig. 9: local and remote imbalance among 8 PEs (16x16, 75% sparse) ==\n");
    let cases: [(&str, Csc); 3] = [
        ("balanced", balanced()),
        ("local imbalance", local_imbalance()),
        ("remote imbalance", remote_imbalance()),
    ];
    let designs = [
        Design::Baseline,
        Design::LocalSharing { hop: 1 },
        Design::LocalPlusRemote { hop: 1 },
    ];
    let mut rows = Vec::new();
    for (name, a) in &cases {
        let mut row = vec![name.to_string(), format!("{}", a.nnz() / N_PES / 2)];
        for design in designs {
            row.push(format!("{}", run(a, design)));
        }
        rows.push(row);
    }
    let table = render_table(
        &["pattern", "ideal work/PE", "Base", "LS1", "LS1+RS"],
        &rows,
    );
    println!("{table}");
    println!(
        "Read per-column cycles down each column: the baseline degrades under\n\
         both imbalance kinds (paper: 2 -> 5 and 7 work-cycles); local sharing\n\
         fixes the local case, and only adding remote switching recovers the\n\
         clustered case — the motivating observation for the whole design.\n\
         (Absolute cycle counts include network fill and MAC drain overheads\n\
         that the paper's idealized example omits.)"
    );
}
