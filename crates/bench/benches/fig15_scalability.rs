//! Reproduces **Fig. 15**: scalability with PE count (paper: 512 / 768 /
//! 1024) for three designs — baseline, local sharing, local sharing plus
//! remote switching — reporting performance, PE utilization, and area.
//!
//! The paper's observation: baseline utilization *drops* as PEs grow
//! (fewer rows per PE average out less imbalance), while the rebalanced
//! designs hold utilization roughly flat and scale near-linearly.
//!
//! PE counts scale with the dataset's node-scale factor (see `awb-bench`)
//! so the rows/PE ratios match the paper's full-size setup.
//!
//! A second, shard-scalability axis (this repo's extension — `DESIGN.md`
//! §7) runs the rebalanced design at the top PE count across 1/2/4/8
//! nnz-balanced column shards: per-device work shrinks, the reported
//! cycles are the critical path over shard devices, and outputs stay
//! bit-identical to the unsharded run. A third axis does the same for the
//! combination phase (`DESIGN.md` §8): `--xw-shards`-style splits of each
//! layer's feature matrix across 1/2/4/8 devices — the side that bounds
//! end-to-end latency once `A` is sharded (`EXPERIMENTS.md` §5).
//!
//! Run: `cargo bench -p awb-bench --bench fig15_scalability`

use awb_accel::{exec, AreaModel, Design, GcnRunner, ShardPolicy};
use awb_bench::{pct, render_table, BenchDataset};
use awb_datasets::PaperDataset;

fn main() {
    println!("== Fig. 15: utilization, performance, area vs PE count ==\n");
    let area_model = AreaModel::paper_default();
    for dataset in PaperDataset::all() {
        let bench = BenchDataset::load(dataset);
        let hop = match dataset {
            PaperDataset::Nell => 3, // paper uses 3-hop for Nell here
            _ => 1,
        };
        // Paper's 512/768/1024, scaled with the dataset.
        let pe_counts: Vec<usize> = [512usize, 768, 1024]
            .iter()
            .map(|&p| ((p as f64 * bench.scale).round() as usize).max(16))
            .collect();
        println!(
            "---- {} (scale {:.3}; PE sweep {:?}; {}-hop sharing) ----",
            dataset.name(),
            bench.scale,
            pe_counts,
            hop
        );
        // The 3×3 grid points are independent simulations: fan them out on
        // the exec substrate (AWB_THREADS workers, deterministic order).
        let grid: Vec<(usize, Design)> = pe_counts
            .iter()
            .flat_map(|&n_pes| {
                [
                    Design::Baseline,
                    Design::LocalSharing { hop },
                    Design::LocalPlusRemote { hop },
                ]
                .into_iter()
                .map(move |design| (n_pes, design))
            })
            .collect();
        let rows = exec::par_map(&grid, |&(n_pes, design)| {
            let mut builder = awb_accel::AccelConfig::builder();
            builder.n_pes(n_pes);
            let config = design.apply(builder.build().expect("valid config"));
            // Prepare once per point; the extracted plan serves a warm
            // request so the steady-state (serving-regime) latency rides
            // along with the classic cold measurement.
            let (plan, out) = GcnRunner::new(config.clone())
                .prepare(&bench.input)
                .expect("simulation");
            let warm = plan.run_input(&bench.input).expect("warm request");
            let tq_slots = out
                .stats
                .spmms()
                .iter()
                .map(|s| s.total_queue_slots())
                .max()
                .unwrap_or(0);
            let area = area_model.breakdown(&config, tq_slots);
            vec![
                format!("{n_pes}"),
                design.label(),
                format!("{}", out.stats.total_cycles()),
                format!("{}", warm.stats.total_cycles()),
                pct(out.stats.avg_utilization()),
                format!("{:.0}", area.total()),
            ]
        });
        println!(
            "{}",
            render_table(
                &[
                    "PEs",
                    "design",
                    "cycles",
                    "warm cycles",
                    "util",
                    "CLB total"
                ],
                &rows
            )
        );

        // ---- shard-scalability axis (top PE count, rebalanced design) ----
        let top_pes = *pe_counts.last().expect("non-empty sweep");
        let shard_counts = [1usize, 2, 4, 8];
        let shard_rows = exec::par_map(&shard_counts, |&shards| {
            let mut builder = awb_accel::AccelConfig::builder();
            builder.n_pes(top_pes).shards(ShardPolicy::Fixed(shards));
            let config = Design::LocalPlusRemote { hop }.apply(builder.build().expect("config"));
            let (plan, out) = GcnRunner::new(config)
                .prepare(&bench.input)
                .expect("sharded simulation");
            let warm = plan.run_input(&bench.input).expect("warm request");
            vec![
                format!("{shards}"),
                format!("{}", out.stats.total_cycles()),
                format!("{}", warm.stats.total_cycles()),
                pct(warm.stats.avg_utilization()),
            ]
        });
        let one_shard_warm: u64 = shard_rows[0][2].parse().expect("cycles parse");
        let shard_rows: Vec<Vec<String>> = shard_rows
            .into_iter()
            .map(|mut row| {
                let warm: u64 = row[2].parse().expect("cycles parse");
                row.push(format!(
                    "{:.2}x",
                    one_shard_warm as f64 / warm.max(1) as f64
                ));
                row
            })
            .collect();
        println!(
            "shard scalability at {top_pes} PEs/device (LS{hop}+RS; cycles = critical path \
             over shard devices):"
        );
        println!(
            "{}",
            render_table(
                &[
                    "shards",
                    "cold cycles",
                    "warm cycles",
                    "warm util",
                    "speedup"
                ],
                &shard_rows
            )
        );

        // ---- combination (X×W) shard axis (top PE count, rebalanced) ----
        let xw_rows = exec::par_map(&shard_counts, |&xw_shards| {
            let mut builder = awb_accel::AccelConfig::builder();
            builder
                .n_pes(top_pes)
                .combination_shards(ShardPolicy::Fixed(xw_shards));
            let config = Design::LocalPlusRemote { hop }.apply(builder.build().expect("config"));
            let (plan, out) = GcnRunner::new(config)
                .prepare(&bench.input)
                .expect("combination-sharded simulation");
            let warm = plan.run_input(&bench.input).expect("warm request");
            vec![
                format!("{xw_shards}"),
                format!("{}", out.stats.total_cycles()),
                format!("{}", warm.stats.total_cycles()),
                pct(warm.stats.avg_utilization()),
            ]
        });
        let one_xw_warm: u64 = xw_rows[0][2].parse().expect("cycles parse");
        let xw_rows: Vec<Vec<String>> = xw_rows
            .into_iter()
            .map(|mut row| {
                let warm: u64 = row[2].parse().expect("cycles parse");
                row.push(format!("{:.2}x", one_xw_warm as f64 / warm.max(1) as f64));
                row
            })
            .collect();
        println!(
            "X*W (combination) shard scalability at {top_pes} PEs/device (LS{hop}+RS; each \
             layer's X re-partitioned per request):"
        );
        println!(
            "{}",
            render_table(
                &[
                    "xw shards",
                    "cold cycles",
                    "warm cycles",
                    "warm util",
                    "speedup"
                ],
                &xw_rows
            )
        );
    }
    println!(
        "Expected shapes (paper): baseline utilization falls with PE count;\n\
         rebalanced designs stay flat and their cycle counts scale down almost\n\
         linearly with PEs."
    );
}
