//! Reproduces **Table 1**: sparsity and dimensions of the matrices in a
//! 2-layer GCN for the five benchmark datasets.
//!
//! The dimensions come from the dataset specs; the densities of `A` and
//! `X1` are *measured* on the generated matrices, and the density of `X2`
//! is measured on the actual hidden features after a forward pass —
//! everything the paper profiles, regenerated end to end.
//!
//! Run: `cargo bench -p awb-bench --bench table1_profile`

use awb_bench::{pct, pct_sig, render_table, BenchDataset};
use awb_datasets::PaperDataset;
use awb_gcn_model::GcnModel;

fn main() {
    println!("== Table 1: sparsity and dimensions of matrices in a 2-layer GCN ==\n");
    let mut rows = Vec::new();
    // Paper's reported values for side-by-side comparison.
    let paper: [(f64, f64, f64); 5] = [
        (0.0018, 0.0127, 0.780),
        (0.0011, 0.0085, 0.891),
        (0.00028, 0.100, 0.776),
        (0.000073, 0.00011, 0.864),
        (0.00043, 0.516, 0.600),
    ];
    for (dataset, (paper_a, paper_x1, paper_x2)) in PaperDataset::all().into_iter().zip(paper) {
        let bench = BenchDataset::load(dataset);
        // Forward pass on the software model yields the real X2 density.
        let fwd = GcnModel::two_layer()
            .forward(&bench.input)
            .expect("forward pass");
        let spec = &bench.spec;
        // The scaled A density target shifts with the scale factor; compare
        // against the scaled spec's own target plus the paper's full-size
        // number for context.
        rows.push(vec![
            dataset.name().to_string(),
            format!("{}", spec.nodes),
            format!("{}/{}/{}", spec.f1, spec.f2, spec.f3),
            pct_sig(bench.data.a_density()),
            pct_sig(if bench.scale < 1.0 {
                spec.a_density
            } else {
                paper_a
            }),
            pct_sig(bench.data.x1_density()),
            pct_sig(paper_x1),
            pct(fwd.x2_density().unwrap_or(0.0)),
            pct(paper_x2),
        ]);
    }
    let table = render_table(
        &[
            "dataset", "nodes", "F1/F2/F3", "A dens", "(target)", "X1 dens", "(paper)", "X2 dens",
            "(paper)",
        ],
        &rows,
    );
    println!("{table}");
    println!(
        "W is dense (100%) by construction, as in the paper. Nell/Reddit run at\n\
         their default scale factors unless AWB_FULL_SCALE=1 (densities are\n\
         adjusted to preserve average degree, see DESIGN.md)."
    );
}
