//! Reproduces **Fig. 14** (all fifteen panels):
//!
//! * **A-E** — overall GCN inference delay (per-layer breakdown) and
//!   average PE utilization for the five designs (Base, two local-sharing
//!   hops, and both hops + remote switching; Nell uses 2/3-hop) on each
//!   dataset,
//! * **F-J** — per-SPMM cycles split into Ideal vs Sync (barrier waiting)
//!   plus per-SPMM utilization,
//! * **K-O** — hardware area normalized to CLBs, split into task-queue
//!   buffering vs everything else, including the §5.2 TQ-depth headline
//!   (Nell layer-1 A×(XW): 65 128 slots in the baseline vs 2 675 in
//!   Design D).
//!
//! Run: `cargo bench -p awb-bench --bench fig14_overall`
//! (`AWB_FULL_SCALE=1` for full-size Nell/Reddit.)

use awb_accel::{exec, AreaModel, GcnRunOutcome};
use awb_bench::{pct, render_table, BenchDataset};
use awb_datasets::PaperDataset;
use std::time::Instant;

fn main() {
    // Paper Fig. 14 A-E utilizations (baseline, best design D).
    let paper_util: [(f64, f64); 5] = [
        (0.53, 0.90),
        (0.71, 0.89),
        (0.69, 0.96),
        (0.13, 0.77),
        (0.92, 0.99),
    ];
    let area_model = AreaModel::paper_default();

    for (dataset, (paper_base, paper_best)) in PaperDataset::all().into_iter().zip(paper_util) {
        let bench = BenchDataset::load(dataset);
        println!(
            "==== {} (scale {:.3}, {} PEs; paper util: base {:.0}% -> best {:.0}%) ====\n",
            dataset.name(),
            bench.scale,
            bench.n_pes,
            paper_base * 100.0,
            paper_best * 100.0
        );
        let designs = bench.designs();
        // The five design points are independent simulations: fan them out
        // on the exec substrate (AWB_THREADS workers, deterministic order).
        let point_start = Instant::now();
        // prepare_design = run_design plus the extracted per-point plan;
        // the Design-D plan feeds the steady-state footer below without
        // re-simulating the point.
        let prepared = exec::par_map(&designs, |d| bench.prepare_design(*d));
        let point_wall = point_start.elapsed();
        let outcomes: Vec<&GcnRunOutcome> = prepared.iter().map(|(_, o)| o).collect();
        let base_cycles = outcomes[0].stats.total_cycles();

        // --- Panel A-E: overall delay + utilization ---
        let mut rows = Vec::new();
        for (design, out) in designs.iter().zip(&outcomes) {
            let l1 = out.stats.layers[0].pipelined_cycles;
            let l2 = out.stats.layers[1].pipelined_cycles;
            rows.push(vec![
                design.label(),
                format!("{}", out.stats.total_cycles()),
                format!("{l1}"),
                format!("{l2}"),
                format!(
                    "{:.2}x",
                    base_cycles as f64 / out.stats.total_cycles() as f64
                ),
                pct(out.stats.avg_utilization()),
                format!("{}", out.stats.ideal_cycles()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "design",
                    "cycles",
                    "layer1",
                    "layer2",
                    "speedup",
                    "util",
                    "lower bound"
                ],
                &rows
            )
        );

        // --- Panel F-J: per-SPMM ideal vs sync ---
        let mut rows = Vec::new();
        for (design, out) in designs.iter().zip(&outcomes) {
            for spmm in out.stats.spmms() {
                rows.push(vec![
                    design.label(),
                    spmm.label.clone(),
                    format!("{}", spmm.ideal_cycles()),
                    format!("{}", spmm.sync_cycles()),
                    pct(spmm.utilization()),
                ]);
            }
        }
        println!(
            "{}",
            render_table(&["design", "SPMM", "ideal", "sync", "util"], &rows)
        );

        // --- Panel K-O: area (CLBs), TQ vs rest ---
        let mut rows = Vec::new();
        for (design, out) in designs.iter().zip(&outcomes) {
            let config = design.apply(bench.base_config());
            let tq_slots = out
                .stats
                .spmms()
                .iter()
                .map(|s| s.total_queue_slots())
                .max()
                .unwrap_or(0);
            let area = area_model.breakdown(&config, tq_slots);
            rows.push(vec![
                design.label(),
                format!("{}", out.stats.max_queue_depth()),
                format!("{tq_slots}"),
                format!("{:.0}", area.task_queues),
                format!("{:.0}", area.non_tq()),
                format!("{:.0}", area.total()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "design",
                    "TQ depth",
                    "TQ slots",
                    "CLB (TQ)",
                    "CLB (other)",
                    "CLB total"
                ],
                &rows
            )
        );
        println!(
            "[{} point: {:.2}s wall for 5 designs, {} threads]\n",
            dataset.name(),
            point_wall.as_secs_f64(),
            exec::num_threads()
        );

        // --- Steady-state serving footer (plan reuse on Design D) ---
        // The panels above measure the *cold* regime (tuning included).
        // Production traffic on a fixed graph runs warm: reuse the best
        // design's already-extracted plan for a warm request.
        let (plan, cold) = &prepared[designs.len() - 1];
        let serve_start = Instant::now();
        let warm = plan.run_input(&bench.input).expect("warm request");
        let warm_wall = serve_start.elapsed();
        println!(
            "[{} steady-state (Design D plan reuse): cold {} cycles -> warm {} cycles \
             ({:.2}x), warm request {:.3}s wall, replay {} hits / {} misses]\n",
            dataset.name(),
            cold.stats.total_cycles(),
            warm.stats.total_cycles(),
            cold.stats.total_cycles() as f64 / warm.stats.total_cycles().max(1) as f64,
            warm_wall.as_secs_f64(),
            plan.replay_hits(),
            plan.replay_misses(),
        );
    }
    println!(
        "Paper cross-checks: rebalancing lifts utilization on every dataset with\n\
         the largest gain on Nell and almost none on Reddit; the mean speedup of\n\
         the best design over the baseline is ~2.7x; TQ depth (and with it total\n\
         area) shrinks when workloads are balanced, while the rebalancing logic\n\
         itself adds only 2.7%/4.3%/1.9% (1-hop/2-hop/remote) to the non-TQ area."
    );
}
