//! Criterion micro-benchmarks of the kernels underlying everything else:
//! reference SpMM, format conversion, simulator task throughput, and the
//! Omega network's cycle rate. Not a paper experiment — this is the
//! engineering dashboard for the repository itself.
//!
//! Run: `cargo bench -p awb-bench --bench kernels`

use awb_accel::{AccelConfig, Design, FastEngine, SpmmEngine};
use awb_datasets::{DatasetSpec, GeneratedDataset};
use awb_hw::{OmegaNetwork, Packet};
use awb_sparse::{spmm, DenseMatrix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_spmm_kernels(c: &mut Criterion) {
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), 5).expect("dataset");
    let a_csc = data.adjacency.to_csc();
    let b = DenseMatrix::from_vec(
        a_csc.cols(),
        16,
        (0..a_csc.cols() * 16).map(|i| (i % 7) as f32).collect(),
    )
    .expect("dense B");
    let macs = spmm::csc_times_dense_macs(&a_csc, &b).unwrap() as u64;

    let mut group = c.benchmark_group("spmm_reference");
    group.throughput(Throughput::Elements(macs));
    group.bench_function("csc_times_dense/cora_a_x16", |bench| {
        bench.iter(|| spmm::csc_times_dense(black_box(&a_csc), black_box(&b)).unwrap())
    });
    group.bench_function("csr_times_dense/cora_a_x16", |bench| {
        bench.iter(|| spmm::csr_times_dense(black_box(&data.adjacency), black_box(&b)).unwrap())
    });
    group.finish();
}

/// Old (per-element `get`/`set`) vs new (slice-accumulate) kernels — the
/// upgrade tracked by ISSUE 2's satellite; both orderings are bit-identical
/// (asserted in `awb_sparse::spmm` tests), so this group is pure speed.
fn bench_kernel_old_vs_new(c: &mut Criterion) {
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), 5).expect("dataset");
    let a_csc = data.adjacency.to_csc();
    let b = DenseMatrix::from_vec(
        a_csc.cols(),
        16,
        (0..a_csc.cols() * 16).map(|i| (i % 7) as f32).collect(),
    )
    .expect("dense B");
    let macs = spmm::csc_times_dense_macs(&a_csc, &b).unwrap() as u64;

    let mut group = c.benchmark_group("kernels_old_vs_new");
    group.throughput(Throughput::Elements(macs));
    group.bench_function("csc_times_dense/naive", |bench| {
        bench.iter(|| spmm::csc_times_dense_naive(black_box(&a_csc), black_box(&b)).unwrap())
    });
    group.bench_function("csc_times_dense/slice", |bench| {
        bench.iter(|| spmm::csc_times_dense(black_box(&a_csc), black_box(&b)).unwrap())
    });
    group.finish();

    // SpGEMM on a smaller graph (dense result is rows x rows).
    let small = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(512), 5).expect("data");
    let a_csr = &small.adjacency;
    let mut group = c.benchmark_group("kernels_old_vs_new");
    group.throughput(Throughput::Elements(a_csr.nnz() as u64));
    group.bench_function("csr_times_csr/naive", |bench| {
        bench.iter(|| spmm::csr_times_csr_naive(black_box(a_csr), black_box(a_csr)).unwrap())
    });
    group.bench_function("csr_times_csr/slice", |bench| {
        bench.iter(|| spmm::csr_times_csr(black_box(a_csr), black_box(a_csr)).unwrap())
    });
    group.finish();
}

/// Blocked (multi-column accumulate, `csc_times_dense_blocked`) vs scalar
/// (one column per pass, `csc_times_dense`) kernels across operand scales
/// and B widths — ISSUE 8's tentpole. Outputs are bit-identical (pinned
/// reduction order, asserted in `awb_sparse::spmm` tests and the blocked
/// proptest), so this group is pure speed; the headline target is ≥1.5×
/// on the Pubmed-shaped operand.
fn bench_blocked_vs_scalar(c: &mut Criterion) {
    let shapes = [
        ("small", DatasetSpec::cora().with_nodes(512)),
        ("medium", DatasetSpec::cora()),
        ("pubmed", DatasetSpec::pubmed()),
    ];
    for (name, spec) in shapes {
        let data = GeneratedDataset::generate(&spec, 5).expect("dataset");
        let a_csc = data.adjacency.to_csc();
        for width in [4usize, 8, 16, 64] {
            let b = DenseMatrix::from_vec(
                a_csc.cols(),
                width,
                (0..a_csc.cols() * width)
                    .map(|i| ((i % 13) as f32) - 6.0)
                    .collect(),
            )
            .expect("dense B");
            let macs = spmm::csc_times_dense_macs(&a_csc, &b).unwrap() as u64;
            let mut group = c.benchmark_group("kernels_blocked_vs_scalar");
            group.throughput(Throughput::Elements(macs));
            group.bench_function(format!("scalar/{name}_x{width}"), |bench| {
                bench.iter(|| spmm::csc_times_dense(black_box(&a_csc), black_box(&b)).unwrap())
            });
            group.bench_function(format!("blocked/{name}_x{width}"), |bench| {
                bench.iter(|| {
                    spmm::csc_times_dense_blocked(black_box(&a_csc), black_box(&b)).unwrap()
                })
            });
            group.finish();
        }
    }
}

fn bench_format_conversion(c: &mut Criterion) {
    let data = GeneratedDataset::generate(&DatasetSpec::pubmed(), 5).expect("dataset");
    let mut group = c.benchmark_group("format_conversion");
    group.throughput(Throughput::Elements(data.adjacency.nnz() as u64));
    group.bench_function("csr_to_csc/pubmed_a", |bench| {
        bench.iter(|| black_box(&data.adjacency).to_csc())
    });
    group.finish();
}

fn bench_fast_engine(c: &mut Criterion) {
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), 5).expect("dataset");
    let a_csc = data.adjacency.to_csc();
    let b = DenseMatrix::from_vec(
        a_csc.cols(),
        16,
        (0..a_csc.cols() * 16).map(|i| (i % 7) as f32).collect(),
    )
    .expect("dense B");
    let tasks = spmm::csc_times_dense_macs(&a_csc, &b).unwrap() as u64;

    let mut group = c.benchmark_group("fast_engine");
    group.throughput(Throughput::Elements(tasks));
    for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
        group.bench_function(format!("cora_a/{}", design.label()), |bench| {
            bench.iter(|| {
                let config = design.apply(AccelConfig::builder().n_pes(1024).build().unwrap());
                FastEngine::new(config)
                    .run(black_box(&a_csc), black_box(&b), "bench")
                    .unwrap()
            })
        });
        // The same design point with the steady-state replay cache off:
        // the pre-ISSUE-2 cost of every round.
        group.bench_function(format!("cora_a/{}/no_replay", design.label()), |bench| {
            bench.iter(|| {
                let config = design.apply(AccelConfig::builder().n_pes(1024).build().unwrap());
                let mut engine = FastEngine::new(config);
                engine.set_replay_enabled(false);
                engine
                    .run(black_box(&a_csc), black_box(&b), "bench")
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_omega_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("omega_network");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("route_4096_uniform/64ports", |bench| {
        bench.iter(|| {
            let mut net = OmegaNetwork::new(64, 4);
            let mut delivered = 0usize;
            let mut next = 0u32;
            let mut injected = 0usize;
            while delivered < 4096 {
                for port in 0..64 {
                    if injected >= 4096 {
                        break;
                    }
                    let pkt = Packet {
                        dest: next % 64,
                        row: next,
                        product: 1.0,
                    };
                    if net.inject(port, pkt).is_ok() {
                        next = next.wrapping_mul(29).wrapping_add(17);
                        injected += 1;
                    }
                }
                delivered += net.tick().len();
            }
            black_box(delivered)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm_kernels,
    bench_kernel_old_vs_new,
    bench_blocked_vs_scalar,
    bench_format_conversion,
    bench_fast_engine,
    bench_omega_network
);
criterion_main!(benches);
