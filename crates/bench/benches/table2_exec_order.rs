//! Reproduces **Table 2**: MAC operations required under the two execution
//! orders `(A×X)×W` vs `A×(X×W)`, per layer and in total, for all five
//! datasets — the analysis behind the paper's §3.1 choice to compute
//! `X×W` first.
//!
//! Counts are analytic from the published Table 1 statistics (exactly how
//! the paper derives them); for the small datasets we also print exact
//! counts measured on generated matrices with the real (measured) `X2`.
//!
//! Run: `cargo bench -p awb-bench --bench table2_exec_order`

use awb_bench::{human_ops, render_table, BenchDataset};
use awb_datasets::PaperDataset;
use awb_gcn_model::ops::{table2_analytic, table2_exact};
use awb_gcn_model::GcnModel;

fn main() {
    println!("== Table 2: operations required under different execution orders ==\n");
    // Paper's ALL-row values (MACs) for comparison.
    let paper_all: [(f64, f64); 5] = [
        (62.8e6, 1.33e6),
        (198.0e6, 2.23e6),
        (165.5e6, 18.6e6),
        (258e9, 782e6),
        (17.1e9, 6.6e9),
    ];
    let mut rows = Vec::new();
    for (dataset, (paper_naive, paper_chosen)) in PaperDataset::all().into_iter().zip(paper_all) {
        let spec = dataset.spec(); // full-size spec: Table 2 is analytic
        let a = table2_analytic(&spec);
        for (layer, ops) in [("L1", a.layer1), ("L2", a.layer2)] {
            rows.push(vec![
                format!("{} {layer}", a.name),
                human_ops(ops.ax_w),
                human_ops(ops.a_xw),
                format!("{:.1}x", ops.ratio()),
                String::new(),
                String::new(),
            ]);
        }
        let total = a.total();
        rows.push(vec![
            format!("{} ALL", a.name),
            human_ops(total.ax_w),
            human_ops(total.a_xw),
            format!("{:.1}x", total.ratio()),
            human_ops(paper_naive as u64),
            human_ops(paper_chosen as u64),
        ]);
    }
    let table = render_table(
        &[
            "dataset",
            "(AxX)xW",
            "Ax(XxW)",
            "ratio",
            "paper naive",
            "paper chosen",
        ],
        &rows,
    );
    println!("{table}");

    println!("-- exact counts on generated matrices (small datasets, measured X2) --\n");
    let mut exact_rows = Vec::new();
    for dataset in [PaperDataset::Cora, PaperDataset::Citeseer] {
        let bench = BenchDataset::load(dataset);
        let fwd = GcnModel::two_layer()
            .forward(&bench.input)
            .expect("forward pass");
        let x2 = fwd.layer_inputs[1].as_ref().expect("2-layer net");
        let exact = table2_exact(
            dataset.name(),
            &bench.input.a_norm,
            &bench.input.x1,
            bench.spec.f2,
            x2,
            bench.spec.f3,
        );
        let total = exact.total();
        exact_rows.push(vec![
            exact.name.clone(),
            human_ops(total.ax_w),
            human_ops(total.a_xw),
            format!("{:.1}x", total.ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(&["dataset", "(AxX)xW", "Ax(XxW)", "ratio"], &exact_rows)
    );
    println!("The chosen order A x (X x W) wins on every dataset, as in the paper.");
}
