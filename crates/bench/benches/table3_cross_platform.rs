//! Reproduces **Table 3**: cross-platform latency, energy efficiency, and
//! frequency for CPU / GPU / EIE-like / FPGA baseline / AWB-GCN across the
//! five datasets, plus the headline mean speedups (paper: 246.7× vs CPU,
//! 78.9× vs GPU, 2.7× vs baseline).
//!
//! CPU/GPU numbers come from the analytic models calibrated to the paper's
//! own Table 3 (see `awb-platforms`); FPGA rows are simulated. Scaled
//! datasets run with proportionally scaled PE arrays, which keeps cycle
//! counts (and hence latency) comparable to the paper's 1024-PE setup
//! (ideal cycles = tasks/PEs is scale-invariant; see `awb-bench` docs).
//!
//! Run: `cargo bench -p awb-bench --bench table3_cross_platform`

use awb_accel::{cycles_to_ms, exec, Design};
use awb_bench::{render_table, BenchDataset};
use awb_datasets::PaperDataset;
use awb_platforms::{workload_spmms, CpuModel, GpuModel, Platform, PlatformResult, SpeedupSummary};

fn main() {
    println!("== Table 3: cross-platform evaluation ==\n");
    // Paper's latency rows (ms) for side-by-side comparison.
    let paper_latency: [(f64, f64, f64, f64, f64); 5] = [
        // (CPU, GPU, EIE, Baseline, AWB)
        (3.90, 1.78, 0.022, 0.023, 0.011),
        (4.33, 2.09, 0.024, 0.025, 0.018),
        (34.15, 7.71, 0.22, 0.23, 0.14),
        (1.61e3, 130.65, 59.1, 61.0, 8.4),
        (1.08e4, 2.43e3, 56.3, 58.9, 53.2),
    ];

    let cpu_model = CpuModel::paper_calibrated();
    let gpu_model = GpuModel::paper_calibrated();
    let mut rows = Vec::new();
    let mut awb = Vec::new();
    let mut cpu = Vec::new();
    let mut gpu = Vec::new();
    let mut baseline = Vec::new();
    let mut eie = Vec::new();

    // Per-dataset work (generation + three simulated designs) is
    // independent: fan the five datasets out on the exec substrate
    // (AWB_THREADS workers, deterministic order), then render sequentially.
    let datasets = PaperDataset::all();
    let simulated = exec::par_map(&datasets, |&dataset| {
        let bench = BenchDataset::load(dataset);
        // All platforms must see the *same* problem: the analytic CPU/GPU
        // models consume the scaled spec's workload, matching what the
        // FPGA designs simulate. (At scale 1.0 this is the paper's exact
        // workload; for scaled Nell/Reddit, compare ratios, not absolute
        // ms, against the paper columns.)
        let workload = workload_spmms(&bench.spec);
        let cpu_ms = cpu_model.latency_ms(&workload);
        let gpu_ms = gpu_model.latency_ms(&workload);

        // Simulated FPGA designs (scaled dataset + scaled PEs). The
        // EIE-like point differs from the baseline only in fields the
        // fast engine never reads (TDQ-1 queues-per-PE) and in the clock
        // used for ms conversion, so the two design points *share one
        // simulation*: run the baseline once and re-clock it for the EIE
        // row — plan/design-point reuse within a dataset.
        let base_run = bench.run_design(Design::Baseline);
        let awb_run = bench.run_design(bench.design_d());
        // Latency extrapolation to full scale: cycle counts are already
        // scale-comparable; only rescale when running scaled instances so
        // the absolute ms can be read against the paper.
        let base_ms = cycles_to_ms(base_run.stats.total_cycles(), 275.0);
        let eie_ms = cycles_to_ms(base_run.stats.total_cycles(), 285.0);
        let awb_ms = cycles_to_ms(awb_run.stats.total_cycles(), 275.0);
        (cpu_ms, gpu_ms, eie_ms, base_ms, awb_ms)
    });

    for ((dataset, paper), (cpu_ms, gpu_ms, eie_ms, base_ms, awb_ms)) in
        datasets.into_iter().zip(paper_latency).zip(simulated)
    {
        let mk = |p: Platform, ms: f64| PlatformResult::new(p, dataset.name(), ms);
        let r_cpu = mk(Platform::Cpu, cpu_ms);
        let r_gpu = mk(Platform::Gpu, gpu_ms);
        let r_eie = mk(Platform::EieLike, eie_ms);
        let r_base = mk(Platform::FpgaBaseline, base_ms);
        let r_awb = mk(Platform::AwbGcn, awb_ms);

        for (r, paper_ms) in [
            (&r_cpu, paper.0),
            (&r_gpu, paper.1),
            (&r_eie, paper.2),
            (&r_base, paper.3),
            (&r_awb, paper.4),
        ] {
            rows.push(vec![
                dataset.name().to_string(),
                r.platform.name().to_string(),
                r.platform.freq_label().to_string(),
                format!("{:.3}", r.latency_ms),
                format!("{paper_ms:.3}"),
                format!("{:.3e}", r.inferences_per_kj),
            ]);
        }
        cpu.push(r_cpu);
        gpu.push(r_gpu);
        eie.push(r_eie);
        baseline.push(r_base);
        awb.push(r_awb);
    }

    let table = render_table(
        &[
            "dataset",
            "platform",
            "freq",
            "latency ms",
            "paper ms",
            "inf/kJ",
        ],
        &rows,
    );
    println!("{table}");

    let summary = SpeedupSummary::from_results(&awb, &cpu, &gpu, &baseline, &eie);
    println!(
        "mean speedups of AWB-GCN:  vs CPU {:.1}x (paper 246.7x) | vs GPU {:.1}x (paper 78.9x) | \
         vs baseline {:.2}x (paper 2.7x) | vs EIE-like {:.2}x",
        summary.vs_cpu, summary.vs_gpu, summary.vs_baseline, summary.vs_eie
    );
    println!(
        "\nNote: scaled Nell/Reddit runs use proportionally scaled PE arrays, so\n\
         simulated FPGA latencies are read against the paper at matched rows/PE;\n\
         set AWB_FULL_SCALE=1 for full-size runs. CPU/GPU columns are analytic\n\
         models calibrated to the paper's own measurements (DESIGN.md §2)."
    );
}
