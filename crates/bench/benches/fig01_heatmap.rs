//! Reproduces **Fig. 1**: non-zero distribution imbalance of the Cora and
//! Pubmed adjacency matrices, rendered as block-census heatmaps plus the
//! row-nnz summary statistics that quantify the imbalance.
//!
//! Run: `cargo bench -p awb-bench --bench fig01_heatmap`

use awb_bench::BenchDataset;
use awb_datasets::PaperDataset;
use awb_sparse::profile::{row_nnz_stats, BlockHeatmap};

fn main() {
    println!("== Fig. 1: adjacency non-zero distribution imbalance ==\n");
    for dataset in [PaperDataset::Cora, PaperDataset::Pubmed] {
        let bench = BenchDataset::load(dataset);
        let a = &bench.data.adjacency;
        let stats = row_nnz_stats(a);
        println!(
            "{}: {} nodes, {} nnz | row nnz: min {} max {} mean {:.1} CV {:.2} Gini {:.2} imbalance {:.0}x",
            dataset.name(),
            a.rows(),
            a.nnz(),
            stats.min,
            stats.max,
            stats.mean,
            stats.cv,
            stats.gini,
            stats.imbalance_factor,
        );
        let map = BlockHeatmap::of(a, 48);
        println!(
            "densest 1% of 48x48 blocks hold {:.1}% of all non-zeros\n",
            map.top_k_concentration(23) * 100.0
        );
        println!("{}", map.render_ascii());
    }
    println!(
        "The paper's point — non-zeros are unevenly distributed and partially\n\
         clustered, so static equal row partitioning cannot balance PEs — is\n\
         visible in both the heatmaps and the Gini/imbalance statistics."
    );
}
