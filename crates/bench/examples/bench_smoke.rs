//! Bench smoke: a quick, CI-friendly engine-throughput measurement that
//! writes a machine-readable `BENCH_engine.json`, seeding the repository's
//! perf trajectory (each PR's CI run leaves a comparable record).
//!
//! Runs the fast engine on the Cora adjacency (the `kernels` bench's
//! `fast_engine` workload) for the baseline and Design-D points, both with
//! the steady-state replay cache and with it disabled, and records tasks,
//! wall-clock, and tasks/second.
//!
//! Usage:
//!   cargo run --release -p awb_bench --example bench_smoke [-- --out PATH]
//!   cargo run --release -p awb_bench --example bench_smoke -- --check PATH
//!
//! `--check` re-reads a previously written file and fails (non-zero exit)
//! if it is malformed: not syntactically valid JSON, or missing the
//! required record fields. CI runs write-then-check.

use awb_accel::{exec, AccelConfig, Design, FastEngine, SpmmEngine};
use awb_bench::BENCH_SEED;
use awb_datasets::{DatasetSpec, GeneratedDataset};
use awb_sparse::DenseMatrix;
use std::time::Instant;

const DEFAULT_PATH: &str = "BENCH_engine.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            check(path);
        }
        Some("--out") => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            write_bench(path);
        }
        None => write_bench(DEFAULT_PATH),
        Some(other) => {
            eprintln!("unknown argument {other}; use --out PATH or --check PATH");
            std::process::exit(2);
        }
    }
}

fn write_bench(path: &str) {
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), BENCH_SEED).expect("dataset");
    let a = data.adjacency.to_csc();
    let b = DenseMatrix::from_vec(
        a.cols(),
        16,
        (0..a.cols() * 16).map(|i| (i % 7) as f32 + 1.0).collect(),
    )
    .expect("dense B");

    let mut records = String::new();
    for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
        for replay in [true, false] {
            let config = design.apply(AccelConfig::builder().n_pes(1024).build().unwrap());
            // Warm once (dataset faults, allocator), measure the second.
            let mut engine = FastEngine::new(config.clone());
            engine.set_replay_enabled(replay);
            engine.run(&a, &b, "warmup").unwrap();
            let mut engine = FastEngine::new(config);
            engine.set_replay_enabled(replay);
            let start = Instant::now();
            let out = engine.run(&a, &b, "smoke").unwrap();
            let wall_s = start.elapsed().as_secs_f64().max(1e-9);
            let tasks = out.stats.total_tasks();
            if !records.is_empty() {
                records.push_str(",\n");
            }
            records.push_str(&format!(
                "    {{\"dataset\": \"cora\", \"design\": \"{}\", \"replay\": {}, \
                 \"n_pes\": 1024, \"tasks\": {}, \"wall_s\": {:.6}, \"tasks_per_s\": {:.1}}}",
                design.label(),
                replay,
                tasks,
                wall_s,
                tasks as f64 / wall_s
            ));
        }
    }

    let json = format!(
        "{{\n  \"schema\": 1,\n  \"bench\": \"engine_throughput\",\n  \"quick\": true,\n  \
         \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
        exec::num_threads(),
        records
    );
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}:\n{json}");
}

fn check(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("BENCH check failed: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_json(&text) {
        eprintln!("BENCH check failed: {path} is not valid JSON: {e}");
        std::process::exit(1);
    }
    for field in [
        "\"bench\"",
        "\"records\"",
        "\"dataset\"",
        "\"design\"",
        "\"tasks\"",
        "\"wall_s\"",
        "\"tasks_per_s\"",
    ] {
        if !text.contains(field) {
            eprintln!("BENCH check failed: {path} lacks required field {field}");
            std::process::exit(1);
        }
    }
    println!("{path}: ok");
}

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// booleans, null). No external crates are available in this build
/// environment, and the smoke file only needs a malformed/not-malformed
/// verdict plus the field checks above.
fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos:?}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos:?}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .map(|_| ())
        .map_err(|_| format!("bad number {token:?} at byte {start}"))
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}
