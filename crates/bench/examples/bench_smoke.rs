//! Bench smoke: a quick, CI-friendly engine-throughput measurement that
//! writes a machine-readable `BENCH_engine.json`, seeding the repository's
//! perf trajectory (each PR's CI run leaves a comparable record).
//!
//! Runs the fast engine on the Cora adjacency (the `kernels` bench's
//! `fast_engine` workload) for the baseline and Design-D points, both with
//! the steady-state replay cache and with it disabled, and records tasks,
//! wall-clock, and tasks/second. A shard axis (schema 3) additionally
//! records the Design-D point executed across 2/4/8 nnz-balanced column
//! shards (`ShardedEngine`), so the trajectory tracks multi-device
//! throughput alongside the single-device records (which carry
//! `"shards": 1`). A combination-shard axis (schema 4) records the
//! Design-D point on the `X × W` workload (the Cora feature matrix times
//! a dense weight block) across 2/4/8 shards; every record carries both
//! `"shards"` and `"xw_shards"`. A serving record (schema 5, `"workload":
//! "serve"`) measures the multi-tenant front-end end to end: a
//! `GcnService` batch on a warm plan cache, recording requests/second
//! plus p50/p95/p99 queue-wait and execute latency and the plan-cache
//! hit/miss counters. A second serving record (schema 6, `"workload":
//! "serve_isolated"`) drives the same warm batch through the
//! fault-tolerant path (`serve_isolated`: per-request `catch_unwind`
//! isolation and the fault hooks) with injection *disabled* — comparing
//! it against the plain serve record gates the "fault hooks are
//! zero-cost when off" requirement. Schema 7 adds the raw-kernel axis:
//! two `"workload": "kernel"` records time the scalar vs blocked
//! (`csc_times_dense_blocked`) accumulate kernels on the Pubmed-shaped
//! operand and report a `"gflops"` MAC rate (2 FLOPs per MAC over
//! `csc_times_dense_macs`), and a `"workload": "serve_arena_off"`
//! record re-runs the warm serving batch with `scratch_reuse` disabled —
//! the per-request-allocation A/B for the plan-owned scratch arenas.
//! Schema 8 adds the strategy axis: every record carries a `"policy"`
//! field (`"manual"` for the hand-specified records), and a `"workload":
//! "auto"` record resolves `StrategyPolicy::Auto` on Cora, measures its
//! warm-path cycles, sweeps the paper lineup post hoc, and records the
//! machine-independent `"auto_best_ratio"` (auto warm cycles over the
//! post-hoc best point's) — gated warn-only when it exceeds 1.10.
//! An out-of-core record (schema 9, `"workload"`: `"streamed"`) runs the
//! Design-D point on Pubmed from a chunked on-disk store under a host
//! budget a third of the resident adjacency, recording resident-peak
//! bytes, exact store-read bytes, and the prefetch overlap fraction —
//! warn-only in the compare gate like the other end-to-end records.
//! Every record carries `"workload"` (`"spmm"` for the engine records)
//! and the compare gate matches on (workload, design, replay, shards,
//! xw_shards); `"spmm"` and `"kernel"` records gate hard (`"kernel"`
//! records normalize by their own run's scalar rate, so the gated
//! quantity is the blocked/scalar speedup ratio), serve and auto records
//! are excluded from the machine-speed geomean and only *warn* on
//! throughput, p95, or ratio drift (end-to-end wall-clock is noisier
//! than the kernel records).
//!
//! Usage:
//!   cargo run --release -p awb_bench --example bench_smoke [-- --out PATH]
//!   cargo run --release -p awb_bench --example bench_smoke -- --check PATH
//!   cargo run --release -p awb_bench --example bench_smoke -- --compare FRESH BASELINE
//!
//! `--check` re-reads a previously written file and fails (non-zero exit)
//! if it is malformed: not syntactically valid JSON, or missing the
//! required record fields. `--compare` diffs a freshly written record
//! against the committed baseline, failing on a > 20% throughput
//! regression in any matched (design, replay) record and warning (only)
//! on replay hit-rate drift. CI runs write-then-check-then-compare.

use awb_accel::{
    exec, AccelConfig, Design, DesignSweep, FastEngine, GcnRunner, GcnService, LatencyPercentiles,
    ShardPolicy, ShardedEngine, SpmmEngine, StrategyPolicy,
};
use awb_bench::BENCH_SEED;
use awb_datasets::{DatasetSpec, GeneratedDataset};
use awb_gcn_model::GcnInput;
use awb_sparse::{spmm, Csc, DenseMatrix};
use std::time::Instant;

const DEFAULT_PATH: &str = "BENCH_engine.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            check(path);
        }
        Some("--compare") => {
            let fresh = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            let baseline = args.get(2).map(String::as_str).unwrap_or(DEFAULT_PATH);
            compare(fresh, baseline);
        }
        Some("--out") => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);
            write_bench(path);
        }
        None => write_bench(DEFAULT_PATH),
        Some(other) => {
            eprintln!("unknown argument {other}; use --out PATH or --check PATH");
            std::process::exit(2);
        }
    }
}

/// Engines the smoke protocol can measure: any [`SpmmEngine`] exposing
/// its replay counters.
trait SmokeEngine: SpmmEngine {
    fn counters(&self) -> (u64, u64);
}

impl SmokeEngine for FastEngine {
    fn counters(&self) -> (u64, u64) {
        (self.replay_hits(), self.replay_misses())
    }
}

impl SmokeEngine for ShardedEngine {
    fn counters(&self) -> (u64, u64) {
        (self.replay_hits(), self.replay_misses())
    }
}

/// One measured point (the fields every record serializes).
struct Measured {
    tasks: u64,
    wall_s: f64,
    hits: u64,
    misses: u64,
}

/// The measurement protocol shared by every record: warm once (dataset
/// faults, allocator), then keep the best of three timed fresh-engine
/// runs — a single ms-scale sample is noisy enough (scheduler
/// contention) to destabilize the CI compare gate; best-of is robust to
/// slow outliers.
fn best_of_three<E: SmokeEngine>(make: impl Fn() -> E, a: &Csc, b: &DenseMatrix) -> Measured {
    make().run(a, b, "warmup").unwrap();
    let mut m = Measured {
        tasks: 0,
        wall_s: f64::MAX,
        hits: 0,
        misses: 0,
    };
    for _ in 0..3 {
        let mut engine = make();
        let start = Instant::now();
        let out = engine.run(a, b, "smoke").unwrap();
        m.wall_s = m.wall_s.min(start.elapsed().as_secs_f64().max(1e-9));
        m.tasks = out.stats.total_tasks();
        (m.hits, m.misses) = engine.counters();
    }
    m
}

/// The engine record template (schema 5): both shard axes plus the
/// workload discriminator in every record; schema 8 stamps the strategy
/// policy (these records all hand-specify their configuration).
fn record(design: Design, replay: bool, shards: usize, xw_shards: usize, m: &Measured) -> String {
    format!(
        "    {{\"dataset\": \"cora\", \"design\": \"{}\", \"replay\": {replay}, \
         \"shards\": {shards}, \"xw_shards\": {xw_shards}, \"workload\": \"spmm\", \
         \"policy\": \"manual\", \"n_pes\": 1024, \"tasks\": {}, \
         \"wall_s\": {:.6}, \"tasks_per_s\": {:.1}, \"replay_hits\": {}, \"replay_misses\": {}}}",
        design.label(),
        m.tasks,
        m.wall_s,
        m.tasks as f64 / m.wall_s,
        m.hits,
        m.misses
    )
}

/// Shared setup for the serving records: the Cora graph plus an 8-request
/// feature stream on a warmed `GcnService`. `scratch_reuse` selects the
/// arena-on/arena-off A/B (schema 7).
fn serve_fixture(scratch_reuse: bool) -> (GcnInput, Vec<awb_sparse::Csr>, GcnService) {
    let design = Design::LocalPlusRemote { hop: 2 };
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), BENCH_SEED).expect("dataset");
    let input = GcnInput::from_dataset(&data).expect("gcn input");
    let config = design.apply(
        AccelConfig::builder()
            .n_pes(1024)
            .scratch_reuse(scratch_reuse)
            .build()
            .unwrap(),
    );
    let requests: Vec<_> = (0..8)
        .map(|i| {
            if i == 0 {
                input.x1.clone()
            } else {
                GeneratedDataset::with_adjacency(
                    &data.spec,
                    data.adjacency.clone(),
                    BENCH_SEED + i as u64,
                )
                .expect("request features")
                .features
            }
        })
        .collect();
    let service = GcnService::new(config);
    (input, requests, service)
}

/// Serializes a serving measurement under its workload discriminator.
#[allow(clippy::too_many_arguments)]
fn serve_json(
    workload: &str,
    tasks: usize,
    wall_s: f64,
    wait: &LatencyPercentiles,
    exec_p: &LatencyPercentiles,
    hits: u64,
    misses: u64,
) -> String {
    format!(
        "    {{\"dataset\": \"cora\", \"design\": \"{}\", \"replay\": true, \
         \"shards\": 1, \"xw_shards\": 1, \"workload\": \"{workload}\", \
         \"policy\": \"manual\", \"n_pes\": 1024, \
         \"tasks\": {tasks}, \"wall_s\": {wall_s:.6}, \"tasks_per_s\": {:.1}, \
         \"p50_wait_ms\": {:.3}, \"p95_wait_ms\": {:.3}, \"p99_wait_ms\": {:.3}, \
         \"p50_exec_ms\": {:.3}, \"p95_exec_ms\": {:.3}, \"p99_exec_ms\": {:.3}, \
         \"cache_hits\": {hits}, \"cache_misses\": {misses}}}",
        Design::LocalPlusRemote { hop: 2 }.label(),
        tasks as f64 / wall_s,
        wait.p50 * 1e3,
        wait.p95 * 1e3,
        wait.p99 * 1e3,
        exec_p.p50 * 1e3,
        exec_p.p95 * 1e3,
        exec_p.p99 * 1e3,
    )
}

/// The serving record (schema 5): the multi-tenant front-end measured end
/// to end on a warm plan cache. `tasks` is the request count and
/// `tasks_per_s` is requests/second; the percentile fields are
/// milliseconds. The schema-7 `"serve_arena_off"` twin runs the identical
/// batch with `scratch_reuse` disabled — the gap between the two records
/// is the end-to-end cost of per-request scratch allocation.
fn serve_record(workload: &str, scratch_reuse: bool) -> String {
    let (input, requests, mut service) = serve_fixture(scratch_reuse);
    // Warm batch pays the prepare (the cache miss); the timed batch runs
    // on a warm cache — the steady serving state the record tracks.
    service.serve_graph(&input, &requests).expect("warm batch");
    let start = Instant::now();
    let batch = service.serve_graph(&input, &requests).expect("timed batch");
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let wait = batch.queue_wait_percentiles();
    let exec_p = batch.execute_percentiles();
    let stats = service.cache_stats();
    serve_json(
        workload,
        batch.requests.len(),
        wall_s,
        &wait,
        &exec_p,
        stats.hits,
        stats.misses,
    )
}

/// The fault-tolerant serving record (schema 6): the identical warm batch
/// driven through `serve_isolated` — per-request `catch_unwind` isolation,
/// ingest validation, and the fault hooks all present but with injection
/// *disabled*. Comparing its requests/second against the `"serve"` record
/// measures the cost of the fault-tolerance layer when off (required:
/// within noise).
fn serve_isolated_record() -> String {
    let (input, requests, mut service) = serve_fixture(true);
    service.prepare("cora", &input).expect("prepare");
    service
        .serve_isolated("cora", &requests)
        .expect("warm batch");
    let start = Instant::now();
    let batch = service
        .serve_isolated("cora", &requests)
        .expect("timed batch");
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        batch.failed_count(),
        0,
        "no faults are armed: every slot must complete"
    );
    let wait = LatencyPercentiles::from_samples(batch.completed().map(|r| r.queue_wait_s));
    let exec_p = LatencyPercentiles::from_samples(batch.completed().map(|r| r.wall_s));
    let tasks = batch.results.len();
    let stats = service.cache_stats();
    serve_json(
        "serve_isolated",
        tasks,
        wall_s,
        &wait,
        &exec_p,
        stats.hits,
        stats.misses,
    )
}

/// The raw-kernel records (schema 7): scalar vs blocked accumulate on the
/// Pubmed-shaped operand — the tentpole speedup the trajectory tracks.
/// `tasks` is the MAC count, `"gflops"` the MAC rate at 2 FLOPs per MAC
/// (multiply + accumulate); the `"design"` field names the kernel.
fn kernel_records() -> Vec<String> {
    let data = GeneratedDataset::generate(&DatasetSpec::pubmed(), BENCH_SEED).expect("dataset");
    let a = data.adjacency.to_csc();
    let b = DenseMatrix::from_vec(
        a.cols(),
        16,
        (0..a.cols() * 16)
            .map(|i| ((i % 11) as f32) - 5.0)
            .collect(),
    )
    .expect("dense B");
    let macs = spmm::csc_times_dense_macs(&a, &b).expect("mac count") as u64;
    let time3 = |kernel: &dyn Fn() -> DenseMatrix| -> f64 {
        std::hint::black_box(kernel());
        let mut best = f64::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            let out = kernel();
            best = best.min(start.elapsed().as_secs_f64().max(1e-9));
            std::hint::black_box(&out);
        }
        best
    };
    let emit = |kernel: &str, wall_s: f64| -> String {
        format!(
            "    {{\"dataset\": \"pubmed\", \"design\": \"{kernel}\", \"replay\": false, \
             \"shards\": 1, \"xw_shards\": 1, \"workload\": \"kernel\", \
             \"policy\": \"manual\", \"n_pes\": 1, \
             \"tasks\": {macs}, \"wall_s\": {wall_s:.6}, \"tasks_per_s\": {:.1}, \
             \"gflops\": {:.3}}}",
            macs as f64 / wall_s,
            2.0 * macs as f64 / wall_s / 1e9,
        )
    };
    vec![
        emit(
            "scalar",
            time3(&|| spmm::csc_times_dense(&a, &b).expect("scalar kernel")),
        ),
        emit(
            "blocked",
            time3(&|| spmm::csc_times_dense_blocked(&a, &b).expect("blocked kernel")),
        ),
    ]
}

/// The Auto-strategy record (schema 8): resolve `StrategyPolicy::Auto` on
/// Cora, measure the chosen plan's warm-path cycles, sweep the paper
/// lineup post hoc at the same PE count, and record auto-vs-best as the
/// machine-independent cycle ratio `"auto_best_ratio"` (compare warns —
/// never fails — when it exceeds the 1.10 honesty bound).
fn auto_record() -> String {
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), BENCH_SEED).expect("dataset");
    let input = GcnInput::from_dataset(&data).expect("gcn input");
    let base = AccelConfig::builder().n_pes(1024).build().expect("config");
    let points = DesignSweep::new()
        .pe_counts(vec![base.n_pes])
        .base_config(base.clone())
        .run(&input)
        .expect("post-hoc sweep");
    let best = points
        .iter()
        .map(|p| p.warm_cycles)
        .min()
        .expect("sweep points")
        .max(1);
    let mut auto_cfg = base;
    auto_cfg.strategy = StrategyPolicy::Auto;
    let decision = GcnRunner::new(auto_cfg.clone())
        .resolve_strategy(&input)
        .expect("auto decision");
    let (plan, _) = GcnRunner::new(auto_cfg).prepare(&input).expect("prepare");
    let start = Instant::now();
    let warm = plan.run_input(&input).expect("warm run");
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let cycles = warm.stats.total_cycles();
    format!(
        "    {{\"dataset\": \"cora\", \"design\": \"auto\", \"replay\": true, \
         \"shards\": 1, \"xw_shards\": 1, \"workload\": \"auto\", \"policy\": \"auto\", \
         \"n_pes\": 1024, \"tasks\": {cycles}, \"wall_s\": {wall_s:.6}, \
         \"tasks_per_s\": {:.1}, \"chosen\": \"{}\", \"predicted_cycles\": {:.1}, \
         \"auto_best_ratio\": {:.4}}}",
        cycles as f64 / wall_s,
        decision.label(),
        decision.predicted_cycles,
        cycles as f64 / best as f64,
    )
}

/// The out-of-core record (schema 9): the Design-D point on Pubmed
/// streamed from a chunked on-disk store, best-of-three cold runs under a
/// host budget a third of the resident adjacency (so the pipeline must
/// shard). Residency and overlap ride along; the compare gate treats the
/// `"streamed"` workload warn-only like the other end-to-end records.
fn streamed_record() -> String {
    let design = Design::LocalPlusRemote { hop: 2 };
    let data = GeneratedDataset::generate(&DatasetSpec::pubmed(), BENCH_SEED).expect("dataset");
    let input = GcnInput::from_dataset(&data).expect("gcn input");
    let budget = (input.a_norm_csc.heap_bytes() / 3).max(1);
    let dir = std::env::temp_dir().join(format!("awb-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // Two host workers so the prefetch lane genuinely runs beside compute
    // (file I/O blocks off-CPU, so this overlaps even on one core).
    let mut builder = AccelConfig::builder();
    builder.n_pes(1024).threads(Some(2));
    let mut config = design.apply(builder.build().expect("config"));
    config.store = Some(dir.clone());
    config.host_mem_budget = Some(budget);
    let runner = GcnRunner::new(config);
    // First run writes the store; the timed runs below stream it.
    runner.run(&input).expect("store ingest");
    let mut wall_s = f64::MAX;
    let mut last = None;
    for _ in 0..3 {
        let start = Instant::now();
        let out = runner.run(&input).expect("streamed run");
        wall_s = wall_s.min(start.elapsed().as_secs_f64().max(1e-9));
        last = Some(out);
    }
    let out = last.expect("measured runs");
    let stream = out.stream.expect("streamed stats");
    let cycles = out.stats.total_cycles();
    std::fs::remove_dir_all(&dir).ok();
    format!(
        "    {{\"dataset\": \"pubmed\", \"design\": \"{}\", \"replay\": true, \
         \"shards\": {}, \"xw_shards\": 1, \"workload\": \"streamed\", \
         \"policy\": \"manual\", \"n_pes\": 1024, \"tasks\": {cycles}, \
         \"wall_s\": {wall_s:.6}, \"tasks_per_s\": {:.1}, \
         \"resident_peak_bytes\": {}, \"io_bytes\": {}, \"overlap_fraction\": {:.4}}}",
        design.label(),
        stream.shards,
        cycles as f64 / wall_s,
        stream.resident_peak_bytes,
        stream.io_bytes,
        stream.overlap_fraction(),
    )
}

fn write_bench(path: &str) {
    let data = GeneratedDataset::generate(&DatasetSpec::cora(), BENCH_SEED).expect("dataset");
    let a = data.adjacency.to_csc();
    let b = DenseMatrix::from_vec(
        a.cols(),
        16,
        (0..a.cols() * 16).map(|i| (i % 7) as f32 + 1.0).collect(),
    )
    .expect("dense B");

    let mut records: Vec<String> = Vec::new();
    for design in [Design::Baseline, Design::LocalPlusRemote { hop: 2 }] {
        for replay in [true, false] {
            let config = design.apply(AccelConfig::builder().n_pes(1024).build().unwrap());
            let m = best_of_three(
                || {
                    let mut engine = FastEngine::new(config.clone());
                    engine.set_replay_enabled(replay);
                    engine
                },
                &a,
                &b,
            );
            records.push(record(design, replay, 1, 1, &m));
        }
    }

    // Shard-scalability axis: the Design-D point across 2/4/8 nnz-balanced
    // column shards, one ShardedEngine device set per record (the 1-shard
    // point is the single-device Design-D record above).
    let design = Design::LocalPlusRemote { hop: 2 };
    for shards in [2usize, 4, 8] {
        let mut builder = AccelConfig::builder();
        builder.n_pes(1024).shards(ShardPolicy::Fixed(shards));
        let config = design.apply(builder.build().expect("valid config"));
        let m = best_of_three(|| ShardedEngine::new(config.clone()), &a, &b);
        records.push(record(design, true, shards, 1, &m));
    }

    // Combination-shard axis (schema 4): the Design-D point on the X×W
    // workload — the Cora feature matrix times a dense weight block —
    // across 2/4/8 nnz-balanced column shards of X. No 1-shard X×W record
    // is written: its key (shards=1, xw_shards=1) already names the A×B
    // single-device records, and unsharded X×W runs the same FastEngine
    // path those records gate — so these records track the *sharded*
    // X×W trajectory, not a speedup ratio within the file.
    let x1 = data.features.to_csc();
    let w = DenseMatrix::from_vec(
        x1.cols(),
        16,
        (0..x1.cols() * 16).map(|i| (i % 5) as f32 + 1.0).collect(),
    )
    .expect("dense W");
    for xw_shards in [2usize, 4, 8] {
        let mut builder = AccelConfig::builder();
        builder
            .n_pes(1024)
            .combination_shards(ShardPolicy::Fixed(xw_shards));
        let config = design.apply(builder.build().expect("valid config"));
        let partitioner = config.combination_partitioner();
        let m = best_of_three(
            || ShardedEngine::with_partitioner(config.clone(), partitioner),
            &x1,
            &w,
        );
        records.push(record(design, true, 1, xw_shards, &m));
    }

    // Raw-kernel axis (schema 7): scalar vs blocked accumulate MAC rates
    // on the Pubmed-shaped operand.
    records.extend(kernel_records());

    // Serving axis (schema 5): the multi-tenant front-end on a warm plan
    // cache — end-to-end requests/second plus latency percentiles.
    records.push(serve_record("serve", true));

    // Arena A/B (schema 7): the same warm batch with scratch pooling off.
    records.push(serve_record("serve_arena_off", false));

    // Fault-tolerance axis (schema 6): the same warm batch through the
    // isolated path with injection disabled — the zero-cost-off gate.
    records.push(serve_isolated_record());

    // Strategy axis (schema 8): Auto's pick vs the post-hoc best sweep
    // point, as a machine-independent warm-cycle ratio.
    records.push(auto_record());

    // Out-of-core axis (schema 9): the streamed Design-D point with
    // residency and prefetch-overlap accounting.
    records.push(streamed_record());

    let json = format!(
        "{{\n  \"schema\": 9,\n  \"bench\": \"engine_throughput\",\n  \"quick\": true,\n  \
         \"threads\": {},\n  \"records\": [\n{}\n  ]\n}}\n",
        exec::num_threads(),
        records.join(",\n")
    );
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}:\n{json}");
}

fn check(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("BENCH check failed: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_json(&text) {
        eprintln!("BENCH check failed: {path} is not valid JSON: {e}");
        std::process::exit(1);
    }
    for field in [
        "\"bench\"",
        "\"records\"",
        "\"dataset\"",
        "\"design\"",
        "\"shards\"",
        "\"xw_shards\"",
        "\"workload\"",
        "\"tasks\"",
        "\"wall_s\"",
        "\"tasks_per_s\"",
        "\"p95_exec_ms\"",
        "\"gflops\"",
        "\"policy\"",
        "\"auto_best_ratio\"",
        "\"resident_peak_bytes\"",
        "\"overlap_fraction\"",
    ] {
        if !text.contains(field) {
            eprintln!("BENCH check failed: {path} lacks required field {field}");
            std::process::exit(1);
        }
    }
    println!("{path}: ok");
}

/// One parsed bench record (the fields `--compare` consumes).
#[derive(Debug, Clone, PartialEq)]
struct Record {
    design: String,
    replay: bool,
    /// Aggregation-side column-shard devices (1 for records predating
    /// schema 3).
    shards: u64,
    /// Combination-side (X×W) column-shard devices (1 for records
    /// predating schema 4).
    xw_shards: u64,
    /// `"spmm"` for the engine records, `"serve"` for the end-to-end
    /// serving record (`"spmm"` for records predating schema 5).
    workload: String,
    tasks_per_s: f64,
    /// Hit rate `hits / (hits + misses)`, None when the record predates
    /// schema 2 or no steady-state round consulted the cache.
    hit_rate: Option<f64>,
    /// p95 execute latency in ms, serve records only (schema 5).
    p95_exec_ms: Option<f64>,
    /// Auto warm cycles over the post-hoc best sweep point's, `"auto"`
    /// records only (schema 8). Machine-independent; warned on, never
    /// gated.
    auto_best_ratio: Option<f64>,
}

/// Extracts the records of a bench file (one JSON object per line, as
/// written by `write_bench`; field extraction is textual — no JSON crate
/// is available offline, and `--check` already validated syntax).
fn parse_records(text: &str, path: &str) -> Vec<Record> {
    let mut records = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"dataset\"")) {
        let field = |key: &str| -> Option<&str> {
            let tag = format!("\"{key}\":");
            let rest = &line[line.find(&tag)? + tag.len()..];
            let rest = rest.trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        };
        let (Some(design), Some(replay), Some(tps)) =
            (field("design"), field("replay"), field("tasks_per_s"))
        else {
            eprintln!("BENCH compare: skipping unparsable record in {path}: {line}");
            continue;
        };
        let hit_rate = match (
            field("replay_hits").and_then(|v| v.parse::<f64>().ok()),
            field("replay_misses").and_then(|v| v.parse::<f64>().ok()),
        ) {
            (Some(h), Some(m)) if h + m > 0.0 => Some(h / (h + m)),
            _ => None,
        };
        let shards = field("shards")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        let xw_shards = field("xw_shards")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        records.push(Record {
            design: design.to_string(),
            replay: replay == "true",
            shards,
            xw_shards,
            workload: field("workload").unwrap_or("spmm").to_string(),
            tasks_per_s: tps.parse().unwrap_or(0.0),
            hit_rate,
            p95_exec_ms: field("p95_exec_ms").and_then(|v| v.parse().ok()),
            auto_best_ratio: field("auto_best_ratio").and_then(|v| v.parse().ok()),
        });
    }
    records
}

/// Relative throughput drop that fails the comparison.
const REGRESSION_THRESHOLD: f64 = 0.20;
/// Absolute hit-rate drift that triggers the (warn-only) notice.
const HIT_RATE_DRIFT: f64 = 0.01;
/// Normalized p95-execute-latency growth (serve records) that triggers
/// the warn-only notice.
const P95_DRIFT_RATIO: f64 = 1.5;
/// Auto-vs-post-hoc-best warm-cycle ratio (auto records) beyond which the
/// warn-only honesty notice fires — mirrors the `auto_strategy` test's
/// 10% bound.
const AUTO_RATIO_BOUND: f64 = 1.10;

/// Geometric mean of the *engine* (`"spmm"`) records' throughputs — the
/// run's "machine speed" scalar used to normalize before gating. Serve
/// and raw-kernel records are excluded: their requests/second and MAC
/// rates live on different scales than engine tasks/second and would
/// skew the normalizer.
fn geomean_tps(records: &[Record]) -> f64 {
    let spmm: Vec<f64> = records
        .iter()
        .filter(|r| r.workload == "spmm")
        .map(|r| r.tasks_per_s.max(1e-9).ln())
        .collect();
    if spmm.is_empty() {
        return 1.0;
    }
    (spmm.iter().sum::<f64>() / spmm.len() as f64).exp()
}

/// The run's scalar-kernel MAC rate — the normalizer for the raw-kernel
/// records. Kernel wall-clock does not covary with the engine records'
/// (they time different code at a different moment of the process), so
/// normalizing the blocked record by its *own run's* scalar record
/// cancels machine speed exactly: the gated quantity is the blocked/scalar
/// speedup ratio, the invariant the records exist to protect. Falls back
/// to the spmm geomean for files predating schema 7.
fn kernel_norm(records: &[Record], fallback: f64) -> f64 {
    records
        .iter()
        .find(|r| r.workload == "kernel" && r.design == "scalar")
        .map(|r| r.tasks_per_s.max(1e-9))
        .unwrap_or(fallback)
}

/// Diffs `fresh` against `baseline`: exits non-zero when any matched
/// (design, replay, shards, xw_shards) record lost more than 20%
/// *normalized* throughput.
///
/// Each record's tasks/s is divided by its own run's geometric-mean
/// tasks/s before comparing, so a uniformly faster/slower machine (the
/// committed baseline comes from a different host than the CI runner)
/// cancels out and the gate measures the code's relative performance
/// profile, not the hardware. The blind spot — a perfectly uniform
/// slowdown across every record — is indistinguishable from a slower
/// machine by construction; absolute drops are still printed and warned
/// about. Hit-rate drift also only warns (wall-clock is noisy, hit
/// counts are not — a drift means caching behaviour itself changed).
fn compare(fresh_path: &str, baseline_path: &str) {
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("BENCH compare failed: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let fresh = parse_records(&read(fresh_path), fresh_path);
    let baseline = parse_records(&read(baseline_path), baseline_path);
    if fresh.is_empty() || baseline.is_empty() {
        eprintln!("BENCH compare failed: no records ({fresh_path} / {baseline_path})");
        std::process::exit(1);
    }
    let fresh_mean = geomean_tps(&fresh);
    let base_mean = geomean_tps(&baseline);
    let fresh_kernel = kernel_norm(&fresh, fresh_mean);
    let base_kernel = kernel_norm(&baseline, base_mean);
    println!(
        "machine-speed normalizer (geomean tasks/s): baseline {base_mean:.1}, fresh {fresh_mean:.1}"
    );
    let mut regressions = 0usize;
    let mut matched = 0usize;
    for base in &baseline {
        let Some(now) = fresh.iter().find(|r| {
            r.design == base.design
                && r.replay == base.replay
                && r.shards == base.shards
                && r.xw_shards == base.xw_shards
                && r.workload == base.workload
        }) else {
            eprintln!(
                "BENCH compare: baseline record ({}, replay={}, shards={}, xw_shards={}, \
                 workload={}) missing from fresh run (warn)",
                base.design, base.replay, base.shards, base.xw_shards, base.workload
            );
            continue;
        };
        matched += 1;
        let abs_ratio = now.tasks_per_s / base.tasks_per_s.max(1e-9);
        let (now_norm, base_norm) = if base.workload == "kernel" {
            (fresh_kernel, base_kernel)
        } else {
            (fresh_mean, base_mean)
        };
        let norm_ratio = (now.tasks_per_s / now_norm) / (base.tasks_per_s / base_norm).max(1e-9);
        // Serve records warn instead of failing: end-to-end wall-clock
        // (queueing, threading) is far noisier than the engine and raw
        // kernel records the hard gate is tuned for.
        let gated = matches!(base.workload.as_str(), "spmm" | "kernel");
        let verdict = if norm_ratio < 1.0 - REGRESSION_THRESHOLD {
            if gated {
                regressions += 1;
                "REGRESSION"
            } else {
                "regression (warn-only: serve)"
            }
        } else {
            "ok"
        };
        println!(
            "{:<10} {:<5} replay={:<5} shards={} xw={} {:>14.1} -> {:>14.1} tasks/s \
             (abs {:+.1}%, normalized {:+.1}%) {verdict}",
            base.design,
            base.workload,
            base.replay,
            base.shards,
            base.xw_shards,
            base.tasks_per_s,
            now.tasks_per_s,
            (abs_ratio - 1.0) * 100.0,
            (norm_ratio - 1.0) * 100.0
        );
        if let (Some(b), Some(n)) = (base.p95_exec_ms, now.p95_exec_ms) {
            // Normalize by machine speed like throughput (latency scales
            // inversely with speed).
            let p95_ratio = (n * fresh_mean) / (b * base_mean).max(1e-9);
            if p95_ratio > P95_DRIFT_RATIO {
                eprintln!(
                    "BENCH compare warning: ({}, workload={}) p95 execute latency grew \
                     {b:.3} -> {n:.3} ms ({:.2}x normalized)",
                    base.design, base.workload, p95_ratio
                );
            }
        }
        if abs_ratio < 1.0 - REGRESSION_THRESHOLD && verdict == "ok" {
            eprintln!(
                "BENCH compare warning: ({}, replay={}) absolute throughput dropped {:.1}% \
                 (machine-speed difference or uniform slowdown; normalized gate passed)",
                base.design,
                base.replay,
                (1.0 - abs_ratio) * 100.0
            );
        }
        if let (Some(b), Some(n)) = (base.hit_rate, now.hit_rate) {
            if (b - n).abs() > HIT_RATE_DRIFT {
                eprintln!(
                    "BENCH compare warning: ({}, replay={}) hit rate drifted {:.3} -> {:.3}",
                    base.design, base.replay, b, n
                );
            }
        }
    }
    // The honesty notice rides the fresh run alone (cycle counts are
    // machine-independent, so no baseline is needed): warn — never fail —
    // when Auto's pick trails the post-hoc best by more than the bound.
    for rec in &fresh {
        if let Some(ratio) = rec.auto_best_ratio {
            if ratio > AUTO_RATIO_BOUND {
                eprintln!(
                    "BENCH compare warning: auto strategy warm cycles are {ratio:.3}x the \
                     post-hoc best sweep point (bound {AUTO_RATIO_BOUND:.2})"
                );
            }
        }
    }
    if matched == 0 {
        eprintln!("BENCH compare failed: no matching records between the two files");
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "BENCH compare failed: {regressions} record(s) regressed by more than {:.0}% \
             after machine-speed normalization",
            REGRESSION_THRESHOLD * 100.0
        );
        std::process::exit(1);
    }
    println!("{fresh_path} vs {baseline_path}: {matched} records compared, no regression");
}

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// booleans, null). No external crates are available in this build
/// environment, and the smoke file only needs a malformed/not-malformed
/// verdict plus the field checks above.
fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos:?}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos:?}"));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos:?}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos:?}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .map(|_| ())
        .map_err(|_| format!("bad number {token:?} at byte {start}"))
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos:?}"))
    }
}
