//! Internal probe: per-SPMM cycle/utilization breakdown for one dataset
//! and design, used while calibrating the simulator.

use awb_bench::BenchDataset;
use awb_datasets::PaperDataset;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Pubmed".into());
    let ds = PaperDataset::all()
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(&name))
        .expect("dataset name");
    let bench = BenchDataset::load(ds);
    for design in [awb_accel::Design::Baseline, bench.design_d()] {
        let out = bench.run_design(design);
        println!(
            "=== {} {} ({} PEs) total {} cycles util {:.1}% ===",
            ds.name(),
            design.label(),
            bench.n_pes,
            out.stats.total_cycles(),
            out.stats.avg_utilization() * 100.0
        );
        for s in out.stats.spmms() {
            let r0 = &s.rounds[0];
            println!(
                "  {:<10} rounds {:>4} tasks {:>10} cycles {:>9} ideal {:>8} util {:>5.1}% | r0: tasks {:>8} cycles {:>7} maxPE {:>7} minPE {:>6} maxQ {:>7}",
                s.label,
                s.rounds.len(),
                s.total_tasks(),
                s.total_cycles(),
                s.ideal_cycles(),
                s.utilization() * 100.0,
                r0.tasks,
                r0.cycles,
                r0.max_pe_busy,
                r0.min_pe_busy,
                r0.max_queue_depth,
            );
        }
    }
}
