//! Internal calibration probe: prints per-dataset baseline / Design-D
//! utilization next to the paper's values, plus wall time per run.
//! Not part of the published experiment set — used while tuning the
//! synthetic generator parameters (see DESIGN.md).

use awb_bench::BenchDataset;
use awb_datasets::PaperDataset;
use std::time::Instant;

fn main() {
    // Paper Fig. 14 A-E baseline / best-design utilizations.
    let paper: [(PaperDataset, f64, f64); 5] = [
        (PaperDataset::Cora, 0.53, 0.90),
        (PaperDataset::Citeseer, 0.71, 0.89),
        (PaperDataset::Pubmed, 0.69, 0.96),
        (PaperDataset::Nell, 0.13, 0.77),
        (PaperDataset::Reddit, 0.92, 0.99),
    ];
    for (ds, paper_base, paper_best) in paper {
        let t0 = Instant::now();
        let bench = BenchDataset::load(ds);
        let gen_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let base = bench.run_design(awb_accel::Design::Baseline);
        let base_s = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let best = bench.run_design(bench.design_d());
        let best_s = t2.elapsed().as_secs_f64();
        println!(
            "{:<9} scale {:>6.3} pes {:>5} | base util {:>5.1}% (paper {:>4.1}%) | bestD {:>5.1}% (paper {:>4.1}%) | speedup {:>4.2}x | gen {:.1}s base {:.1}s best {:.1}s | tasks {}",
            ds.name(),
            bench.scale,
            bench.n_pes,
            base.stats.avg_utilization() * 100.0,
            paper_base * 100.0,
            best.stats.avg_utilization() * 100.0,
            paper_best * 100.0,
            base.stats.total_cycles() as f64 / best.stats.total_cycles().max(1) as f64,
            gen_s,
            base_s,
            best_s,
            base.stats.total_tasks(),
        );
    }
}
