//! Non-zero pattern profiling.
//!
//! Backs the paper's Table 1 (density/dimension profiling), Fig. 1 (block
//! heatmaps of adjacency clustering), and Fig. 13 (nnz-per-row
//! distributions). Also provides the imbalance metrics used throughout the
//! evaluation discussion (a power-law adjacency has a heavy-tailed row-nnz
//! distribution, which is exactly what defeats static row partitioning).

use crate::{Csc, Csr};

/// Summary statistics of a row-nnz (or any workload) distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct NnzStats {
    /// Number of rows.
    pub count: usize,
    /// Total non-zeros.
    pub total: usize,
    /// Minimum per-row count.
    pub min: usize,
    /// Maximum per-row count.
    pub max: usize,
    /// Mean per-row count.
    pub mean: f64,
    /// Standard deviation of per-row counts.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`; 0 when mean is 0).
    pub cv: f64,
    /// Gini coefficient of the distribution (0 = perfectly even,
    /// → 1 = concentrated on few rows).
    pub gini: f64,
    /// `max / mean` — the slowdown a perfectly static equal partition would
    /// suffer if one PE owned only the heaviest row.
    pub imbalance_factor: f64,
}

/// Computes [`NnzStats`] over an arbitrary per-item workload vector.
///
/// # Example
///
/// ```
/// use awb_sparse::profile::workload_stats;
///
/// let s = workload_stats(&[1, 1, 1, 1]);
/// assert_eq!(s.cv, 0.0);
/// assert_eq!(s.gini, 0.0);
/// let skew = workload_stats(&[0, 0, 0, 100]);
/// assert!(skew.gini > 0.7);
/// ```
pub fn workload_stats(counts: &[usize]) -> NnzStats {
    let count = counts.len();
    if count == 0 {
        return NnzStats {
            count: 0,
            total: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            cv: 0.0,
            gini: 0.0,
            imbalance_factor: 1.0,
        };
    }
    let total: usize = counts.iter().sum();
    let min = *counts.iter().min().expect("non-empty");
    let max = *counts.iter().max().expect("non-empty");
    let mean = total as f64 / count as f64;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    let std_dev = var.sqrt();
    let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };
    let gini = gini_coefficient(counts);
    let imbalance_factor = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    NnzStats {
        count,
        total,
        min,
        max,
        mean,
        std_dev,
        cv,
        gini,
        imbalance_factor,
    }
}

/// Gini coefficient of a non-negative workload distribution.
///
/// Uses the sorted-rank formula `G = (2·Σ i·x_i)/(n·Σ x_i) − (n+1)/n`.
/// Returns 0 for empty or all-zero input.
pub fn gini_coefficient(counts: &[usize]) -> f64 {
    let n = counts.len();
    let total: usize = counts.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = counts.to_vec();
    sorted.sort_unstable();
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Profiles the row-nnz distribution of a CSR matrix.
pub fn row_nnz_stats(m: &Csr) -> NnzStats {
    workload_stats(&m.row_nnz_counts())
}

/// Profiles the column-nnz distribution of a CSC matrix — the per-round
/// delivery-side skew (column `c` of the sparse operand streams once per
/// dense column), complementing [`row_nnz_stats`]'s accumulation-side view.
pub fn col_nnz_stats(m: &Csc) -> NnzStats {
    workload_stats(&m.col_nnz_counts())
}

/// Log-2-binned histogram of per-row nnz counts: `bins[i]` counts rows with
/// nnz in `[2^(i-1)+1 .. 2^i]`, with `bins[0]` counting empty rows and
/// `bins[1]` rows with exactly 1.
///
/// This is the series plotted in the paper's Fig. 13.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowNnzHistogram {
    /// Bin counts (see type-level docs for bin semantics).
    pub bins: Vec<usize>,
}

impl RowNnzHistogram {
    /// Builds the histogram for `m`.
    pub fn of(m: &Csr) -> Self {
        let mut bins: Vec<usize> = Vec::new();
        for nnz in m.row_nnz_counts() {
            let bin = if nnz == 0 {
                0
            } else {
                (usize::BITS - (nnz - 1).leading_zeros()) as usize + 1
            };
            if bins.len() <= bin {
                bins.resize(bin + 1, 0);
            }
            bins[bin] += 1;
        }
        RowNnzHistogram { bins }
    }

    /// Upper edge of bin `i` (inclusive): 0, 1, 2, 4, 8, ...
    pub fn bin_upper_edge(i: usize) -> usize {
        match i {
            0 => 0,
            _ => 1usize << (i - 1),
        }
    }

    /// Renders the histogram rows as `(upper_edge, count)` pairs.
    pub fn series(&self) -> Vec<(usize, usize)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (Self::bin_upper_edge(i), c))
            .collect()
    }
}

/// A `grid x grid` block census of the non-zero positions — the data behind
/// the paper's Fig. 1 scatter plots of adjacency clustering.
///
/// `counts[by][bx]` is the number of non-zeros whose (row, col) falls in
/// block (by, bx).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeatmap {
    /// Grid resolution per side.
    pub grid: usize,
    /// Row-major `grid*grid` block counts.
    pub counts: Vec<usize>,
}

impl BlockHeatmap {
    /// Builds a `grid x grid` census of `m`'s pattern.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn of(m: &Csr, grid: usize) -> Self {
        assert!(grid > 0, "grid must be positive");
        let mut counts = vec![0usize; grid * grid];
        let (rows, cols) = (m.rows().max(1), m.cols().max(1));
        for (r, c, _) in m.iter() {
            let by = r * grid / rows;
            let bx = c * grid / cols;
            counts[by.min(grid - 1) * grid + bx.min(grid - 1)] += 1;
        }
        BlockHeatmap { grid, counts }
    }

    /// Count in block `(by, bx)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is `>= grid`.
    pub fn get(&self, by: usize, bx: usize) -> usize {
        assert!(by < self.grid && bx < self.grid, "block index out of range");
        self.counts[by * self.grid + bx]
    }

    /// Renders an ASCII intensity map (rows = blocks), useful in bench
    /// output. Intensity ramp: `' ' . : + * #`.
    pub fn render_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:+*#";
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::with_capacity(self.grid * (self.grid + 1));
        for by in 0..self.grid {
            for bx in 0..self.grid {
                let v = self.get(by, bx);
                let idx = if v == 0 {
                    0
                } else {
                    // log-scaled intensity so sparse structure stays visible
                    let l = (v as f64).ln() / (max as f64).ln();
                    1 + ((RAMP.len() - 2) as f64 * l).round() as usize
                };
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Fraction of all non-zeros contained in the densest `k` blocks — a
    /// scalar measure of clustering ("remote imbalance" potential).
    pub fn top_k_concentration(&self, k: usize) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(k).sum::<usize>() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn diag(n: usize) -> Csr {
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0).unwrap();
        }
        m.to_csr()
    }

    #[test]
    fn stats_uniform_distribution() {
        let s = row_nnz_stats(&diag(8));
        assert_eq!(s.count, 8);
        assert_eq!(s.total, 8);
        assert_eq!((s.min, s.max), (1, 1));
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.imbalance_factor, 1.0);
    }

    #[test]
    fn stats_skewed_distribution() {
        let mut m = Coo::new(4, 8);
        for c in 0..8 {
            m.push(0, c, 1.0).unwrap(); // row 0 owns everything
        }
        let s = row_nnz_stats(&m.to_csr());
        assert_eq!(s.max, 8);
        assert_eq!(s.min, 0);
        assert_eq!(s.imbalance_factor, 4.0);
        assert!(s.gini > 0.7);
        assert!(s.cv > 1.0);
    }

    #[test]
    fn col_stats_mirror_row_stats_on_transpose() {
        let mut m = Coo::new(4, 4);
        for c in 0..4 {
            m.push(0, c, 1.0).unwrap();
        }
        m.push(2, 1, 1.0).unwrap();
        let csr = m.to_csr();
        let col = col_nnz_stats(&csr.to_csc());
        assert_eq!(col.count, 4);
        assert_eq!(col.total, 5);
        assert_eq!(col.max, 2); // column 1 holds (0,1) and (2,1)
        let row = row_nnz_stats(&csr);
        assert_eq!(row.max, 4);
    }

    #[test]
    fn stats_empty() {
        let s = workload_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.imbalance_factor, 1.0);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini_coefficient(&[5, 5, 5, 5]), 0.0);
        // all mass on one of n items -> G = (n-1)/n
        let g = gini_coefficient(&[0, 0, 0, 12]);
        assert!((g - 0.75).abs() < 1e-12);
        assert_eq!(gini_coefficient(&[0, 0]), 0.0);
    }

    #[test]
    fn histogram_bins() {
        // rows with nnz 0,1,2,3,4,5 map to bins 0,1,2,3,3,4
        let mut m = Coo::new(6, 8);
        for (row, n) in [(1usize, 1usize), (2, 2), (3, 3), (4, 4), (5, 5)] {
            for c in 0..n {
                m.push(row, c, 1.0).unwrap();
            }
        }
        let h = RowNnzHistogram::of(&m.to_csr());
        assert_eq!(h.bins, vec![1, 1, 1, 2, 1]);
        assert_eq!(RowNnzHistogram::bin_upper_edge(0), 0);
        assert_eq!(RowNnzHistogram::bin_upper_edge(3), 4);
        let series = h.series();
        assert_eq!(series[3], (4, 2));
    }

    #[test]
    fn heatmap_counts_blocks() {
        // 4x4 matrix, 2x2 grid: nnz at (0,0) and (3,3)
        let mut m = Coo::new(4, 4);
        m.push(0, 0, 1.0).unwrap();
        m.push(3, 3, 1.0).unwrap();
        let h = BlockHeatmap::of(&m.to_csr(), 2);
        assert_eq!(h.get(0, 0), 1);
        assert_eq!(h.get(1, 1), 1);
        assert_eq!(h.get(0, 1), 0);
        assert_eq!(h.top_k_concentration(1), 0.5);
        assert_eq!(h.top_k_concentration(2), 1.0);
    }

    #[test]
    fn heatmap_ascii_has_grid_lines() {
        let h = BlockHeatmap::of(&diag(16), 4);
        let art = h.render_ascii();
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
        // diagonal blocks are non-space
        let lines: Vec<&str> = art.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            assert_ne!(line.as_bytes()[i], b' ');
        }
    }

    #[test]
    fn heatmap_empty_matrix() {
        let h = BlockHeatmap::of(&Csr::empty(5, 5), 3);
        assert_eq!(h.counts.iter().sum::<usize>(), 0);
        assert_eq!(h.top_k_concentration(3), 0.0);
    }
}
