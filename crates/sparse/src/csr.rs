use crate::{Coo, Csc, DenseMatrix, Result, SparseError};

/// Compressed-sparse-row matrix.
///
/// CSR is the natural layout for row-wise profiling (the paper's Fig. 13
/// plots non-zeros *per row* of the adjacency matrix, which determines the
/// per-PE workload under row partitioning).
///
/// # Example
///
/// ```
/// use awb_sparse::{Coo, Csr};
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let mut coo = Coo::new(2, 3);
/// coo.push(0, 2, 1.0)?;
/// coo.push(1, 0, 2.0)?;
/// let csr: Csr = coo.to_csr();
/// assert_eq!(csr.row_nnz(0), 1);
/// assert_eq!(csr.row_entries(1).next(), Some((0, 2.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from its raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedFormat`] if the arrays are
    /// inconsistent: `row_ptr` must have `rows + 1` monotonically
    /// non-decreasing entries starting at 0 and ending at `col_idx.len()`,
    /// `col_idx` and `values` must have equal lengths, and every column
    /// index must be `< cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        validate_compressed(rows, cols, &row_ptr, &col_idx, values.len(), "row_ptr")?;
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An empty `rows x cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of entries that are non-zero.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Number of non-zeros in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row_nnz(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of bounds");
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// Iterates over the `(col, value)` entries of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(row < self.rows, "row {row} out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// The vector of per-row non-zero counts (the per-row workload under the
    /// accelerator's row partitioning).
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// The raw row-pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw values array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| self.row_entries(r).map(move |(c, v)| (r, c, v)))
    }

    /// Converts to CSC by re-bucketing entries by column.
    pub fn to_csc(&self) -> Csc {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut row_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts.clone();
        for (r, c, v) in self.iter() {
            let p = cursor[c];
            row_idx[p] = r as u32;
            values[p] = v;
            cursor[c] += 1;
        }
        Csc::from_parts(self.rows, self.cols, counts, row_idx, values)
            .expect("re-bucketing preserves validity")
    }

    /// Converts to COO triplets.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        coo.reserve(self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("indices valid by construction");
        }
        coo
    }

    /// Materializes as a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }

    /// Extracts the row block `range` as a standalone matrix without
    /// re-bucketing — the CSR mirror of [`Csc::col_range`]: a contiguous
    /// row range is a contiguous slice of the index/value arrays, so the
    /// cut is three slice copies plus a rebased `row_ptr`. Column indices
    /// are preserved (the slice keeps the full column space).
    ///
    /// # Panics
    ///
    /// Panics if `range.end > self.rows()` or `range.start > range.end`.
    pub fn row_range(&self, range: std::ops::Range<usize>) -> Csr {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range {range:?} out of bounds for {} rows",
            self.rows
        );
        let lo = self.row_ptr[range.start];
        let hi = self.row_ptr[range.end];
        let row_ptr = self.row_ptr[range.start..=range.end]
            .iter()
            .map(|&p| p - lo)
            .collect();
        Csr {
            rows: range.len(),
            cols: self.cols,
            row_ptr,
            col_idx: self.col_idx[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Returns the transpose (a CSC of this matrix reinterpreted as CSR of
    /// the transpose shares the same arrays; we materialize explicitly for
    /// clarity).
    pub fn transpose(&self) -> Csr {
        let csc = self.to_csc();
        Csr::from_parts(
            self.cols,
            self.rows,
            csc.col_ptr().to_vec(),
            csc.row_idx().to_vec(),
            csc.values().to_vec(),
        )
        .expect("transpose of valid CSC is valid CSR")
    }
}

/// Validation shared between CSR and CSC (`major_ptr` semantics).
pub(crate) fn validate_compressed(
    n_major: usize,
    n_minor: usize,
    major_ptr: &[usize],
    minor_idx: &[u32],
    n_values: usize,
    ptr_name: &str,
) -> Result<()> {
    if major_ptr.len() != n_major + 1 {
        return Err(SparseError::MalformedFormat(format!(
            "{ptr_name} length {} != {} + 1",
            major_ptr.len(),
            n_major
        )));
    }
    if major_ptr.first() != Some(&0) {
        return Err(SparseError::MalformedFormat(format!(
            "{ptr_name} must start at 0"
        )));
    }
    if major_ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(SparseError::MalformedFormat(format!(
            "{ptr_name} must be monotonically non-decreasing"
        )));
    }
    if *major_ptr.last().expect("non-empty by length check") != minor_idx.len() {
        return Err(SparseError::MalformedFormat(format!(
            "{ptr_name} last entry {} != index array length {}",
            major_ptr.last().expect("non-empty"),
            minor_idx.len()
        )));
    }
    if minor_idx.len() != n_values {
        return Err(SparseError::MalformedFormat(format!(
            "index array length {} != values length {n_values}",
            minor_idx.len()
        )));
    }
    if let Some(&bad) = minor_idx.iter().find(|&&i| i as usize >= n_minor) {
        return Err(SparseError::MalformedFormat(format!(
            "index {bad} out of bounds for minor dimension {n_minor}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[0, 6, 0, 9, 0],
        //  [0, 0, 0, 0, 7],
        //  [3, 0, 0, 0, 0]]
        Csr::from_parts(
            3,
            5,
            vec![0, 2, 3, 4],
            vec![1, 3, 4, 0],
            vec![6.0, 9.0, 7.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csr::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err()); // ptr too short
        assert!(Csr::from_parts(2, 2, vec![1, 1, 1], vec![], vec![]).is_err()); // doesn't start at 0
        assert!(Csr::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err()); // not monotone
        assert!(Csr::from_parts(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err()); // last != nnz
        assert!(Csr::from_parts(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err()); // col oob
        assert!(Csr::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![]).is_err()); // val len
        assert!(Csr::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
    }

    #[test]
    fn row_access() {
        let m = sample();
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        let entries: Vec<_> = m.row_entries(0).collect();
        assert_eq!(entries, vec![(1, 6.0), (3, 9.0)]);
        assert_eq!(m.row_nnz_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn density_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert!((m.density() - 4.0 / 15.0).abs() < 1e-12);
        assert_eq!(Csr::empty(0, 0).density(), 0.0);
    }

    #[test]
    fn csc_roundtrip_preserves_dense() {
        let m = sample();
        assert_eq!(m.to_csc().to_dense(), m.to_dense());
        assert_eq!(m.to_csc().to_csr().to_dense(), m.to_dense());
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn iter_row_major_order() {
        let m = sample();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(
            triplets,
            vec![(0, 1, 6.0), (0, 3, 9.0), (1, 4, 7.0), (2, 0, 3.0)]
        );
    }

    #[test]
    fn row_range_slices_without_rebuild() {
        let m = sample();
        let top = m.row_range(0..1);
        assert_eq!(top.shape(), (1, 5));
        assert_eq!(top.nnz(), 2);
        assert_eq!(
            top.row_entries(0).collect::<Vec<_>>(),
            vec![(1, 6.0), (3, 9.0)]
        );
        let rest = m.row_range(1..3);
        assert_eq!(rest.shape(), (2, 5));
        assert_eq!(rest.nnz(), 2);
        assert_eq!(m.row_range(0..3), m);
        assert_eq!(m.row_range(2..2).nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_range_rejects_out_of_bounds() {
        sample().row_range(1..4);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = Csr::empty(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.to_dense(), DenseMatrix::zeros(3, 4));
    }
}
