//! Column-sharding of sparse matrices for graphs bigger than one device.
//!
//! AWB-GCN assumes the whole adjacency fits one accelerator's SPMMeM;
//! tiling approaches (LW-GCN's memory-constrained FPGA tiles, GNNIE's
//! load-balanced partitions — see PAPERS.md) split the matrix across
//! devices instead. Because `A × B = Σ_s A[:, lo_s..hi_s] × B[lo_s..hi_s, :]`,
//! a *column* range of the sparse operand paired with the matching *row*
//! range of the dense operand is an independent sub-multiply whose partial
//! products merge by addition — the natural shard shape for the
//! accelerator's CSC streaming order.
//!
//! Equal-column splits are pathological on the paper's graphs: power-law
//! degree tails and Nell's entity-ordered clustering concentrate non-zeros
//! in a few column bands, so one shard would carry most of the work.
//! [`ColumnPartitioner`] therefore balances by **nnz**, not by column
//! count: a greedy prefix-sum split over `Col Ptr` (already the exclusive
//! prefix sum of per-column nnz, so partitioning is O(cols) on top of the
//! stored arrays).
//!
//! # Example
//!
//! ```
//! use awb_sparse::partition::ColumnPartitioner;
//! use awb_sparse::Coo;
//!
//! # fn main() -> Result<(), awb_sparse::SparseError> {
//! let mut a = Coo::new(4, 4);
//! for c in 0..4 {
//!     a.push(0, c, 1.0)?; // uniform: one nnz per column
//! }
//! let a = a.to_csc();
//! let shards = ColumnPartitioner::by_shards(2).partition(&a);
//! assert_eq!(shards.len(), 2);
//! assert_eq!(shards[0].cols, 0..2);
//! assert_eq!(shards[1].cols, 2..4);
//! assert_eq!(shards[0].nnz, 2);
//! # Ok(())
//! # }
//! ```

use crate::store::ChunkProfile;
use crate::Csc;
use std::ops::Range;

/// One column shard: a contiguous column range of the partitioned matrix
/// plus its nnz/density profile (what a device placer balances on).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnShard {
    /// Half-open column range `lo..hi` of the original matrix.
    pub cols: Range<usize>,
    /// Non-zeros inside the range.
    pub nnz: usize,
    /// Heaviest single column inside the range (the shard's indivisible
    /// work quantum — no split can do better than this).
    pub max_col_nnz: usize,
    /// Fraction of the shard's `rows × |cols|` entries that are non-zero.
    pub density: f64,
}

impl ColumnShard {
    /// Number of columns in the shard.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Materializes the shard's matrix block via [`Csc::col_range`].
    pub fn slice(&self, a: &Csc) -> Csc {
        a.col_range(self.cols.clone())
    }
}

/// How the partitioner sizes shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Exactly this many shards (clamped to the column count), nnz-balanced.
    Shards(usize),
    /// As few shards as possible with at most this many nnz each (a single
    /// column heavier than the budget still gets its own shard — columns
    /// are the indivisible unit).
    MaxNnz(usize),
    /// As few shards as possible with each shard's *resident heap bytes*
    /// (per [`Csc::heap_bytes`]: 8 bytes per nnz plus one pointer-sized
    /// `Col Ptr` entry per column) at most this budget — the host-memory
    /// policy for out-of-core streaming, where the bound that matters is
    /// bytes in RAM, not non-zeros on chip.
    MaxBytes(usize),
}

/// Resident heap bytes of a CSC slice with this shape, matching
/// [`Csc::heap_bytes`] exactly (u32 index + f32 value per nnz, usize
/// `Col Ptr` entry per column plus one).
fn slice_bytes(n_cols: usize, nnz: usize) -> usize {
    nnz * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
        + (n_cols + 1) * std::mem::size_of::<usize>()
}

/// Splits a CSC matrix into contiguous, nnz-balanced column shards.
///
/// Both policies guarantee that the returned shards tile `0..cols`
/// contiguously, in order, covering every column exactly once, with no
/// empty shard (except that a 0-column matrix yields no shards at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnPartitioner {
    target: Target,
}

impl ColumnPartitioner {
    /// Partition into exactly `n` shards (clamped to the column count),
    /// with shard boundaries chosen so each shard's nnz is as close as the
    /// greedy prefix-sum split can get to `total_nnz / n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn by_shards(n: usize) -> Self {
        assert!(n > 0, "shard count must be >= 1");
        ColumnPartitioner {
            target: Target::Shards(n),
        }
    }

    /// Partition into as few shards as possible holding at most `budget`
    /// non-zeros each — the memory-derived policy (budget = on-chip
    /// capacity in non-zeros). A single column heavier than the budget
    /// still becomes its own (over-budget) shard: columns are indivisible.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn by_max_nnz(budget: usize) -> Self {
        assert!(budget > 0, "nnz budget must be >= 1");
        ColumnPartitioner {
            target: Target::MaxNnz(budget),
        }
    }

    /// Partition into as few shards as possible whose resident heap bytes
    /// (per [`Csc::heap_bytes`]) each stay at most `budget` — the
    /// host-memory policy backing out-of-core streaming. As with
    /// [`by_max_nnz`](ColumnPartitioner::by_max_nnz), a single column (or
    /// store chunk) heavier than the budget still becomes its own
    /// over-budget shard: the planning unit is indivisible.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn by_resident_bytes(budget: usize) -> Self {
        assert!(budget > 0, "byte budget must be >= 1");
        ColumnPartitioner {
            target: Target::MaxBytes(budget),
        }
    }

    /// True when partitioning `a` would yield at most one shard — the
    /// degenerate case callers dispatch to an unsharded path without
    /// paying the O(cols) partition/profile scan (the combination phase
    /// re-derives its cut per layer per request, so this runs on the
    /// serving hot path).
    pub fn is_single(&self, a: &Csc) -> bool {
        match self.target {
            Target::Shards(n) => n.min(a.cols()) <= 1,
            // One greedy budget fill covers all columns iff the whole
            // matrix fits the budget (a single column is taken even when
            // it alone exceeds it).
            Target::MaxNnz(budget) => a.cols() <= 1 || a.nnz() <= budget,
            Target::MaxBytes(budget) => a.cols() <= 1 || slice_bytes(a.cols(), a.nnz()) <= budget,
        }
    }

    /// The shard boundaries and profiles for `a` (see the struct docs for
    /// the covering guarantees).
    pub fn partition(&self, a: &Csc) -> Vec<ColumnShard> {
        let bounds = match self.target {
            Target::Shards(n) => split_by_shards(a, n),
            Target::MaxNnz(budget) => split_by_max_nnz(a, budget),
            Target::MaxBytes(budget) => split_by_max_bytes(a, budget),
        };
        bounds
            .windows(2)
            .map(|w| profile_shard(a, w[0]..w[1]))
            .collect()
    }

    /// Store-backed planning: derives shard boundaries from a store
    /// manifest's per-chunk profiles alone — no `data/` read, O(chunks)
    /// work — so out-of-core runs can plan cuts for a matrix that never
    /// fits in memory. Chunks are the indivisible unit here (they are
    /// line-aligned on disk, so a shard covering whole chunks materializes
    /// without partial-chunk seeks); within that granularity the same
    /// policies apply: [`by_shards`](ColumnPartitioner::by_shards) greedily
    /// balances nnz, [`by_max_nnz`](ColumnPartitioner::by_max_nnz) /
    /// [`by_resident_bytes`](ColumnPartitioner::by_resident_bytes) fill to
    /// a budget. The returned shards tile `0..cols` contiguously with no
    /// empty shard (no chunks → no shards), exactly like
    /// [`partition`](ColumnPartitioner::partition).
    pub fn partition_chunks(&self, rows: usize, chunks: &[ChunkProfile]) -> Vec<ColumnShard> {
        if chunks.is_empty() {
            return Vec::new();
        }
        let groups = match self.target {
            Target::Shards(n) => group_chunks_by_shards(chunks, n),
            Target::MaxNnz(budget) => group_chunks_greedy(chunks, |_, nnz, more| {
                // Take the next chunk while the merged nnz stays in budget.
                nnz + more.nnz <= budget
            }),
            Target::MaxBytes(budget) => group_chunks_greedy(chunks, |span, nnz, more| {
                slice_bytes(more.lines.end - span.start, nnz + more.nnz) <= budget
            }),
        };
        groups
            .into_iter()
            .map(|g| profile_chunk_group(rows, &chunks[g]))
            .collect()
    }
}

/// Profiles a contiguous group of store chunks as one [`ColumnShard`].
fn profile_chunk_group(rows: usize, group: &[ChunkProfile]) -> ColumnShard {
    let cols = group[0].lines.start..group[group.len() - 1].lines.end;
    let nnz = group.iter().map(|c| c.nnz).sum();
    // The manifest records each chunk's heaviest line, so the group's
    // max is exact (the maximum is over a partition of the columns).
    let max_col_nnz = group.iter().map(|c| c.max_line_nnz).max().unwrap_or(0);
    let cells = rows * cols.len();
    ColumnShard {
        density: if cells == 0 {
            0.0
        } else {
            nnz as f64 / cells as f64
        },
        cols,
        nnz,
        max_col_nnz,
    }
}

/// Greedy budget fill over chunks: extend the group while `fits` accepts
/// the next chunk, always taking at least one.
fn group_chunks_greedy(
    chunks: &[ChunkProfile],
    fits: impl Fn(&Range<usize>, usize, &ChunkProfile) -> bool,
) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo < chunks.len() {
        let mut span = chunks[lo].lines.clone();
        let mut nnz = chunks[lo].nnz;
        let mut hi = lo + 1;
        while hi < chunks.len() && fits(&span, nnz, &chunks[hi]) {
            span.end = chunks[hi].lines.end;
            nnz += chunks[hi].nnz;
            hi += 1;
        }
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Greedy prefix-target split of chunks into `k` nnz-balanced groups
/// (clamped to the chunk count), mirroring [`split_by_shards`] at chunk
/// granularity with the same leave-one-per-remaining-shard cap.
fn group_chunks_by_shards(chunks: &[ChunkProfile], k: usize) -> Vec<Range<usize>> {
    let n = chunks.len();
    let k = k.max(1).min(n);
    let total: u128 = chunks.iter().map(|c| c.nnz as u128).sum();
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0usize);
    for c in chunks {
        prefix.push(prefix.last().expect("non-empty") + c.nnz);
    }
    let mut out = Vec::with_capacity(k);
    let mut lo = 0usize;
    for i in 0..k - 1 {
        let target = (total * (i as u128 + 1) / k as u128) as usize;
        let max_hi = n - (k - 1 - i);
        let mut hi = lo + 1 + prefix[lo + 1..max_hi].partition_point(|&p| p < target);
        if hi > lo + 1 && prefix[hi].abs_diff(target) > prefix[hi - 1].abs_diff(target) {
            hi -= 1;
        }
        out.push(lo..hi);
        lo = hi;
    }
    out.push(lo..n);
    out
}

fn profile_shard(a: &Csc, cols: Range<usize>) -> ColumnShard {
    let ptr = a.col_ptr();
    let nnz = ptr[cols.end] - ptr[cols.start];
    let max_col_nnz = cols.clone().map(|c| ptr[c + 1] - ptr[c]).max().unwrap_or(0);
    let cells = a.rows() * cols.len();
    ColumnShard {
        density: if cells == 0 {
            0.0
        } else {
            nnz as f64 / cells as f64
        },
        cols,
        nnz,
        max_col_nnz,
    }
}

/// Greedy prefix-sum split into `k` shards: boundary `i` lands on the
/// column whose nnz prefix is closest to `total * (i+1) / k`, constrained
/// to leave at least one column for every remaining shard.
fn split_by_shards(a: &Csc, k: usize) -> Vec<usize> {
    let cols = a.cols();
    if cols == 0 {
        return Vec::new();
    }
    let k = k.min(cols);
    let ptr = a.col_ptr();
    let total = a.nnz() as u128;
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0usize);
    let mut lo = 0usize;
    for i in 0..k - 1 {
        let target = (total * (i as u128 + 1) / k as u128) as usize;
        // Smallest boundary whose prefix reaches the target, capped so the
        // remaining shards each keep at least one column. `Col Ptr` is
        // non-decreasing, so the boundary binary-searches in O(log cols)
        // instead of scanning — the partition is re-derived per layer and
        // per request on the combination side, where `X` can be wide.
        let max_hi = cols - (k - 1 - i);
        let mut hi = lo + 1 + ptr[lo + 1..max_hi].partition_point(|&p| p < target);
        // Greedy refinement: stepping back one column may land closer.
        // (abs_diff: when the max_hi cap stopped the scan early, ptr[hi]
        // is still below the target and plain subtraction would underflow.)
        if hi > lo + 1 && ptr[hi].abs_diff(target) > ptr[hi - 1].abs_diff(target) {
            hi -= 1;
        }
        bounds.push(hi);
        lo = hi;
    }
    bounds.push(cols);
    bounds
}

/// Greedy budget fill: extend each shard while the next column still fits,
/// always taking at least one column.
fn split_by_max_nnz(a: &Csc, budget: usize) -> Vec<usize> {
    let cols = a.cols();
    if cols == 0 {
        return Vec::new();
    }
    let ptr = a.col_ptr();
    let mut bounds = vec![0usize];
    let mut lo = 0usize;
    while lo < cols {
        let mut hi = lo + 1;
        while hi < cols && ptr[hi + 1] - ptr[lo] <= budget {
            hi += 1;
        }
        bounds.push(hi);
        lo = hi;
    }
    bounds
}

/// Greedy resident-byte fill, same structure as [`split_by_max_nnz`] but
/// bounding [`Csc::heap_bytes`] of each shard's slice.
fn split_by_max_bytes(a: &Csc, budget: usize) -> Vec<usize> {
    let cols = a.cols();
    if cols == 0 {
        return Vec::new();
    }
    let ptr = a.col_ptr();
    let mut bounds = vec![0usize];
    let mut lo = 0usize;
    while lo < cols {
        let mut hi = lo + 1;
        while hi < cols && slice_bytes(hi + 1 - lo, ptr[hi + 1] - ptr[lo]) <= budget {
            hi += 1;
        }
        bounds.push(hi);
        lo = hi;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// A clustered matrix: columns 0..4 carry 10 nnz each, the rest 1.
    fn clustered(n: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..4 {
            for r in 0..10 {
                coo.push(r % n, c, 1.0).unwrap();
            }
        }
        for c in 4..n {
            coo.push(c % n, c, 1.0).unwrap();
        }
        coo.to_csc()
    }

    fn assert_tiles(shards: &[ColumnShard], cols: usize, total_nnz: usize) {
        assert_eq!(shards.first().map(|s| s.cols.start), Some(0));
        assert_eq!(shards.last().map(|s| s.cols.end), Some(cols));
        for w in shards.windows(2) {
            assert_eq!(w[0].cols.end, w[1].cols.start, "gap or overlap");
        }
        for s in shards {
            assert!(!s.cols.is_empty(), "empty shard {s:?}");
        }
        assert_eq!(shards.iter().map(|s| s.nnz).sum::<usize>(), total_nnz);
    }

    #[test]
    fn by_shards_balances_nnz_not_columns() {
        let a = clustered(20); // 40 nnz in cols 0..4, 16 in cols 4..20
        let shards = ColumnPartitioner::by_shards(2).partition(&a);
        assert_tiles(&shards, 20, a.nnz());
        assert_eq!(shards.len(), 2);
        // An equal-column split (10|10) would put 46 vs 10 nnz; the
        // nnz-balanced boundary cuts inside the heavy cluster instead.
        assert!(shards[0].n_cols() < 5, "boundary {:?}", shards[0].cols);
        let spread = shards[0].nnz.abs_diff(shards[1].nnz);
        assert!(spread <= 10, "nnz {} vs {}", shards[0].nnz, shards[1].nnz);
    }

    #[test]
    fn by_shards_clamps_to_column_count() {
        let a = clustered(6);
        let shards = ColumnPartitioner::by_shards(64).partition(&a);
        assert_eq!(shards.len(), 6); // one column each
        assert_tiles(&shards, 6, a.nnz());
        assert_eq!(ColumnPartitioner::by_shards(1).partition(&a).len(), 1);
    }

    #[test]
    fn by_max_nnz_respects_budget() {
        let a = clustered(20);
        let budget = 12;
        let shards = ColumnPartitioner::by_max_nnz(budget).partition(&a);
        assert_tiles(&shards, 20, a.nnz());
        // Heaviest column is 10 <= budget, so every shard obeys it.
        for s in &shards {
            assert!(s.nnz <= budget, "shard {s:?} over budget");
            assert!(s.max_col_nnz <= s.nnz);
        }
    }

    #[test]
    fn by_max_nnz_isolates_over_budget_columns() {
        let a = clustered(8); // heavy columns hold 10 nnz
        let shards = ColumnPartitioner::by_max_nnz(3).partition(&a);
        assert_tiles(&shards, 8, a.nnz());
        for s in &shards {
            // Over budget only when a single column alone exceeds it.
            assert!(s.nnz <= 3 || s.n_cols() == 1, "shard {s:?}");
        }
    }

    #[test]
    fn by_shards_handles_trailing_concentration() {
        // All nnz in the last column: every boundary scan is stopped by
        // the leave-a-column-per-shard cap before reaching its nnz target
        // (regression: the closest-boundary refinement used to underflow
        // here).
        let mut coo = Coo::new(4, 4);
        for r in 0..4 {
            coo.push(r, 3, 1.0).unwrap();
            coo.push((r + 1) % 4, 3, 1.0).unwrap();
        }
        let a = coo.to_csc();
        let shards = ColumnPartitioner::by_shards(3).partition(&a);
        assert_tiles(&shards, 4, a.nnz());
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.last().unwrap().nnz, a.nnz());
    }

    #[test]
    fn profiles_report_density() {
        let a = clustered(10);
        let shards = ColumnPartitioner::by_shards(3).partition(&a);
        for s in &shards {
            let cells = (a.rows() * s.n_cols()) as f64;
            assert!((s.density - s.nnz as f64 / cells).abs() < 1e-12);
            assert_eq!(s.slice(&a).nnz(), s.nnz);
            assert_eq!(s.slice(&a).shape(), (a.rows(), s.n_cols()));
        }
    }

    #[test]
    fn empty_and_degenerate_matrices() {
        let empty = Csc::empty(4, 0);
        assert!(ColumnPartitioner::by_shards(4).partition(&empty).is_empty());
        assert!(ColumnPartitioner::by_max_nnz(8)
            .partition(&empty)
            .is_empty());
        // All-zero columns still tile completely.
        let zeros = Csc::empty(4, 7);
        let shards = ColumnPartitioner::by_shards(3).partition(&zeros);
        assert_tiles(&shards, 7, 0);
        assert_eq!(shards.len(), 3);
    }

    #[test]
    fn is_single_agrees_with_partition() {
        let matrices = [
            clustered(20),
            clustered(6),
            Csc::empty(4, 0),
            Csc::empty(4, 7),
            Csc::empty(4, 1),
        ];
        let partitioners = [
            ColumnPartitioner::by_shards(1),
            ColumnPartitioner::by_shards(2),
            ColumnPartitioner::by_shards(64),
            ColumnPartitioner::by_max_nnz(1),
            ColumnPartitioner::by_max_nnz(12),
            ColumnPartitioner::by_max_nnz(10_000),
        ];
        for a in &matrices {
            for p in &partitioners {
                assert_eq!(
                    p.is_single(a),
                    p.partition(a).len() <= 1,
                    "{p:?} on {}x{} ({} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz()
                );
            }
        }
    }

    #[test]
    fn by_resident_bytes_respects_budget() {
        let a = clustered(20);
        // Whole matrix: 56 nnz * 8 + 21 * 8 = 616 bytes resident.
        assert_eq!(a.heap_bytes(), 616);
        let shards = ColumnPartitioner::by_resident_bytes(200).partition(&a);
        assert_tiles(&shards, 20, a.nnz());
        assert!(shards.len() > 1);
        for s in &shards {
            let bytes = s.slice(&a).heap_bytes();
            // Heaviest column is 10 nnz = 96 bytes < 200, so every shard
            // obeys the budget.
            assert!(bytes <= 200, "shard {s:?} resident {bytes} bytes");
        }
        // A budget below a single heavy column still yields 1-column
        // (over-budget) shards rather than stalling.
        let tight = ColumnPartitioner::by_resident_bytes(16).partition(&a);
        assert_tiles(&tight, 20, a.nnz());
        for s in &tight {
            assert_eq!(s.n_cols(), 1);
        }
        // is_single agrees on both sides of the whole-matrix size.
        assert!(ColumnPartitioner::by_resident_bytes(616).is_single(&a));
        assert!(!ColumnPartitioner::by_resident_bytes(615).is_single(&a));
    }

    /// Store-chunk profiles of `a` at the given nnz-per-chunk target,
    /// built directly from `Col Ptr` (no disk involved).
    fn chunk_profiles(a: &Csc, target: usize) -> Vec<ChunkProfile> {
        let ptr = a.col_ptr();
        let mut out = Vec::new();
        let mut lo = 0usize;
        while lo < a.cols() {
            let mut hi = lo + 1;
            while hi < a.cols() && ptr[hi] - ptr[lo] < target {
                hi += 1;
            }
            out.push(ChunkProfile {
                lines: lo..hi,
                nnz: ptr[hi] - ptr[lo],
                max_line_nnz: (lo..hi).map(|c| ptr[c + 1] - ptr[c]).max().unwrap(),
                disk_bytes: 1,
            });
            lo = hi;
        }
        out
    }

    #[test]
    fn partition_chunks_tiles_and_matches_column_granularity_limits() {
        let a = clustered(24);
        let chunks = chunk_profiles(&a, 4);
        for p in [
            ColumnPartitioner::by_shards(3),
            ColumnPartitioner::by_shards(64),
            ColumnPartitioner::by_max_nnz(12),
            ColumnPartitioner::by_resident_bytes(200),
        ] {
            let shards = p.partition_chunks(a.rows(), &chunks);
            assert_tiles(&shards, 24, a.nnz());
            // Shard profiles must agree with re-profiling the same column
            // ranges against the resident matrix.
            for s in &shards {
                let direct = profile_shard(&a, s.cols.clone());
                assert_eq!(s, &direct, "{p:?}");
            }
        }
        // Budget policies respect their budget whenever a single chunk
        // does (chunks here hold <= 13 nnz; heaviest single chunk rules).
        let max_chunk_nnz = chunks.iter().map(|c| c.nnz).max().unwrap();
        let budget = max_chunk_nnz.max(12);
        for s in ColumnPartitioner::by_max_nnz(budget).partition_chunks(a.rows(), &chunks) {
            assert!(s.nnz <= budget, "{s:?}");
        }
        // No chunks → no shards.
        assert!(ColumnPartitioner::by_shards(4)
            .partition_chunks(a.rows(), &[])
            .is_empty());
    }

    #[test]
    fn partition_chunks_by_shards_balances_nnz() {
        let a = clustered(40);
        let chunks = chunk_profiles(&a, 2);
        let shards = ColumnPartitioner::by_shards(4).partition_chunks(a.rows(), &chunks);
        assert_eq!(shards.len(), 4);
        assert_tiles(&shards, 40, a.nnz());
        let target = a.nnz() / 4;
        let max_chunk = chunks.iter().map(|c| c.nnz).max().unwrap();
        for s in &shards {
            // Greedy chunk-granular balance: within one chunk of ideal.
            assert!(
                s.nnz.abs_diff(target) <= max_chunk,
                "shard {s:?} vs target {target} (chunk quantum {max_chunk})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "byte budget")]
    fn zero_byte_budget_rejected() {
        ColumnPartitioner::by_resident_bytes(0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        ColumnPartitioner::by_shards(0);
    }

    #[test]
    #[should_panic(expected = "nnz budget")]
    fn zero_budget_rejected() {
        ColumnPartitioner::by_max_nnz(0);
    }
}
