use crate::{Coo, Result, SparseError};

/// A row-major dense `f32` matrix.
///
/// Used for the dense operands of the accelerator (the weight matrices `W`
/// and the intermediate `XW` products) and as the ground-truth result format
/// for functional verification.
///
/// # Example
///
/// ```
/// use awb_sparse::DenseMatrix;
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// ```
    /// use awb_sparse::DenseMatrix;
    /// let z = DenseMatrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z.nnz(), 0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::RaggedRows`] if the rows have differing
    /// lengths.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Result<Self> {
        let n_cols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            if r.len() != n_cols {
                return Err(SparseError::RaggedRows {
                    expected: n_cols,
                    row: i,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols: n_cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedFormat`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::MalformedFormat(format!(
                "dense data length {} != {rows} * {cols}",
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies column `col` into a new vector.
    ///
    /// The accelerator streams the dense operand column by column; this is
    /// the software analogue of one "round" worth of input.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vec<f32> {
        assert!(col < self.cols, "column {col} out of bounds");
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Heap bytes held by the row-major backing vector — the size-estimate
    /// input for plan-cache memory budgeting.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of entries that are non-zero (`nnz / (rows*cols)`).
    ///
    /// Returns 0.0 for an empty matrix.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Copies the row block `range` into a standalone matrix. Row-major
    /// storage makes this one contiguous slice copy — the dense mirror of
    /// [`Csr::row_range`](crate::Csr::row_range), used to cut the dense
    /// operand `B[lo..hi, :]` that a column shard `A[:, lo..hi]` multiplies.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > self.rows()` or `range.start > range.end`.
    pub fn row_range(&self, range: std::ops::Range<usize>) -> DenseMatrix {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range {range:?} out of bounds for {} rows",
            self.rows
        );
        DenseMatrix {
            rows: range.len(),
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Applies ReLU (`max(0, x)`) element-wise, in place.
    ///
    /// This is the activation `σ(.)` of the paper's Eq. 1.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Returns a ReLU-ed copy.
    pub fn relu(&self) -> DenseMatrix {
        let mut out = self.clone();
        out.relu_in_place();
        out
    }

    /// Dense-dense matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(SparseError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Converts directly to CSC, keeping entries with `|v| > 0.0`.
    ///
    /// Equivalent to `self.to_coo(0.0).to_csc()` — same entries, same
    /// within-column row order — without materializing the intermediate
    /// triplet list. This is the inter-layer hot path of the GCN runner
    /// (the ReLU-dense hidden features re-enter the accelerator as the
    /// next layer's sparse operand).
    pub fn to_csc(&self) -> crate::Csc {
        let mut col_ptr = vec![0usize; self.cols + 1];
        for r in 0..self.rows {
            for (c, v) in self.row(r).iter().enumerate() {
                if v.abs() > 0.0 {
                    col_ptr[c + 1] += 1;
                }
            }
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let nnz = col_ptr[self.cols];
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = col_ptr.clone();
        // Row-major scan fills each column bucket in ascending row order —
        // exactly the sorted order `Coo::to_csc`'s compression produces.
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                if v.abs() > 0.0 {
                    let p = cursor[c];
                    row_idx[p] = r as u32;
                    values[p] = v;
                    cursor[c] += 1;
                }
            }
        }
        crate::Csc::from_parts(self.rows, self.cols, col_ptr, row_idx, values)
            .expect("column scan produces a well-formed CSC")
    }

    /// Converts to COO, keeping entries with `|v| > threshold`.
    pub fn to_coo(&self, threshold: f32) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if v.abs() > threshold {
                    coo.push(r, c, v).expect("index in bounds by construction");
                }
            }
        }
        coo
    }

    /// True when every entry differs from `other` by at most `tol`.
    ///
    /// Returns `false` when shapes differ. Used for functional equivalence
    /// checks between the accelerator and the software reference.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(SparseError::DimensionMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).unwrap_err();
        assert_eq!(
            err,
            SparseError::RaggedRows {
                expected: 2,
                row: 1,
                found: 1
            }
        );
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.nnz(), 1);
        assert!((m.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn row_and_column_views() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = DenseMatrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.5]]).unwrap();
        m.relu_in_place();
        assert_eq!(m.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn matmul_small() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(SparseError::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[1.0005, 2.0]]).unwrap();
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        let c = DenseMatrix::zeros(1, 3);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn max_abs_diff_reports_largest() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.5, 2.25]]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.max_abs_diff(&DenseMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn to_csc_matches_coo_roundtrip() {
        // Pin the direct conversion against the two-step reference on a
        // matrix with zeros, negatives, duplicate values, and empty
        // rows/columns.
        let m = DenseMatrix::from_rows(&[
            &[0.0, 0.5, -1.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[1.5, 0.5, 0.0, -2.25],
            &[-0.0, 3.0, 4.0, 0.0],
        ])
        .unwrap();
        let direct = m.to_csc();
        let via_coo = m.to_coo(0.0).to_csc();
        assert_eq!(direct, via_coo);
        assert_eq!(direct.nnz(), 7);
        assert_eq!(direct.to_dense().nnz(), m.nnz());
        // Degenerate shapes.
        let empty = DenseMatrix::zeros(3, 0);
        assert_eq!(empty.to_csc(), empty.to_coo(0.0).to_csc());
        let zeros = DenseMatrix::zeros(2, 5);
        assert_eq!(zeros.to_csc(), zeros.to_coo(0.0).to_csc());
        assert_eq!(zeros.to_csc().nnz(), 0);
    }

    #[test]
    fn to_coo_respects_threshold() {
        let m = DenseMatrix::from_rows(&[&[0.0, 0.5], &[1.5, 0.0]]).unwrap();
        let coo = m.to_coo(1.0);
        assert_eq!(coo.nnz(), 1);
        let coo = m.to_coo(0.0);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn row_range_copies_block() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let mid = m.row_range(1..3);
        assert_eq!(mid.shape(), (2, 2));
        assert_eq!(mid.get(0, 0), 3.0);
        assert_eq!(mid.get(1, 1), 6.0);
        assert_eq!(m.row_range(0..3), m);
        assert_eq!(m.row_range(2..2).shape(), (0, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_range_rejects_out_of_bounds() {
        DenseMatrix::zeros(2, 2).row_range(1..3);
    }
}
