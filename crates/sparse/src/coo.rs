use crate::{Csc, Csr, DenseMatrix, Result, SparseError};

/// Coordinate-format (triplet) sparse matrix.
///
/// COO is the construction format: graph generators emit `(row, col, value)`
/// triplets, which are then compiled to [`Csr`] or [`Csc`] for computation.
///
/// # Example
///
/// ```
/// use awb_sparse::Coo;
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let mut m = Coo::new(2, 2);
/// m.push(0, 0, 1.0)?;
/// m.push(1, 1, 2.0)?;
/// assert_eq!(m.nnz(), 2);
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    /// Creates an empty `rows x cols` COO matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX` (indices are stored as
    /// `u32` — the largest paper dataset, Reddit, has 233 K rows).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions exceed u32 index space"
        );
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends an entry. Duplicate coordinates are summed when compiled to a
    /// compressed format.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for indices outside the
    /// matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: f32) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Reserves capacity for `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Compiles to CSR, summing duplicate coordinates and dropping explicit
    /// zeros that result from cancellation.
    pub fn to_csr(&self) -> Csr {
        let (ptr, idx, val) = compress(
            self.rows,
            self.entries
                .iter()
                .map(|&(r, c, v)| (r as usize, c as usize, v)),
            self.nnz(),
        );
        Csr::from_parts(self.rows, self.cols, ptr, idx, val)
            .expect("compression produces a well-formed CSR")
    }

    /// Compiles to CSC, summing duplicate coordinates.
    pub fn to_csc(&self) -> Csc {
        let (ptr, idx, val) = compress(
            self.cols,
            self.entries
                .iter()
                .map(|&(r, c, v)| (c as usize, r as usize, v)),
            self.nnz(),
        );
        Csc::from_parts(self.rows, self.cols, ptr, idx, val)
            .expect("compression produces a well-formed CSC")
    }

    /// Materializes as a dense matrix (duplicates summed).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            let cur = d.get(r, c);
            d.set(r, c, cur + v);
        }
        d
    }
}

impl FromIterator<(usize, usize, f32)> for Coo {
    /// Collects triplets, sizing the matrix to the largest index seen.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f32)>>(iter: I) -> Self {
        let entries: Vec<(usize, usize, f32)> = iter.into_iter().collect();
        let rows = entries.iter().map(|e| e.0 + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|e| e.1 + 1).max().unwrap_or(0);
        let mut coo = Coo::new(rows, cols);
        for (r, c, v) in entries {
            coo.push(r, c, v).expect("indices within computed bounds");
        }
        coo
    }
}

/// Shared compression: buckets `(major, minor, value)` triplets by `major`,
/// sorts each bucket by `minor`, and sums duplicates.
fn compress(
    n_major: usize,
    triplets: impl Iterator<Item = (usize, usize, f32)>,
    nnz_hint: usize,
) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
    // Counting pass requires a concrete collection; collect once.
    let triplets: Vec<(usize, usize, f32)> = triplets.collect();
    let mut counts = vec![0usize; n_major + 1];
    for &(maj, _, _) in &triplets {
        counts[maj + 1] += 1;
    }
    for i in 0..n_major {
        counts[i + 1] += counts[i];
    }
    let mut idx = vec![0u32; nnz_hint];
    let mut val = vec![0.0f32; nnz_hint];
    let mut cursor = counts.clone();
    for &(maj, min, v) in &triplets {
        let p = cursor[maj];
        idx[p] = min as u32;
        val[p] = v;
        cursor[maj] += 1;
    }
    // Sort within each major bucket by minor index, then merge duplicates.
    let mut out_ptr = vec![0usize; n_major + 1];
    let mut out_idx = Vec::with_capacity(nnz_hint);
    let mut out_val = Vec::with_capacity(nnz_hint);
    for maj in 0..n_major {
        let (lo, hi) = (counts[maj], counts[maj + 1]);
        let mut bucket: Vec<(u32, f32)> = idx[lo..hi]
            .iter()
            .copied()
            .zip(val[lo..hi].iter().copied())
            .collect();
        bucket.sort_unstable_by_key(|&(m, _)| m);
        let mut i = 0;
        while i < bucket.len() {
            let m = bucket[i].0;
            let mut sum = 0.0;
            while i < bucket.len() && bucket[i].0 == m {
                sum += bucket[i].1;
                i += 1;
            }
            if sum != 0.0 {
                out_idx.push(m);
                out_val.push(sum);
            }
        }
        out_ptr[maj + 1] = out_idx.len();
    }
    (out_ptr, out_idx, out_val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_bounds_checked() {
        let mut m = Coo::new(2, 2);
        assert!(m.push(0, 0, 1.0).is_ok());
        assert!(matches!(
            m.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn duplicates_are_summed_in_compressed_forms() {
        let mut m = Coo::new(2, 2);
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 1, 2.5).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().get(0, 1), 3.5);
        let csc = m.to_csc();
        assert_eq!(csc.nnz(), 1);
        assert_eq!(csc.to_dense().get(0, 1), 3.5);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut m = Coo::new(1, 1);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, -1.0).unwrap();
        assert_eq!(m.to_csr().nnz(), 0);
        assert_eq!(m.to_csc().nnz(), 0);
    }

    #[test]
    fn to_dense_matches_entries() {
        let mut m = Coo::new(3, 2);
        m.push(2, 0, 4.0).unwrap();
        m.push(0, 1, -1.0).unwrap();
        let d = m.to_dense();
        assert_eq!(d.get(2, 0), 4.0);
        assert_eq!(d.get(0, 1), -1.0);
        assert_eq!(d.nnz(), 2);
    }

    #[test]
    fn from_iterator_sizes_to_max_index() {
        let coo: Coo = vec![(0usize, 0usize, 1.0f32), (3, 1, 2.0)]
            .into_iter()
            .collect();
        assert_eq!(coo.shape(), (4, 2));
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn empty_from_iterator() {
        let coo: Coo = std::iter::empty().collect();
        assert_eq!(coo.shape(), (0, 0));
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn csr_csc_agree_with_dense() {
        let mut m = Coo::new(4, 3);
        for (r, c, v) in [(0, 0, 1.0), (1, 2, 2.0), (3, 1, -1.0), (3, 2, 0.5)] {
            m.push(r, c, v).unwrap();
        }
        assert_eq!(m.to_csr().to_dense(), m.to_dense());
        assert_eq!(m.to_csc().to_dense(), m.to_dense());
    }

    #[test]
    fn iter_yields_all_triplets() {
        let mut m = Coo::new(2, 2);
        m.push(0, 1, 7.0).unwrap();
        m.push(1, 0, 8.0).unwrap();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 7.0), (1, 0, 8.0)]);
    }
}
