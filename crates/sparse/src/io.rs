//! Matrix Market (`.mtx`) import/export.
//!
//! The synthetic generators in `awb-datasets` reproduce the published
//! statistics of the paper's datasets, but a user who has the original
//! graphs (or any other SuiteSparse-style matrix) can feed them to the
//! simulator through this module: `coordinate real/integer/pattern`
//! matrices in `general` or `symmetric` form are supported, which covers
//! the common ways GCN adjacency matrices are distributed.

use crate::{Coo, Result, SparseError};
use std::io::{BufRead, Write};

/// Value type declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmField {
    Real,
    Integer,
    /// Pattern matrices carry no values; entries read as 1.0.
    Pattern,
}

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmSymmetry {
    General,
    /// Off-diagonal entries are mirrored on read.
    Symmetric,
}

/// Reads a sparse matrix in Matrix Market coordinate format.
///
/// # Errors
///
/// Returns [`SparseError::MalformedFormat`] for syntax errors, unsupported
/// header variants (`array` storage, `complex`/`hermitian`/`skew-symmetric`
/// qualifiers), out-of-range indices, non-finite (NaN/±inf) values, or
/// entry-count mismatches.
///
/// # Example
///
/// ```
/// use awb_sparse::io::read_matrix_market;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n\
///             % a comment\n\
///             3 3 2\n\
///             1 2 5.0\n\
///             3 1 -1.5\n";
/// let coo = read_matrix_market(text.as_bytes()).unwrap();
/// assert_eq!(coo.shape(), (3, 3));
/// assert_eq!(coo.to_dense().get(0, 1), 5.0);
/// assert_eq!(coo.to_dense().get(2, 0), -1.5);
/// ```
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Coo> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::MalformedFormat("empty file".into()))?
        .map_err(io_err)?;
    let (field, symmetry) = parse_header(&header)?;

    // Skip comments; the first non-comment line is the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(io_err)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line =
        size_line.ok_or_else(|| SparseError::MalformedFormat("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::MalformedFormat(format!("bad size token `{t}`")))
        })
        .collect::<Result<_>>()?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(SparseError::MalformedFormat(format!(
            "size line needs `rows cols nnz`, got `{size_line}`"
        )));
    };

    let mut coo = Coo::new(rows, cols);
    coo.reserve(if symmetry == MmSymmetry::Symmetric {
        nnz * 2
    } else {
        nnz
    });
    let mut read = 0usize;
    for line in lines {
        let line = line.map_err(io_err)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let r: usize = parse_index(tokens.next(), "row")?;
        let c: usize = parse_index(tokens.next(), "column")?;
        let v: f32 = match field {
            MmField::Pattern => 1.0,
            MmField::Real | MmField::Integer => {
                let t = tokens
                    .next()
                    .ok_or_else(|| SparseError::MalformedFormat("missing value token".into()))?;
                let v = t
                    .parse::<f32>()
                    .map_err(|_| SparseError::MalformedFormat(format!("bad value `{t}`")))?;
                // `f32::from_str` happily parses "NaN"/"inf"; a non-finite
                // adjacency or feature value would silently poison every
                // SPMM it touches, so reject at the boundary.
                if !v.is_finite() {
                    return Err(SparseError::MalformedFormat(format!(
                        "non-finite value `{t}` (NaN/inf entries are rejected at ingest)"
                    )));
                }
                v
            }
        };
        // Matrix Market is 1-indexed.
        if r == 0 || c == 0 {
            return Err(SparseError::MalformedFormat(
                "matrix market indices are 1-based; found 0".into(),
            ));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetry == MmSymmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        read += 1;
    }
    if read != nnz {
        return Err(SparseError::MalformedFormat(format!(
            "header declared {nnz} entries, file contained {read}"
        )));
    }
    Ok(coo)
}

/// Writes a matrix in Matrix Market `coordinate real general` format.
///
/// # Errors
///
/// Returns [`SparseError::MalformedFormat`] wrapping any I/O failure.
///
/// # Example
///
/// ```
/// use awb_sparse::io::{read_matrix_market, write_matrix_market};
/// use awb_sparse::Coo;
///
/// let mut m = Coo::new(2, 2);
/// m.push(0, 1, 2.5).unwrap();
/// let mut buf = Vec::new();
/// write_matrix_market(&mut buf, &m).unwrap();
/// let back = read_matrix_market(buf.as_slice()).unwrap();
/// assert_eq!(back.to_dense(), m.to_dense());
/// ```
pub fn write_matrix_market<W: Write>(writer: &mut W, m: &Coo) -> Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(writer, "% written by awb-sparse").map_err(io_err)?;
    writeln!(writer, "{} {} {}", m.rows(), m.cols(), m.nnz()).map_err(io_err)?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v).map_err(io_err)?;
    }
    Ok(())
}

fn parse_header(header: &str) -> Result<(MmField, MmSymmetry)> {
    let tokens: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    let [banner, object, format, field, symmetry] = &tokens[..] else {
        return Err(SparseError::MalformedFormat(format!(
            "bad matrix market header `{header}`"
        )));
    };
    if banner != "%%matrixmarket" || object != "matrix" {
        return Err(SparseError::MalformedFormat(format!(
            "not a matrix market file: `{header}`"
        )));
    }
    if format != "coordinate" {
        return Err(SparseError::MalformedFormat(format!(
            "only coordinate storage is supported, got `{format}`"
        )));
    }
    let field = match field.as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::MalformedFormat(format!(
                "unsupported field type `{other}`"
            )))
        }
    };
    let symmetry = match symmetry.as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::MalformedFormat(format!(
                "unsupported symmetry `{other}`"
            )))
        }
    };
    Ok((field, symmetry))
}

fn parse_index(token: Option<&str>, what: &str) -> Result<usize> {
    let t = token.ok_or_else(|| SparseError::MalformedFormat(format!("missing {what} index")))?;
    t.parse::<usize>()
        .map_err(|_| SparseError::MalformedFormat(format!("bad {what} index `{t}`")))
}

fn io_err(e: std::io::Error) -> SparseError {
    SparseError::MalformedFormat(format!("io error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_real_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 3 2\n1 1 1.5\n2 3 -2\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (2, 3));
        let d = m.to_dense();
        assert_eq!(d.get(0, 0), 1.5);
        assert_eq!(d.get(1, 2), -2.0);
    }

    #[test]
    fn reads_pattern_symmetric() {
        let text =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% adjacency\n3 3 2\n2 1\n3 3\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        let d = m.to_dense();
        assert_eq!(d.get(1, 0), 1.0);
        assert_eq!(d.get(0, 1), 1.0); // mirrored
        assert_eq!(d.get(2, 2), 1.0); // diagonal not duplicated
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn reads_integer_field() {
        let text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.to_dense().get(0, 0), 7.0);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n%c1\n\n% c2\n2 2 1\n\n1 2 3\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn rejects_bad_headers() {
        for text in [
            "",
            "plain garbage\n1 1 0\n",
            "%%MatrixMarket matrix array real general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
        ] {
            assert!(
                read_matrix_market(text.as_bytes()).is_err(),
                "accepted: {text:?}"
            );
        }
    }

    #[test]
    fn rejects_inconsistencies() {
        // Declared 2 entries, has 1.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        // Zero-based index.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        // Out-of-range index.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        // Missing value.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_files() {
        // Header only.
        let text = "%%MatrixMarket matrix coordinate real general\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::MalformedFormat(_))
        ));
        // Size line cut mid-token ("2 2" instead of "2 2 nnz").
        let text = "%%MatrixMarket matrix coordinate real general\n2 2\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        // Entry line truncated after the column index.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        // File ends before all declared entries arrive.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices_without_panicking() {
        for entry in ["3 1 1.0", "1 9 1.0", "100 100 1.0"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n{entry}\n");
            assert!(matches!(
                read_matrix_market(text.as_bytes()),
                Err(SparseError::IndexOutOfBounds { .. } | SparseError::MalformedFormat(_))
            ));
        }
        // Symmetric mirror of an out-of-range entry must also error, not
        // panic.
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 3 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "nan", "inf", "-inf", "infinity", "1e999"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 {bad}\n");
            let err = read_matrix_market(text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, SparseError::MalformedFormat(ref m) if m.contains("non-finite")),
                "{bad} -> {err:?}"
            );
        }
        // Finite extremes still pass.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.4e38\n";
        assert!(read_matrix_market(text.as_bytes()).is_ok());
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let mut m = Coo::new(4, 5);
        for (r, c, v) in [(0, 0, 1.0f32), (3, 4, -2.5), (1, 2, 0.125)] {
            m.push(r, c, v).unwrap();
        }
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.to_dense(), m.to_dense());
    }
}
