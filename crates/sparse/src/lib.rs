//! Sparse matrix substrate for the AWB-GCN reproduction.
//!
//! This crate provides the storage formats and reference kernels that both
//! the software GCN model ([`awb-gcn-model`]) and the accelerator simulator
//! ([`awb-accel`]) are built on:
//!
//! * [`DenseMatrix`] — row-major dense `f32` matrix.
//! * [`Coo`] — coordinate (triplet) format, the usual construction format.
//! * [`Csr`] — compressed sparse row.
//! * [`Csc`] — compressed sparse column, the accelerator's native format
//!   (paper Fig. 4: `Val` / `Row ID` / `Col Ptr` arrays).
//! * [`spmm`] — reference multiply kernels used as functional ground truth.
//! * [`ops_count`] — multiply-accumulate operation counting for the
//!   execution-order analysis of the paper's Table 2.
//! * [`profile`] — nnz-pattern statistics (density, row-nnz distributions,
//!   imbalance metrics, block heatmaps) backing Table 1 and Figs. 1/13.
//! * [`partition`] — nnz-balanced column sharding (plus zero-rebuild
//!   `col_range`/`row_range` slicing on the formats) for graphs bigger
//!   than one device.
//! * [`store`] — chunked on-disk store (`by_column`/`by_row` mirrors with
//!   a JSON manifest) so graphs bigger than host memory stream in bounded
//!   column windows.
//!
//! # Example
//!
//! ```
//! use awb_sparse::{Coo, Csc, DenseMatrix, spmm};
//!
//! # fn main() -> Result<(), awb_sparse::SparseError> {
//! let mut a = Coo::new(3, 3);
//! a.push(0, 1, 2.0)?;
//! a.push(2, 0, 1.0)?;
//! let a: Csc = a.to_csc();
//! let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.0], &[0.0, 2.0]])?;
//! let c = spmm::csc_times_dense(&a, &b)?;
//! assert_eq!(c.get(0, 1), 2.0); // 2.0 * b[1,1]
//! # Ok(())
//! # }
//! ```
//!
//! [`awb-gcn-model`]: https://example.invalid/awb-gcn-repro
//! [`awb-accel`]: https://example.invalid/awb-gcn-repro

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod dense;
mod error;
pub mod io;
pub mod ops_count;
pub mod partition;
pub mod profile;
pub mod spmm;
pub mod store;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::DenseMatrix;
pub use error::SparseError;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
