//! Reference multiply kernels.
//!
//! These are the software ground truth that the accelerator simulator's
//! functional output is cross-checked against. `csc_times_dense` mirrors the
//! accelerator's own column-streaming schedule (paper Eq. 4 / Fig. 5):
//! for each output column `k`, each non-zero `b(j,k)` of the dense operand
//! is broadcast to the whole column `j` of the sparse operand.

use crate::{Csc, Csr, DenseMatrix, Result, SparseError};

/// `C = A * B` with `A` sparse (CSC) and `B` dense — the accelerator's
/// native schedule.
///
/// For each column `k` of `B` ("round" in the paper's terminology) and each
/// non-zero `b(j, k)`, the entire sparse column `A[:, j]` is scaled and
/// accumulated into `C[:, k]`.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use awb_sparse::{Coo, DenseMatrix, spmm};
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let mut a = Coo::new(2, 2);
/// a.push(0, 0, 2.0)?;
/// let b = DenseMatrix::from_rows(&[&[1.0], &[1.0]])?;
/// let c = spmm::csc_times_dense(&a.to_csc(), &b)?;
/// assert_eq!(c.get(0, 0), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn csc_times_dense(a: &Csc, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csc_times_dense",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for k in 0..b.cols() {
        for j in 0..a.cols() {
            let bjk = b.get(j, k);
            if bjk == 0.0 {
                continue;
            }
            for (i, aij) in a.col_entries(j) {
                let cur = c.get(i, k);
                c.set(i, k, cur + aij * bjk);
            }
        }
    }
    Ok(c)
}

/// `C = A * B` with `A` sparse (CSR) and `B` dense — the conventional
/// row-major schedule, used as an independent second reference.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csr_times_dense(a: &Csr, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csr_times_dense",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (j, aij) in a.row_entries(i) {
            let b_row = b.row(j);
            let c_row = c.row_mut(i);
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aij * bv;
            }
        }
    }
    Ok(c)
}

/// `C = A * B` with both operands sparse (SpGEMM), returning a dense result.
///
/// GCN layers never need a sparse output (the result of `A × (XW)` is
/// near-dense — paper §3.3), so the dense result format is deliberate.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csr_times_csr(a: &Csr, b: &Csr) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csr_times_csr",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (j, aij) in a.row_entries(i) {
            for (k, bjk) in b.row_entries(j) {
                let cur = c.get(i, k);
                c.set(i, k, cur + aij * bjk);
            }
        }
    }
    Ok(c)
}

/// Number of scalar multiply-accumulate operations performed by
/// [`csc_times_dense`] for the given operands: one MAC per
/// (non-zero of `A[:, j]`, non-zero `b(j, k)`) pair.
///
/// This equals the number of *tasks* the accelerator dispatches to its PE
/// array for the same SPMM.
pub fn csc_times_dense_macs(a: &Csc, b: &DenseMatrix) -> usize {
    let mut macs = 0usize;
    for k in 0..b.cols() {
        for j in 0..a.cols().min(b.rows()) {
            if b.get(j, k) != 0.0 {
                macs += a.col_nnz(j);
            }
        }
    }
    macs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sparse_3x3() -> Coo {
        let mut a = Coo::new(3, 3);
        for (r, c, v) in [(0, 1, 2.0), (1, 1, -1.0), (2, 0, 3.0), (2, 2, 4.0)] {
            a.push(r, c, v).unwrap();
        }
        a
    }

    fn dense_3x2() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    #[test]
    fn csc_schedule_matches_dense_matmul() {
        let a = sparse_3x3();
        let b = dense_3x2();
        let expect = a.to_dense().matmul(&b).unwrap();
        let got = csc_times_dense(&a.to_csc(), &b).unwrap();
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn csr_schedule_matches_dense_matmul() {
        let a = sparse_3x3();
        let b = dense_3x2();
        let expect = a.to_dense().matmul(&b).unwrap();
        let got = csr_times_dense(&a.to_csr(), &b).unwrap();
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sparse_3x3();
        let b = sparse_3x3();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        let got = csr_times_csr(&a.to_csr(), &b.to_csr()).unwrap();
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = sparse_3x3();
        let bad = DenseMatrix::zeros(2, 2);
        assert!(csc_times_dense(&a.to_csc(), &bad).is_err());
        assert!(csr_times_dense(&a.to_csr(), &bad).is_err());
        let bad_sparse = Coo::new(2, 2).to_csr();
        assert!(csr_times_csr(&a.to_csr(), &bad_sparse).is_err());
    }

    #[test]
    fn mac_count_matches_manual() {
        let a = sparse_3x3().to_csc();
        let b = dense_3x2(); // fully dense: every b(j,k) hits col j of A
                             // per column of B: nnz(A) = 4 MACs; 2 columns -> 8.
        assert_eq!(csc_times_dense_macs(&a, &b), 8);
        // Zero out one b entry -> subtract nnz of that column of A.
        let mut b2 = b.clone();
        b2.set(1, 0, 0.0); // column 1 of A has 2 nnz
        assert_eq!(csc_times_dense_macs(&a, &b2), 6);
    }

    #[test]
    fn empty_operands() {
        let a = Coo::new(0, 0).to_csc();
        let b = DenseMatrix::zeros(0, 0);
        let c = csc_times_dense(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 0));
    }
}
