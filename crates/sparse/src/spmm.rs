//! Reference multiply kernels.
//!
//! These are the software ground truth that the accelerator simulator's
//! functional output is cross-checked against. `csc_times_dense` mirrors the
//! accelerator's own column-streaming schedule (paper Eq. 4 / Fig. 5):
//! for each output column `k`, each non-zero `b(j,k)` of the dense operand
//! is broadcast to the whole column `j` of the sparse operand.
//!
//! The production kernels accumulate through flat slices
//! ([`csc_axpy_column`], `DenseMatrix::row_mut`) instead of per-element
//! `get`/`set`; the original per-element implementations are retained as
//! `*_naive` for the `kernels` criterion group and for exact-equivalence
//! tests (both orderings perform the identical sequence of f32 additions
//! per output element, so results are bit-identical).

use crate::{Csc, Csr, DenseMatrix, Result, SparseError};

/// Accumulates `scale × A[:, j]` into the column accumulator `acc`
/// (`acc[i] += a(i, j) * scale` for every non-zero of column `j`).
///
/// This is the tight inner kernel of the accelerator's column-streaming
/// schedule: one call per non-zero `b(j, k)` of the dense operand, walking
/// the CSC column slice in index order. The simulator's replay path uses it
/// for the numerics of rounds whose queue dynamics are served from cache.
///
/// # Panics
///
/// Panics if `j >= a.cols()` or `acc.len() < a.rows()`.
#[inline]
pub fn csc_axpy_column(a: &Csc, j: usize, scale: f32, acc: &mut [f32]) {
    let lo = a.col_ptr()[j];
    let hi = a.col_ptr()[j + 1];
    for (&i, &v) in a.row_idx()[lo..hi].iter().zip(&a.values()[lo..hi]) {
        acc[i as usize] += v * scale;
    }
}

/// Writes the non-zero entries of the column accumulator `acc` into column
/// `k` of `c`, then resets `acc` to all-`+0.0` for the next round-column.
///
/// The *write* stays conditional (`*v != 0.0`) so the fast kernel performs
/// the identical sequence of `DenseMatrix::set` calls as the naive
/// reference and stays bit-identical to it. The *reset* is unconditional:
/// `-0.0 != 0.0` is `false` in IEEE-754, so a conditional reset would skip
/// `-0.0` slots and leak the sign bit into every later column that touches
/// the same row.
///
/// # Panics
///
/// Panics if `acc.len() != c.rows()` or `k >= c.cols()`.
#[inline]
pub fn drain_column_into(c: &mut DenseMatrix, k: usize, acc: &mut [f32]) {
    assert_eq!(acc.len(), c.rows(), "accumulator length must match rows");
    for (i, v) in acc.iter_mut().enumerate() {
        if *v != 0.0 {
            c.set(i, k, *v);
        }
        *v = 0.0;
    }
}

/// Lane count of the blocked accumulate kernels: B-columns are processed
/// in blocks of up to this many `f32` lanes per accumulator row, sized so
/// one row's lane group fills a single 256-bit vector register.
pub const ACC_BLOCK_LANES: usize = 8;

/// The innermost blocked loop, monomorphized per lane count so the
/// compiler sees a fixed-width `[f32; L]` FMA group it can vectorize.
#[inline(always)]
fn axpy_lanes<const L: usize>(a: &Csc, j: usize, scales: &[f32; L], acc: &mut [f32]) {
    let lo = a.col_ptr()[j];
    let hi = a.col_ptr()[j + 1];
    for (&i, &v) in a.row_idx()[lo..hi].iter().zip(&a.values()[lo..hi]) {
        let base = i as usize * L;
        let dst: &mut [f32; L] = (&mut acc[base..base + L]).try_into().unwrap();
        for l in 0..L {
            dst[l] += v * scales[l];
        }
    }
}

/// Blocked form of [`csc_axpy_column`]: accumulates `scales[l] × A[:, j]`
/// into lane `l` of the block accumulator for every lane at once.
///
/// `acc` is row-major over lanes — `acc[i * W + l]` holds output element
/// `(i, k0 + l)` for block width `W = scales.len()` — so each non-zero of
/// the sparse column touches one contiguous `W`-lane group, which the
/// compiler vectorizes for the fixed widths ([`ACC_BLOCK_LANES`] and its
/// half). Width 1 degenerates to the scalar kernel's addition sequence.
///
/// # Panics
///
/// Panics if `j >= a.cols()` or `acc.len() < a.rows() * scales.len()`.
#[inline]
pub fn csc_axpy_block(a: &Csc, j: usize, scales: &[f32], acc: &mut [f32]) {
    match scales.len() {
        8 => axpy_lanes::<8>(a, j, scales.try_into().unwrap(), acc),
        4 => axpy_lanes::<4>(a, j, scales.try_into().unwrap(), acc),
        w => {
            let lo = a.col_ptr()[j];
            let hi = a.col_ptr()[j + 1];
            for (&i, &v) in a.row_idx()[lo..hi].iter().zip(&a.values()[lo..hi]) {
                let base = i as usize * w;
                for (dst, &s) in acc[base..base + w].iter_mut().zip(scales) {
                    *dst += v * s;
                }
            }
        }
    }
}

/// Accumulates the numerics of output columns `k0 .. k0 + width` into the
/// block accumulator `acc` (layout as in [`csc_axpy_block`]).
///
/// # Pinned reduction order (bit-identity with the scalar kernels)
///
/// The scalar schedule visits, per output column `k`, the non-zero
/// `b(j, k)` in ascending `j` and adds `a(i, j) * b(j, k)` in CSC index
/// order. This kernel iterates `j` ascending over the *union* of the
/// block's column patterns and lets zero lanes ride along: for a lane
/// where `b(j, k0 + l)` is `±0.0`, the addition `acc += v * (±0.0)` is a
/// bit-exact no-op, because the accumulator is never `-0.0` (it starts
/// `+0.0`, `(+0.0) + (-0.0) = +0.0` in round-to-nearest, and an exact
/// cancellation yields `+0.0`). Every value-changing addition therefore
/// happens in exactly the scalar order, and the result is bit-identical
/// to [`csc_times_dense`] — asserted by tests and proptests.
///
/// The no-op argument needs *finite* operands (`inf × 0.0` is NaN); the
/// engines guarantee this via ingest validation, and the graph/feature
/// loaders reject non-finite tokens at parse.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`, `k0 + width > b.cols()`, or
/// `acc.len() < a.rows() * width`.
pub fn csc_accumulate_block(a: &Csc, b: &DenseMatrix, k0: usize, width: usize, acc: &mut [f32]) {
    assert_eq!(a.cols(), b.rows(), "operand dimensions must agree");
    for j in 0..a.cols() {
        let scales = &b.row(j)[k0..k0 + width];
        if scales.iter().all(|&s| s == 0.0) {
            continue;
        }
        csc_axpy_block(a, j, scales, acc);
    }
}

/// Blocked form of [`drain_column_into`]: writes the non-zero entries of
/// the block accumulator into columns `k0 .. k0 + width` of `c` (one
/// contiguous row-slice store per accumulator row), then resets `acc` to
/// all-`+0.0`. The write stays conditional (`!= 0.0`, matching the scalar
/// drain's `DenseMatrix::set` sequence) and the reset unconditional (a
/// `-0.0` residue must not leak into the next block).
///
/// # Panics
///
/// Panics if `acc.len() != c.rows() * width` or `k0 + width > c.cols()`.
pub fn drain_block_into(c: &mut DenseMatrix, k0: usize, width: usize, acc: &mut [f32]) {
    assert_eq!(
        acc.len(),
        c.rows() * width,
        "block accumulator length must match rows × width"
    );
    for (i, src) in acc.chunks_exact_mut(width).enumerate() {
        let dst = &mut c.row_mut(i)[k0..k0 + width];
        for (d, s) in dst.iter_mut().zip(src.iter_mut()) {
            if *s != 0.0 {
                *d = *s;
            }
            *s = 0.0;
        }
    }
}

/// Blocked form of [`csc_times_dense`]: processes B-columns in
/// [`ACC_BLOCK_LANES`]-wide blocks (narrower final block for widths not
/// divisible by the lane count) through [`csc_accumulate_block`]. The
/// result is bit-identical to [`csc_times_dense`] — the pinned reduction
/// order is the whole point (see [`csc_accumulate_block`]); this is the
/// raw-speed variant, walking `A`'s non-zeros once per *block* instead of
/// once per column.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csc_times_dense_blocked(a: &Csc, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csc_times_dense_blocked",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let mut acc = vec![0f32; a.rows() * ACC_BLOCK_LANES.min(b.cols())];
    let mut k0 = 0;
    while k0 < b.cols() {
        let width = ACC_BLOCK_LANES.min(b.cols() - k0);
        let block = &mut acc[..a.rows() * width];
        csc_accumulate_block(a, b, k0, width, block);
        drain_block_into(&mut c, k0, width, block);
        k0 += width;
    }
    Ok(c)
}

/// `C = A * B` with `A` sparse (CSC) and `B` dense — the accelerator's
/// native schedule.
///
/// For each column `k` of `B` ("round" in the paper's terminology) and each
/// non-zero `b(j, k)`, the entire sparse column `A[:, j]` is scaled and
/// accumulated into `C[:, k]` via [`csc_axpy_column`].
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use awb_sparse::{Coo, DenseMatrix, spmm};
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let mut a = Coo::new(2, 2);
/// a.push(0, 0, 2.0)?;
/// let b = DenseMatrix::from_rows(&[&[1.0], &[1.0]])?;
/// let c = spmm::csc_times_dense(&a.to_csc(), &b)?;
/// assert_eq!(c.get(0, 0), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn csc_times_dense(a: &Csc, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csc_times_dense",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let mut acc = vec![0f32; a.rows()];
    for k in 0..b.cols() {
        for j in 0..a.cols() {
            let bjk = b.get(j, k);
            if bjk == 0.0 {
                continue;
            }
            csc_axpy_column(a, j, bjk, &mut acc);
        }
        drain_column_into(&mut c, k, &mut acc);
    }
    Ok(c)
}

/// Per-element reference implementation of [`csc_times_dense`], retained
/// for the `kernels` criterion group and bit-exactness tests.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csc_times_dense_naive(a: &Csc, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csc_times_dense_naive",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for k in 0..b.cols() {
        for j in 0..a.cols() {
            let bjk = b.get(j, k);
            if bjk == 0.0 {
                continue;
            }
            for (i, aij) in a.col_entries(j) {
                let cur = c.get(i, k);
                c.set(i, k, cur + aij * bjk);
            }
        }
    }
    Ok(c)
}

/// `C = A * B` with `A` sparse (CSR) and `B` dense — the conventional
/// row-major schedule, used as an independent second reference.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csr_times_dense(a: &Csr, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csr_times_dense",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (j, aij) in a.row_entries(i) {
            let b_row = b.row(j);
            let c_row = c.row_mut(i);
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aij * bv;
            }
        }
    }
    Ok(c)
}

/// `C = A * B` with both operands sparse (SpGEMM), returning a dense result.
///
/// GCN layers never need a sparse output (the result of `A × (XW)` is
/// near-dense — paper §3.3), so the dense result format is deliberate. The
/// inner accumulation runs over the borrowed output-row slice.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csr_times_csr(a: &Csr, b: &Csr) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csr_times_csr",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let c_row = c.row_mut(i);
        for (j, aij) in a.row_entries(i) {
            for (k, bjk) in b.row_entries(j) {
                c_row[k] += aij * bjk;
            }
        }
    }
    Ok(c)
}

/// Per-element reference implementation of [`csr_times_csr`], retained for
/// the `kernels` criterion group and bit-exactness tests.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()`.
pub fn csr_times_csr_naive(a: &Csr, b: &Csr) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csr_times_csr_naive",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (j, aij) in a.row_entries(i) {
            for (k, bjk) in b.row_entries(j) {
                let cur = c.get(i, k);
                c.set(i, k, cur + aij * bjk);
            }
        }
    }
    Ok(c)
}

/// Number of scalar multiply-accumulate operations performed by
/// [`csc_times_dense`] for the given operands: one MAC per
/// (non-zero of `A[:, j]`, non-zero `b(j, k)`) pair.
///
/// This equals the number of *tasks* the accelerator dispatches to its PE
/// array for the same SPMM.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.cols() != b.rows()` —
/// the same validation as the kernels, so the count can never silently
/// disagree with [`csc_times_dense`] on mismatched shapes.
pub fn csc_times_dense_macs(a: &Csc, b: &DenseMatrix) -> Result<usize> {
    if a.cols() != b.rows() {
        return Err(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "csc_times_dense_macs",
        });
    }
    let mut macs = 0usize;
    for k in 0..b.cols() {
        for j in 0..a.cols() {
            if b.get(j, k) != 0.0 {
                macs += a.col_nnz(j);
            }
        }
    }
    Ok(macs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sparse_3x3() -> Coo {
        let mut a = Coo::new(3, 3);
        for (r, c, v) in [(0, 1, 2.0), (1, 1, -1.0), (2, 0, 3.0), (2, 2, 4.0)] {
            a.push(r, c, v).unwrap();
        }
        a
    }

    fn dense_3x2() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    #[test]
    fn csc_schedule_matches_dense_matmul() {
        let a = sparse_3x3();
        let b = dense_3x2();
        let expect = a.to_dense().matmul(&b).unwrap();
        let got = csc_times_dense(&a.to_csc(), &b).unwrap();
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn csr_schedule_matches_dense_matmul() {
        let a = sparse_3x3();
        let b = dense_3x2();
        let expect = a.to_dense().matmul(&b).unwrap();
        let got = csr_times_dense(&a.to_csr(), &b).unwrap();
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sparse_3x3();
        let b = sparse_3x3();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        let got = csr_times_csr(&a.to_csr(), &b.to_csr()).unwrap();
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn slice_kernels_bit_identical_to_naive() {
        // Same per-element f32 addition order -> exact equality, not approx.
        let mut a = Coo::new(24, 24);
        for s in 0..96u32 {
            let r = (s.wrapping_mul(17) % 24) as usize;
            let c = (s.wrapping_mul(29) % 24) as usize;
            a.push(r, c, (s % 11) as f32 * 0.25 - 1.0).unwrap();
        }
        let b_data: Vec<f32> = (0..24 * 5).map(|i| ((i % 7) as f32) - 3.0).collect();
        let b = DenseMatrix::from_vec(24, 5, b_data).unwrap();
        assert_eq!(
            csc_times_dense(&a.to_csc(), &b).unwrap(),
            csc_times_dense_naive(&a.to_csc(), &b).unwrap()
        );
        assert_eq!(
            csr_times_csr(&a.to_csr(), &a.to_csr()).unwrap(),
            csr_times_csr_naive(&a.to_csr(), &a.to_csr()).unwrap()
        );
    }

    #[test]
    fn axpy_column_accumulates_in_index_order() {
        let a = sparse_3x3().to_csc();
        let mut acc = vec![1.0f32; 3];
        csc_axpy_column(&a, 1, 2.0, &mut acc);
        // Column 1 holds (0, 2.0) and (1, -1.0).
        assert_eq!(acc, vec![5.0, -1.0, 1.0]);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = sparse_3x3();
        let bad = DenseMatrix::zeros(2, 2);
        assert!(csc_times_dense(&a.to_csc(), &bad).is_err());
        assert!(csc_times_dense_naive(&a.to_csc(), &bad).is_err());
        assert!(csr_times_dense(&a.to_csr(), &bad).is_err());
        let bad_sparse = Coo::new(2, 2).to_csr();
        assert!(csr_times_csr(&a.to_csr(), &bad_sparse).is_err());
        assert!(csr_times_csr_naive(&a.to_csr(), &bad_sparse).is_err());
    }

    #[test]
    fn mac_count_matches_manual() {
        let a = sparse_3x3().to_csc();
        let b = dense_3x2(); // fully dense: every b(j,k) hits col j of A
                             // per column of B: nnz(A) = 4 MACs; 2 columns -> 8.
        assert_eq!(csc_times_dense_macs(&a, &b).unwrap(), 8);
        // Zero out one b entry -> subtract nnz of that column of A.
        let mut b2 = b.clone();
        b2.set(1, 0, 0.0); // column 1 of A has 2 nnz
        assert_eq!(csc_times_dense_macs(&a, &b2).unwrap(), 6);
    }

    #[test]
    fn mac_count_rejects_mismatched_shapes() {
        // The old implementation silently truncated to
        // a.cols().min(b.rows()) and returned a wrong-but-plausible count.
        let a = sparse_3x3().to_csc();
        let bad = DenseMatrix::from_rows(&[&[1.0], &[1.0]]).unwrap(); // 2 rows != 3 cols
        assert!(matches!(
            csc_times_dense_macs(&a, &bad),
            Err(SparseError::DimensionMismatch {
                op: "csc_times_dense_macs",
                ..
            })
        ));
    }

    #[test]
    fn drain_resets_negative_zero_residue() {
        // The old reset was folded into the `*v != 0.0` write guard, which
        // is false for -0.0: a negative-zero residue survived into the next
        // round-column. The reset must be unconditional.
        let mut c = DenseMatrix::zeros(3, 1);
        let mut acc = vec![1.5f32, -0.0, 0.0];
        drain_column_into(&mut c, 0, &mut acc);
        for (i, v) in acc.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                0.0f32.to_bits(),
                "acc[{i}] must be reset to +0.0"
            );
        }
        assert_eq!(c.get(0, 0), 1.5);
        // The -0.0 slot never held a non-zero value, so the output stays
        // the +0.0 it was initialised with.
        assert_eq!(c.get(1, 0).to_bits(), 0);
    }

    #[test]
    fn cancellation_columns_bit_identical_to_naive() {
        // Rows 0 and 1 cancel exactly in every output column (their B rows
        // are identical and their A entries are negations), exercising the
        // accumulator-reset path on exact-zero slots across all columns.
        let mut a = Coo::new(6, 6);
        a.push(0, 0, 0.75).unwrap();
        a.push(0, 1, -0.75).unwrap();
        a.push(1, 0, -0.5).unwrap();
        a.push(1, 1, 0.5).unwrap();
        for j in 0..6usize {
            a.push(2 + (j % 4), j, (j + 1) as f32 * 0.5).unwrap();
        }
        let mut b = DenseMatrix::zeros(6, 5);
        for (k, v) in [1.0f32, -1.0, 0.5, 0.0, -2.25].iter().enumerate() {
            b.set(0, k, *v);
            b.set(1, k, *v);
        }
        let csc = a.to_csc();
        let fast = csc_times_dense(&csc, &b).unwrap();
        let naive = csc_times_dense_naive(&csc, &b).unwrap();
        assert_eq!(fast, naive);
        for k in 0..5 {
            assert_eq!(fast.get(0, k).to_bits(), 0, "row 0 must cancel to +0.0");
            assert_eq!(fast.get(1, k).to_bits(), 0, "row 1 must cancel to +0.0");
        }
    }

    #[test]
    fn empty_operands() {
        let a = Coo::new(0, 0).to_csc();
        let b = DenseMatrix::zeros(0, 0);
        let c = csc_times_dense(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 0));
        assert_eq!(csc_times_dense_macs(&a, &b).unwrap(), 0);
        assert_eq!(csc_times_dense_blocked(&a, &b).unwrap().shape(), (0, 0));
    }

    /// A mid-sized pseudo-random operand pair for the blocked-kernel pins.
    fn blocked_fixture(cols: usize) -> (Csc, DenseMatrix) {
        let mut a = Coo::new(37, 31);
        for s in 0..140u32 {
            let r = (s.wrapping_mul(13).wrapping_add(5) % 37) as usize;
            let c = (s.wrapping_mul(23) % 31) as usize;
            a.push(r, c, ((s % 9) as f32) * 0.375 - 1.5).unwrap();
        }
        let b_data: Vec<f32> = (0..31 * cols)
            .map(|i| match i % 6 {
                0 => 0.0, // zero lanes ride along in every block
                5 => -((i % 11) as f32) * 0.25,
                _ => ((i % 7) as f32) - 3.0,
            })
            .collect();
        (a.to_csc(), DenseMatrix::from_vec(31, cols, b_data).unwrap())
    }

    #[test]
    fn blocked_bit_identical_to_scalar_across_widths() {
        // Widths straddling the lane count, including non-multiples of 8
        // (tail blocks of every width 1..=7) and the degenerate width 1.
        for cols in [1usize, 3, 4, 7, 8, 9, 12, 16, 19] {
            let (a, b) = blocked_fixture(cols);
            let scalar = csc_times_dense(&a, &b).unwrap();
            let blocked = csc_times_dense_blocked(&a, &b).unwrap();
            assert_eq!(scalar, blocked, "width {cols} must be bit-identical");
            assert_eq!(csc_times_dense_naive(&a, &b).unwrap(), blocked);
        }
    }

    #[test]
    fn blocked_handles_negative_zero_and_cancellation() {
        // Rows 0/1 of A are exact negations and share B rows -> every
        // output lane they touch cancels to +0.0; B also carries explicit
        // -0.0 entries, which the scalar path skips (`!= 0.0` is false)
        // and the blocked path rides through as a no-op lane.
        let mut a = Coo::new(6, 6);
        a.push(0, 0, 0.75).unwrap();
        a.push(0, 1, -0.75).unwrap();
        a.push(1, 0, -0.5).unwrap();
        a.push(1, 1, 0.5).unwrap();
        for j in 0..6usize {
            a.push(2 + (j % 4), j, (j + 1) as f32 * 0.5).unwrap();
        }
        let mut b = DenseMatrix::zeros(6, 10);
        for (k, v) in [1.0f32, -1.0, 0.5, 0.0, -2.25, -0.0, 3.5, -0.0, 0.125, -1.5]
            .iter()
            .enumerate()
        {
            b.set(0, k, *v);
            b.set(1, k, *v);
            b.set(2, k, if k % 3 == 0 { -0.0 } else { 0.25 });
        }
        let csc = a.to_csc();
        let scalar = csc_times_dense(&csc, &b).unwrap();
        let blocked = csc_times_dense_blocked(&csc, &b).unwrap();
        assert_eq!(scalar, blocked);
        for k in 0..10 {
            assert_eq!(
                blocked.get(0, k).to_bits(),
                0,
                "row 0 col {k} must cancel to +0.0"
            );
            assert_eq!(
                blocked.get(1, k).to_bits(),
                0,
                "row 1 col {k} must cancel to +0.0"
            );
        }
    }

    #[test]
    fn blocked_drain_resets_block_to_positive_zero() {
        let mut c = DenseMatrix::zeros(2, 5);
        // Block covering columns 1..4 (width 3, off-origin).
        let mut acc = vec![1.5f32, -0.0, 0.0, 0.0, 2.5, -0.75];
        drain_block_into(&mut c, 1, 3, &mut acc);
        for (i, v) in acc.iter().enumerate() {
            assert_eq!(v.to_bits(), 0, "acc[{i}] must reset to +0.0");
        }
        assert_eq!(c.get(0, 1), 1.5);
        assert_eq!(c.get(0, 2).to_bits(), 0, "-0.0 residue must not be written");
        assert_eq!(c.get(1, 2), 2.5);
        assert_eq!(c.get(1, 3), -0.75);
        assert_eq!(c.get(0, 0).to_bits(), 0);
        assert_eq!(c.get(0, 4).to_bits(), 0);
    }

    #[test]
    fn blocked_axpy_matches_scalar_axpy_per_lane() {
        let (a, b) = blocked_fixture(8);
        let rows = a.rows();
        let mut block_acc = vec![0f32; rows * 8];
        for j in 0..a.cols() {
            csc_axpy_block(&a, j, &b.row(j)[0..8], &mut block_acc);
        }
        for l in 0..8 {
            let mut acc = vec![0f32; rows];
            for j in 0..a.cols() {
                // Mirror the blocked kernel: zero scales ride along (they
                // are bit-exact no-ops), so no skip here either.
                csc_axpy_column(&a, j, b.get(j, l), &mut acc);
            }
            for i in 0..rows {
                assert_eq!(
                    acc[i].to_bits(),
                    block_acc[i * 8 + l].to_bits(),
                    "lane {l} row {i}"
                );
            }
        }
    }

    #[test]
    fn blocked_dimension_mismatch_detected() {
        let a = sparse_3x3();
        let bad = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            csc_times_dense_blocked(&a.to_csc(), &bad),
            Err(SparseError::DimensionMismatch {
                op: "csc_times_dense_blocked",
                ..
            })
        ));
    }
}
