//! Operation counting for the execution-order analysis (paper Table 2).
//!
//! A GCN layer computes `A × X × W`. The paper shows (§3.1) that the
//! association order dominates total work because `A` is ultra-sparse and
//! huge while `W` is small and dense:
//!
//! * `(A × X) × W`: `A × X` costs one MAC per (nnz of A row-matched with nnz
//!   of the corresponding X row); its result is dense `n × f_in`, so the
//!   trailing dense multiply costs `n · f_in · f_out`.
//! * `A × (X × W)`: `X × W` costs `nnz(X) · f_out`; the outer product costs
//!   `nnz(A) · f_out`.
//!
//! Both exact (given actual matrices) and analytic (given dims/densities)
//! counters are provided; the analytic form reproduces Table 2 from
//! Table 1's statistics alone.

use crate::Csr;

/// MAC counts for one GCN layer under both execution orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerOps {
    /// MACs for `(A × X) × W`.
    pub ax_w: u64,
    /// MACs for `A × (X × W)`.
    pub a_xw: u64,
}

impl LayerOps {
    /// Ratio of the expensive order to the cheap order
    /// (`ax_w / a_xw`); `f64::INFINITY` when `a_xw` is zero but `ax_w` is
    /// not, `1.0` when both are zero.
    pub fn ratio(&self) -> f64 {
        if self.a_xw == 0 {
            if self.ax_w == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.ax_w as f64 / self.a_xw as f64
        }
    }
}

impl std::ops::Add for LayerOps {
    type Output = LayerOps;

    fn add(self, rhs: LayerOps) -> LayerOps {
        LayerOps {
            ax_w: self.ax_w + rhs.ax_w,
            a_xw: self.a_xw + rhs.a_xw,
        }
    }
}

/// Exact MAC counts for one layer given the actual sparse operands.
///
/// `a` is the normalized adjacency, `x` the input feature matrix (sparse
/// view), and `f_out` the layer's output feature count (`W` is dense
/// `f_in × f_out`).
pub fn layer_ops_exact(a: &Csr, x: &Csr, f_out: usize) -> LayerOps {
    let x_row_nnz = x.row_nnz_counts();
    // (A x X): each nnz a(i,j) multiplies against every nnz of X row j.
    let ax: u64 = a
        .iter()
        .map(|(_, j, _)| x_row_nnz.get(j).copied().unwrap_or(0) as u64)
        .sum();
    // (AX) is dense n x f_in; times W costs n * f_in * f_out.
    let ax_w = ax + (a.rows() as u64) * (x.cols() as u64) * (f_out as u64);
    // X x W: nnz(X) * f_out; A x (XW): nnz(A) * f_out.
    let a_xw = (x.nnz() as u64 + a.nnz() as u64) * f_out as u64;
    LayerOps { ax_w, a_xw }
}

/// Analytic MAC counts from dimensions and densities alone (how Table 2 is
/// derivable from Table 1).
///
/// * `n` — node count (rows/cols of `A`, rows of `X`),
/// * `f_in`/`f_out` — layer feature dims,
/// * `a_density`/`x_density` — fractions of non-zeros.
pub fn layer_ops_analytic(
    n: usize,
    f_in: usize,
    f_out: usize,
    a_density: f64,
    x_density: f64,
) -> LayerOps {
    let nnz_a = (n as f64 * n as f64 * a_density).round();
    let nnz_x = (n as f64 * f_in as f64 * x_density).round();
    let avg_x_row_nnz = f_in as f64 * x_density;
    let ax = nnz_a * avg_x_row_nnz;
    let ax_w = ax + n as f64 * f_in as f64 * f_out as f64;
    let a_xw = (nnz_x + nnz_a) * f_out as f64;
    LayerOps {
        ax_w: ax_w.round() as u64,
        a_xw: a_xw.round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn exact_counts_tiny_example() {
        // A = [[1,0],[1,1]] (nnz 3), X = [[1,1],[0,1]] (nnz 3), f_out = 2.
        let mut a = Coo::new(2, 2);
        for (r, c) in [(0, 0), (1, 0), (1, 1)] {
            a.push(r, c, 1.0).unwrap();
        }
        let mut x = Coo::new(2, 2);
        for (r, c) in [(0, 0), (0, 1), (1, 1)] {
            x.push(r, c, 1.0).unwrap();
        }
        let ops = layer_ops_exact(&a.to_csr(), &x.to_csr(), 2);
        // AxX: a(0,0)->row0 of X (2) + a(1,0)->row0 (2) + a(1,1)->row1 (1) = 5
        // (AX)W: + 2*2*2 = 8 -> 13
        assert_eq!(ops.ax_w, 13);
        // XW: 3*2=6; A(XW): 3*2=6 -> 12
        assert_eq!(ops.a_xw, 12);
        assert!((ops.ratio() - 13.0 / 12.0).abs() < 1e-12);
    }

    /// Analytic counts reproduce the paper's Table 2 within rounding:
    /// Cora layer 1 is reported as 62.3M vs 999.7K.
    #[test]
    fn analytic_matches_paper_cora_layer1() {
        let ops = layer_ops_analytic(2708, 1433, 16, 0.0018, 0.0127);
        // (AxX)xW ~ 62.3M (paper)
        assert!(
            (ops.ax_w as f64 - 62.3e6).abs() / 62.3e6 < 0.05,
            "ax_w = {}",
            ops.ax_w
        );
        // Ax(XxW) ~ 999.7K (paper)
        assert!(
            (ops.a_xw as f64 - 999.7e3).abs() / 999.7e3 < 0.05,
            "a_xw = {}",
            ops.a_xw
        );
    }

    #[test]
    fn analytic_matches_paper_cora_layer2() {
        // Layer 2: X2 is 2708x16 at 78% density, f_out = 7.
        let ops = layer_ops_analytic(2708, 16, 7, 0.0018, 0.78);
        assert!(
            (ops.ax_w as f64 - 468.2e3).abs() / 468.2e3 < 0.05,
            "ax_w = {}",
            ops.ax_w
        );
        assert!(
            (ops.a_xw as f64 - 329.3e3).abs() / 329.3e3 < 0.05,
            "a_xw = {}",
            ops.a_xw
        );
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(LayerOps { ax_w: 0, a_xw: 0 }.ratio(), 1.0);
        assert_eq!(LayerOps { ax_w: 5, a_xw: 0 }.ratio(), f64::INFINITY);
    }

    #[test]
    fn add_sums_componentwise() {
        let a = LayerOps { ax_w: 1, a_xw: 2 };
        let b = LayerOps { ax_w: 10, a_xw: 20 };
        assert_eq!(a + b, LayerOps { ax_w: 11, a_xw: 22 });
    }
}
