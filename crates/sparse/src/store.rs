//! Chunked on-disk sparse store with by-column and by-row mirrors.
//!
//! For graphs bigger than host memory, the whole-matrix formats ([`Csc`] /
//! [`Csr`]) stop being the unit of I/O: the out-of-core execution layer
//! needs to materialize *one column shard at a time*, drop it after its
//! rounds, and plan shard boundaries without ever loading values. This
//! module stores a sparse matrix on disk in both orientations:
//!
//! ```text
//! store/
//!   manifest.json            shape, nnz, per-chunk profiles (both axes)
//!   by_column/
//!     indptr.bin             full Col Ptr (u64 LE, cols + 1 entries)
//!     data/chunk-00000.bin   values (f32 LE) of the chunk's columns
//!     indices/chunk-00000.bin  row indices (u32 LE) of the chunk's columns
//!   by_row/
//!     indptr.bin             full Row Ptr of the CSR mirror
//!     data/chunk-00000.bin   values of the chunk's rows
//!     indices/chunk-00000.bin  column indices of the chunk's rows
//! ```
//!
//! Chunks are **line-aligned**: each chunk covers a contiguous range of
//! columns (rows for the `by_row` mirror) filled greedily to a target nnz
//! count, so any `col_range` materializes by reading only the chunks it
//! overlaps — never a partial-line seek. Every chunk file is a checksummed
//! blob (byte-level run-length compression when it helps, raw otherwise),
//! and the manifest records each chunk's line range, nnz, heaviest line,
//! and on-disk payload size — enough for the partitioner to plan
//! nnz-balanced cuts and for the cost model to forecast read traffic,
//! all without touching `data/`.
//!
//! # Validation
//!
//! [`SparseStore::open`] performs one full streaming pass over every chunk
//! (peak memory: one decompressed chunk) and rejects truncated or corrupt
//! chunk files, manifest/chunk nnz mismatches, out-of-bounds indices, and
//! non-finite values with typed [`StoreError`]s — a bad store never panics
//! mid-stream in the execution layer.
//!
//! # Example
//!
//! ```
//! use awb_sparse::store::SparseStore;
//! use awb_sparse::Coo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("awb-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut a = Coo::new(4, 4);
//! a.push(0, 1, 2.0)?;
//! a.push(3, 2, -1.0)?;
//! let a = a.to_csc();
//! let store = SparseStore::write_with_chunk_nnz(&dir, &a, 1)?;
//! assert_eq!(store.read_csc()?, a);
//! assert_eq!(store.read_col_range(1..3)?, a.col_range(1..3));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

use crate::{Csc, Csr};
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// On-disk format version written to (and required in) the manifest.
pub const FORMAT_VERSION: u64 = 1;

/// Format tag written to the manifest.
pub const FORMAT_NAME: &str = "awb-sparse-store";

/// Default per-chunk nnz target: 64 Ki non-zeros ≈ 512 KiB of raw
/// value+index payload per chunk — large enough to amortize per-file
/// overhead, small enough that a shard spanning a few chunks stays a
/// bounded read unit.
pub const DEFAULT_CHUNK_NNZ: usize = 64 * 1024;

/// Magic bytes opening every chunk/indptr blob.
const BLOB_MAGIC: [u8; 4] = *b"AWBS";

/// Blob codec: raw payload.
const CODEC_RAW: u8 = 0;
/// Blob codec: byte-level run-length encoding (see [`rle_encode`]).
const CODEC_RLE: u8 = 1;

/// Errors from writing, opening, or reading a [`SparseStore`].
///
/// Kept separate from [`crate::SparseError`] (which is `Eq` and cannot
/// carry I/O context); the accelerator layer maps these to its
/// `InvalidInput`-style ingest errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem-level failure (open/create/read/write).
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// Stringified OS error.
        detail: String,
    },
    /// The manifest is missing, unparsable, or internally inconsistent.
    Manifest {
        /// The manifest path.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A chunk or indptr blob is truncated, fails its checksum, disagrees
    /// with the manifest, holds out-of-bounds indices, or holds
    /// non-finite values.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The request itself is invalid (bad range, zero chunk target,
    /// refusing to overwrite an existing store).
    InvalidInput(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => {
                write!(f, "store io error at {}: {detail}", path.display())
            }
            StoreError::Manifest { path, detail } => {
                write!(f, "store manifest error at {}: {detail}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
            StoreError::InvalidInput(msg) => write!(f, "invalid store request: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience alias for store results.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Manifest profile of one chunk: the contiguous line (column or row)
/// range it covers, its nnz count, its heaviest single line, and its
/// on-disk payload size — everything a planner needs without reading
/// `data/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkProfile {
    /// Half-open line range `lo..hi` (columns for `by_column`, rows for
    /// `by_row`).
    pub lines: Range<usize>,
    /// Non-zeros inside the range.
    pub nnz: usize,
    /// Heaviest single line inside the range.
    pub max_line_nnz: usize,
    /// Compressed bytes of the chunk's two payload files on disk.
    pub disk_bytes: u64,
}

impl ChunkProfile {
    /// Heap bytes a [`Csc`]/[`Csr`] slice of exactly this chunk would
    /// occupy resident: `u32` index + `f32` value per nnz, plus one
    /// pointer-sized `indptr` entry per line.
    pub fn resident_bytes(&self) -> usize {
        self.nnz * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
            + (self.lines.len() + 1) * std::mem::size_of::<usize>()
    }
}

/// One orientation (`by_column` or `by_row`) of the store.
#[derive(Debug, Clone)]
struct Axis {
    /// Subdirectory name (`by_column` / `by_row`).
    name: &'static str,
    /// Full line pointer (`cols + 1` / `rows + 1` entries), loaded at
    /// open — the O(lines) half kept resident; values/indices stream.
    ptr: Vec<usize>,
    chunks: Vec<ChunkProfile>,
}

/// An opened (validated) chunked sparse store. See the module docs for
/// the layout.
#[derive(Debug, Clone)]
pub struct SparseStore {
    dir: PathBuf,
    rows: usize,
    cols: usize,
    nnz: usize,
    chunk_target_nnz: usize,
    by_column: Axis,
    by_row: Axis,
}

impl SparseStore {
    /// Writes `a` (and its CSR mirror) to `dir` with the default chunk
    /// target, then re-opens it — so every store returned by `write` has
    /// passed the same validation pass as [`open`](SparseStore::open).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidInput`] if `dir` already holds a store;
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write(dir: impl AsRef<Path>, a: &Csc) -> StoreResult<SparseStore> {
        SparseStore::write_with_chunk_nnz(dir, a, DEFAULT_CHUNK_NNZ)
    }

    /// [`write`](SparseStore::write) with an explicit per-chunk nnz
    /// target: each chunk greedily takes whole lines until it holds at
    /// least `chunk_nnz` non-zeros (so a single line heavier than the
    /// target still gets its own chunk — lines are the indivisible unit).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidInput`] if `chunk_nnz == 0` or `dir` already
    /// holds a store; [`StoreError::Io`] on filesystem failure.
    pub fn write_with_chunk_nnz(
        dir: impl AsRef<Path>,
        a: &Csc,
        chunk_nnz: usize,
    ) -> StoreResult<SparseStore> {
        let dir = dir.as_ref();
        if chunk_nnz == 0 {
            return Err(StoreError::InvalidInput(
                "chunk nnz target must be >= 1".into(),
            ));
        }
        if SparseStore::exists(dir) {
            return Err(StoreError::InvalidInput(format!(
                "{} already holds a store manifest; refusing to overwrite",
                dir.display()
            )));
        }
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;

        let col_chunks = write_axis(
            &dir.join("by_column"),
            a.col_ptr(),
            a.row_idx(),
            a.values(),
            chunk_nnz,
        )?;
        let csr = a.to_csr();
        let row_chunks = write_axis(
            &dir.join("by_row"),
            csr.row_ptr(),
            csr.col_idx(),
            csr.values(),
            chunk_nnz,
        )?;

        let manifest = render_manifest(
            a.rows(),
            a.cols(),
            a.nnz(),
            chunk_nnz,
            &[("by_column", &col_chunks), ("by_row", &row_chunks)],
        );
        let manifest_path = dir.join("manifest.json");
        fs::write(&manifest_path, manifest).map_err(|e| io_err(&manifest_path, &e))?;

        SparseStore::open(dir)
    }

    /// True when `dir` contains a store manifest (the cheap existence
    /// probe callers use to decide between ingest and open).
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join("manifest.json").is_file()
    }

    /// Opens and fully validates the store at `dir`: parses the manifest,
    /// loads both `indptr` arrays, and makes one streaming pass over every
    /// chunk (decompress, checksum, length vs manifest nnz, index bounds,
    /// value finiteness) with one chunk resident at a time.
    ///
    /// # Errors
    ///
    /// [`StoreError::Manifest`] for a missing/unparsable/inconsistent
    /// manifest, [`StoreError::Corrupt`] for truncated or corrupt blobs,
    /// nnz mismatches, out-of-bounds indices, or non-finite values, and
    /// [`StoreError::Io`] for filesystem failures.
    pub fn open(dir: impl AsRef<Path>) -> StoreResult<SparseStore> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join("manifest.json");
        let text = fs::read_to_string(&manifest_path).map_err(|e| StoreError::Manifest {
            path: manifest_path.clone(),
            detail: format!("cannot read manifest: {e}"),
        })?;
        let parsed = parse_manifest(&text).map_err(|detail| StoreError::Manifest {
            path: manifest_path.clone(),
            detail,
        })?;

        let by_column = open_axis(
            &dir,
            "by_column",
            "column",
            parsed.cols,
            parsed.rows,
            parsed.nnz,
            parsed.by_column,
            &manifest_path,
        )?;
        let by_row = open_axis(
            &dir,
            "by_row",
            "row",
            parsed.rows,
            parsed.cols,
            parsed.nnz,
            parsed.by_row,
            &manifest_path,
        )?;

        Ok(SparseStore {
            dir,
            rows: parsed.rows,
            cols: parsed.cols,
            nnz: parsed.nnz,
            chunk_target_nnz: parsed.chunk_target_nnz,
            by_column,
            by_row,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of rows of the stored matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the stored matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The nnz target chunks were filled to at write time.
    pub fn chunk_target_nnz(&self) -> usize {
        self.chunk_target_nnz
    }

    /// Per-chunk profiles of the `by_column` mirror, in ascending column
    /// order (what the store-backed partitioner plans over).
    pub fn column_chunks(&self) -> &[ChunkProfile] {
        &self.by_column.chunks
    }

    /// Per-chunk profiles of the `by_row` mirror, in ascending row order.
    pub fn row_chunks(&self) -> &[ChunkProfile] {
        &self.by_row.chunks
    }

    /// The full resident `Col Ptr` (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.by_column.ptr
    }

    /// The full resident `Row Ptr` of the CSR mirror (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.by_row.ptr
    }

    /// Non-zeros inside a column range (O(1), from the resident pointer).
    ///
    /// # Panics
    ///
    /// Panics if `range.end > cols` or the range is decreasing.
    pub fn range_nnz(&self, range: Range<usize>) -> usize {
        self.by_column.ptr[range.end] - self.by_column.ptr[range.start]
    }

    /// Heap bytes a [`Csc`] slice of this column range occupies resident
    /// (matches [`Csc::heap_bytes`] of [`read_col_range`]'s result).
    ///
    /// [`read_col_range`]: SparseStore::read_col_range
    pub fn resident_bytes(&self, range: Range<usize>) -> usize {
        self.range_nnz(range.clone()) * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
            + (range.len() + 1) * std::mem::size_of::<usize>()
    }

    /// Total compressed payload bytes on disk (`by_column` mirror only —
    /// what one full streaming pass reads). The cost model's I/O volume.
    pub fn column_disk_bytes(&self) -> u64 {
        self.by_column.chunks.iter().map(|c| c.disk_bytes).sum()
    }

    /// Materializes columns `lo..hi` as a [`Csc`] slice, bit-identical to
    /// [`Csc::col_range`] on the originally written matrix, by reading
    /// only the chunks the range overlaps.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidInput`] for an out-of-range request;
    /// [`StoreError::Io`]/[`StoreError::Corrupt`] if the underlying files
    /// fail or changed since [`open`](SparseStore::open).
    pub fn read_col_range(&self, range: Range<usize>) -> StoreResult<Csc> {
        let (ptr, idx, vals) = self.read_axis_range(&self.by_column, range.clone(), "column")?;
        Csc::from_parts(self.rows, range.len(), ptr, idx, vals).map_err(|e| StoreError::Corrupt {
            path: self.dir.join("by_column"),
            detail: format!("chunk data does not assemble into a valid CSC slice: {e}"),
        })
    }

    /// Materializes rows `lo..hi` of the CSR mirror, bit-identical to
    /// [`Csr::row_range`] on the originally written matrix.
    ///
    /// # Errors
    ///
    /// As [`read_col_range`](SparseStore::read_col_range).
    pub fn read_row_range(&self, range: Range<usize>) -> StoreResult<Csr> {
        let (ptr, idx, vals) = self.read_axis_range(&self.by_row, range.clone(), "row")?;
        Csr::from_parts(range.len(), self.cols, ptr, idx, vals).map_err(|e| StoreError::Corrupt {
            path: self.dir.join("by_row"),
            detail: format!("chunk data does not assemble into a valid CSR slice: {e}"),
        })
    }

    /// Reads the whole matrix back as a [`Csc`].
    ///
    /// # Errors
    ///
    /// As [`read_col_range`](SparseStore::read_col_range).
    pub fn read_csc(&self) -> StoreResult<Csc> {
        self.read_col_range(0..self.cols)
    }

    /// Reads the whole CSR mirror back.
    ///
    /// # Errors
    ///
    /// As [`read_row_range`](SparseStore::read_row_range).
    pub fn read_csr(&self) -> StoreResult<Csr> {
        self.read_row_range(0..self.rows)
    }

    /// Shared line-range reader over one axis: rebases the resident
    /// pointer and concatenates the overlapping slice of each overlapping
    /// chunk, decompressing one chunk at a time.
    fn read_axis_range(
        &self,
        axis: &Axis,
        range: Range<usize>,
        what: &str,
    ) -> StoreResult<(Vec<usize>, Vec<u32>, Vec<f32>)> {
        let n_lines = axis.ptr.len() - 1;
        if range.start > range.end || range.end > n_lines {
            return Err(StoreError::InvalidInput(format!(
                "{what} range {}..{} out of bounds for {} {what}s",
                range.start, range.end, n_lines
            )));
        }
        let base = axis.ptr[range.start];
        let ptr: Vec<usize> = axis.ptr[range.start..=range.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        let total = axis.ptr[range.end] - base;
        let mut idx: Vec<u32> = Vec::with_capacity(total);
        let mut vals: Vec<f32> = Vec::with_capacity(total);
        for (k, chunk) in axis.chunks.iter().enumerate() {
            if chunk.lines.end <= range.start {
                continue;
            }
            if chunk.lines.start >= range.end {
                break;
            }
            let lo = range.start.max(chunk.lines.start);
            let hi = range.end.min(chunk.lines.end);
            let chunk_base = axis.ptr[chunk.lines.start];
            let span = (axis.ptr[lo] - chunk_base)..(axis.ptr[hi] - chunk_base);
            let dir = self.dir.join(axis.name);
            let idx_path = dir.join("indices").join(chunk_file(k));
            let chunk_idx = bytes_to_u32(&read_blob(&idx_path)?, &idx_path)?;
            let val_path = dir.join("data").join(chunk_file(k));
            let chunk_vals = bytes_to_f32(&read_blob(&val_path)?, &val_path)?;
            if chunk_idx.len() != chunk.nnz || chunk_vals.len() != chunk.nnz {
                return Err(StoreError::Corrupt {
                    path: idx_path,
                    detail: format!(
                        "chunk {k} holds {} indices / {} values, manifest says {}",
                        chunk_idx.len(),
                        chunk_vals.len(),
                        chunk.nnz
                    ),
                });
            }
            idx.extend_from_slice(&chunk_idx[span.clone()]);
            vals.extend_from_slice(&chunk_vals[span]);
        }
        Ok((ptr, idx, vals))
    }
}

/// `chunk-NNNNN.bin` file name for chunk `k`.
fn chunk_file(k: usize) -> String {
    format!("chunk-{k:05}.bin")
}

fn io_err(path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// Greedy line-aligned chunking: each chunk takes whole lines until it
/// holds at least `target` nnz (always at least one line).
fn plan_chunks(ptr: &[usize], target: usize) -> Vec<Range<usize>> {
    let n = ptr.len() - 1;
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo < n {
        let mut hi = lo + 1;
        while hi < n && ptr[hi] - ptr[lo] < target {
            hi += 1;
        }
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Writes one orientation's `indptr.bin` plus its `data/` and `indices/`
/// chunk files, returning the chunk profiles for the manifest.
fn write_axis(
    dir: &Path,
    ptr: &[usize],
    idx: &[u32],
    vals: &[f32],
    chunk_nnz: usize,
) -> StoreResult<Vec<ChunkProfile>> {
    let data_dir = dir.join("data");
    let idx_dir = dir.join("indices");
    fs::create_dir_all(&data_dir).map_err(|e| io_err(&data_dir, &e))?;
    fs::create_dir_all(&idx_dir).map_err(|e| io_err(&idx_dir, &e))?;

    let ptr_bytes: Vec<u8> = ptr.iter().flat_map(|&p| (p as u64).to_le_bytes()).collect();
    write_blob(&dir.join("indptr.bin"), &ptr_bytes)?;

    let mut chunks = Vec::new();
    for (k, lines) in plan_chunks(ptr, chunk_nnz).into_iter().enumerate() {
        let span = ptr[lines.start]..ptr[lines.end];
        let idx_bytes: Vec<u8> = idx[span.clone()]
            .iter()
            .flat_map(|&i| i.to_le_bytes())
            .collect();
        let val_bytes: Vec<u8> = vals[span.clone()]
            .iter()
            .flat_map(|&v| v.to_le_bytes())
            .collect();
        let mut disk_bytes = write_blob(&idx_dir.join(chunk_file(k)), &idx_bytes)?;
        disk_bytes += write_blob(&data_dir.join(chunk_file(k)), &val_bytes)?;
        let max_line_nnz = lines
            .clone()
            .map(|l| ptr[l + 1] - ptr[l])
            .max()
            .unwrap_or(0);
        chunks.push(ChunkProfile {
            nnz: span.len(),
            max_line_nnz,
            disk_bytes,
            lines,
        });
    }
    Ok(chunks)
}

/// Loads and validates one orientation at open time (see
/// [`SparseStore::open`] for the checks).
#[allow(clippy::too_many_arguments)]
fn open_axis(
    dir: &Path,
    name: &'static str,
    line: &'static str,
    n_lines: usize,
    bound: usize,
    nnz: usize,
    chunks: Vec<ChunkProfile>,
    manifest_path: &Path,
) -> StoreResult<Axis> {
    let axis_dir = dir.join(name);
    let bad_manifest = |detail: String| StoreError::Manifest {
        path: manifest_path.to_path_buf(),
        detail,
    };

    // Chunks must tile `0..n_lines` contiguously and conserve nnz.
    if n_lines == 0 {
        if !chunks.is_empty() {
            return Err(bad_manifest(format!("{name}: chunks on a 0-{line} matrix")));
        }
    } else {
        if chunks.first().map(|c| c.lines.start) != Some(0)
            || chunks.last().map(|c| c.lines.end) != Some(n_lines)
        {
            return Err(bad_manifest(format!(
                "{name}: chunks do not cover 0..{n_lines}"
            )));
        }
        for w in chunks.windows(2) {
            if w[0].lines.end != w[1].lines.start {
                return Err(bad_manifest(format!(
                    "{name}: gap or overlap between chunk ranges {:?} and {:?}",
                    w[0].lines, w[1].lines
                )));
            }
        }
        for c in &chunks {
            if c.lines.start >= c.lines.end {
                return Err(bad_manifest(format!(
                    "{name}: empty chunk range {:?}",
                    c.lines
                )));
            }
        }
    }
    let chunk_nnz_sum: usize = chunks.iter().map(|c| c.nnz).sum();
    if chunk_nnz_sum != nnz {
        return Err(bad_manifest(format!(
            "{name}: chunk nnz sum {chunk_nnz_sum} != declared nnz {nnz}"
        )));
    }

    // The resident pointer.
    let ptr_path = axis_dir.join("indptr.bin");
    let ptr_bytes = read_blob(&ptr_path)?;
    if ptr_bytes.len() != (n_lines + 1) * 8 {
        return Err(StoreError::Corrupt {
            path: ptr_path,
            detail: format!(
                "indptr holds {} bytes, expected {} ({} {line}s + 1, u64 each)",
                ptr_bytes.len(),
                (n_lines + 1) * 8,
                n_lines
            ),
        });
    }
    let ptr: Vec<usize> = ptr_bytes
        .chunks_exact(8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("chunks_exact(8)")) as usize)
        .collect();
    if ptr[0] != 0 || ptr[n_lines] != nnz || ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(StoreError::Corrupt {
            path: ptr_path,
            detail: format!(
                "indptr is not a monotone prefix sum from 0 to {nnz} (starts {}, ends {})",
                ptr[0], ptr[n_lines]
            ),
        });
    }

    // Per-chunk streaming validation: one decompressed chunk resident at
    // a time.
    for (k, chunk) in chunks.iter().enumerate() {
        let declared = ptr[chunk.lines.end] - ptr[chunk.lines.start];
        if declared != chunk.nnz {
            return Err(StoreError::Corrupt {
                path: ptr_path.clone(),
                detail: format!(
                    "chunk {k} ({line}s {:?}): manifest says {} nnz, indptr says {declared}",
                    chunk.lines, chunk.nnz
                ),
            });
        }
        let max_line = chunk
            .lines
            .clone()
            .map(|l| ptr[l + 1] - ptr[l])
            .max()
            .unwrap_or(0);
        if max_line != chunk.max_line_nnz {
            return Err(StoreError::Corrupt {
                path: ptr_path.clone(),
                detail: format!(
                    "chunk {k}: manifest max_line_nnz {} disagrees with indptr ({max_line})",
                    chunk.max_line_nnz
                ),
            });
        }

        let idx_path = axis_dir.join("indices").join(chunk_file(k));
        let idx_bytes = read_blob(&idx_path)?;
        if idx_bytes.len() != chunk.nnz * 4 {
            return Err(StoreError::Corrupt {
                path: idx_path,
                detail: format!(
                    "chunk {k} holds {} index bytes, manifest nnz {} needs {}",
                    idx_bytes.len(),
                    chunk.nnz,
                    chunk.nnz * 4
                ),
            });
        }
        for b in idx_bytes.chunks_exact(4) {
            let i = u32::from_le_bytes(b.try_into().expect("chunks_exact(4)")) as usize;
            if i >= bound {
                return Err(StoreError::Corrupt {
                    path: idx_path,
                    detail: format!("chunk {k}: index {i} out of bounds (< {bound} required)"),
                });
            }
        }

        let val_path = axis_dir.join("data").join(chunk_file(k));
        let val_bytes = read_blob(&val_path)?;
        if val_bytes.len() != chunk.nnz * 4 {
            return Err(StoreError::Corrupt {
                path: val_path,
                detail: format!(
                    "chunk {k} holds {} value bytes, manifest nnz {} needs {}",
                    val_bytes.len(),
                    chunk.nnz,
                    chunk.nnz * 4
                ),
            });
        }
        for b in val_bytes.chunks_exact(4) {
            let v = f32::from_le_bytes(b.try_into().expect("chunks_exact(4)"));
            if !v.is_finite() {
                return Err(StoreError::Corrupt {
                    path: val_path,
                    detail: format!(
                        "chunk {k}: non-finite value {v} (NaN/inf entries are rejected at open)"
                    ),
                });
            }
        }
    }

    Ok(Axis { name, ptr, chunks })
}

// ---------------------------------------------------------------------
// Blob format: [magic "AWBS"][codec u8][raw_len u64][comp_len u64]
//              [fnv1a(raw) u64][payload comp_len bytes]
// ---------------------------------------------------------------------

/// FNV-1a over a byte slice (the workspace's standard content hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Byte-level run-length encoding. Control byte `c`:
/// `c < 0x80` — copy the next `c + 1` literal bytes (runs of 1..=128);
/// `c >= 0x80` — repeat the next byte `c - 0x80 + 3` times (3..=130).
/// Worst case (no runs) adds one control byte per 128 literals.
fn rle_encode(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 4);
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i < raw.len() {
        let mut run = 1usize;
        while i + run < raw.len() && raw[i + run] == raw[i] && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, &raw[lit_start..i]);
            out.push(0x80 + (run - 3) as u8);
            out.push(raw[i]);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &raw[lit_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lit: &[u8]) {
    while !lit.is_empty() {
        let take = lit.len().min(128);
        out.push((take - 1) as u8);
        out.extend_from_slice(&lit[..take]);
        lit = &lit[take..];
    }
}

/// Decodes [`rle_encode`] output; `None` on a malformed stream or when
/// the decoded length disagrees with `raw_len`.
fn rle_decode(comp: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < comp.len() {
        let c = comp[i];
        i += 1;
        if c < 0x80 {
            let take = c as usize + 1;
            if i + take > comp.len() {
                return None;
            }
            out.extend_from_slice(&comp[i..i + take]);
            i += take;
        } else {
            let b = *comp.get(i)?;
            i += 1;
            out.resize(out.len() + (c as usize - 0x80 + 3), b);
        }
        if out.len() > raw_len {
            return None;
        }
    }
    (out.len() == raw_len).then_some(out)
}

/// Writes `raw` as a checksummed blob (RLE when it helps, raw otherwise),
/// returning the payload bytes written (the compressed size).
fn write_blob(path: &Path, raw: &[u8]) -> StoreResult<u64> {
    let rle = rle_encode(raw);
    let (codec, payload) = if rle.len() < raw.len() {
        (CODEC_RLE, rle.as_slice())
    } else {
        (CODEC_RAW, raw)
    };
    let mut f = fs::File::create(path).map_err(|e| io_err(path, &e))?;
    let mut header = Vec::with_capacity(29);
    header.extend_from_slice(&BLOB_MAGIC);
    header.push(codec);
    header.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&fnv1a(raw).to_le_bytes());
    f.write_all(&header).map_err(|e| io_err(path, &e))?;
    f.write_all(payload).map_err(|e| io_err(path, &e))?;
    Ok(payload.len() as u64)
}

/// Reads a blob back, verifying magic, codec, payload length, and
/// checksum. Truncation at any point is a typed [`StoreError::Corrupt`].
fn read_blob(path: &Path) -> StoreResult<Vec<u8>> {
    let mut f = fs::File::open(path).map_err(|e| io_err(path, &e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).map_err(|e| io_err(path, &e))?;
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < 29 {
        return Err(corrupt(format!(
            "truncated blob header ({} bytes, need 29)",
            bytes.len()
        )));
    }
    if bytes[..4] != BLOB_MAGIC {
        return Err(corrupt("bad magic (not an awb-sparse-store blob)".into()));
    }
    let codec = bytes[4];
    let raw_len = u64::from_le_bytes(bytes[5..13].try_into().expect("sized")) as usize;
    let comp_len = u64::from_le_bytes(bytes[13..21].try_into().expect("sized")) as usize;
    let checksum = u64::from_le_bytes(bytes[21..29].try_into().expect("sized"));
    let payload = &bytes[29..];
    if payload.len() != comp_len {
        return Err(corrupt(format!(
            "truncated payload ({} bytes, header declares {comp_len})",
            payload.len()
        )));
    }
    let raw = match codec {
        CODEC_RAW => {
            if payload.len() != raw_len {
                return Err(corrupt(format!(
                    "raw payload length {} != declared raw length {raw_len}",
                    payload.len()
                )));
            }
            payload.to_vec()
        }
        CODEC_RLE => rle_decode(payload, raw_len)
            .ok_or_else(|| corrupt("malformed run-length stream".into()))?,
        other => return Err(corrupt(format!("unknown codec byte {other}"))),
    };
    if fnv1a(&raw) != checksum {
        return Err(corrupt("checksum mismatch (payload corrupted)".into()));
    }
    Ok(raw)
}

fn bytes_to_u32(bytes: &[u8], path: &Path) -> StoreResult<Vec<u32>> {
    if bytes.len() % 4 != 0 {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("payload length {} is not a multiple of 4", bytes.len()),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("chunks_exact(4)")))
        .collect())
}

fn bytes_to_f32(bytes: &[u8], path: &Path) -> StoreResult<Vec<f32>> {
    if bytes.len() % 4 != 0 {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("payload length {} is not a multiple of 4", bytes.len()),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes(b.try_into().expect("chunks_exact(4)")))
        .collect())
}

// ---------------------------------------------------------------------
// Manifest (hand-rolled JSON; the container has no cargo-registry route)
// ---------------------------------------------------------------------

fn render_manifest(
    rows: usize,
    cols: usize,
    nnz: usize,
    chunk_target_nnz: usize,
    axes: &[(&str, &Vec<ChunkProfile>)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"format\": \"{FORMAT_NAME}\",\n"));
    s.push_str(&format!("  \"version\": {FORMAT_VERSION},\n"));
    s.push_str(&format!("  \"rows\": {rows},\n"));
    s.push_str(&format!("  \"cols\": {cols},\n"));
    s.push_str(&format!("  \"nnz\": {nnz},\n"));
    s.push_str(&format!("  \"chunk_target_nnz\": {chunk_target_nnz},\n"));
    for (i, (name, chunks)) in axes.iter().enumerate() {
        s.push_str(&format!("  \"{name}\": [\n"));
        for (k, c) in chunks.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"start\": {}, \"end\": {}, \"nnz\": {}, \"max_line_nnz\": {}, \
                 \"disk_bytes\": {}}}{}\n",
                c.lines.start,
                c.lines.end,
                c.nnz,
                c.max_line_nnz,
                c.disk_bytes,
                if k + 1 < chunks.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ]{}\n",
            if i + 1 < axes.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

/// Parsed manifest contents.
struct ParsedManifest {
    rows: usize,
    cols: usize,
    nnz: usize,
    chunk_target_nnz: usize,
    by_column: Vec<ChunkProfile>,
    by_row: Vec<ChunkProfile>,
}

/// Minimal JSON value for the manifest's shape (objects, arrays, strings,
/// unsigned integers).
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn parse_manifest(text: &str) -> std::result::Result<ParsedManifest, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!(
            "trailing bytes after JSON value at offset {}",
            p.pos
        ));
    }
    let Json::Obj(fields) = root else {
        return Err("manifest root is not an object".into());
    };
    let get = |key: &str| -> std::result::Result<&Json, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("manifest missing `{key}`"))
    };
    let num = |key: &str| -> std::result::Result<u64, String> {
        match get(key)? {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("manifest `{key}` is not an unsigned integer")),
        }
    };
    match get("format")? {
        Json::Str(s) if s == FORMAT_NAME => {}
        Json::Str(s) => return Err(format!("unknown store format `{s}`")),
        _ => return Err("manifest `format` is not a string".into()),
    }
    let version = num("version")?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "unsupported store format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let chunks = |key: &str| -> std::result::Result<Vec<ChunkProfile>, String> {
        let Json::Arr(items) = get(key)? else {
            return Err(format!("manifest `{key}` is not an array"));
        };
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let Json::Obj(f) = item else {
                    return Err(format!("`{key}[{i}]` is not an object"));
                };
                let field = |name: &str| -> std::result::Result<u64, String> {
                    match f.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                        Some(Json::Num(n)) => Ok(*n),
                        Some(_) => Err(format!("`{key}[{i}].{name}` is not an unsigned integer")),
                        None => Err(format!("`{key}[{i}]` missing `{name}`")),
                    }
                };
                Ok(ChunkProfile {
                    lines: field("start")? as usize..field("end")? as usize,
                    nnz: field("nnz")? as usize,
                    max_line_nnz: field("max_line_nnz")? as usize,
                    disk_bytes: field("disk_bytes")?,
                })
            })
            .collect()
    };
    Ok(ParsedManifest {
        rows: num("rows")? as usize,
        cols: num("cols")? as usize,
        nnz: num("nnz")? as usize,
        chunk_target_nnz: num("chunk_target_nnz")? as usize,
        by_column: chunks("by_column")?,
        by_row: chunks("by_row")?,
    })
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> std::result::Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b) if b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(format!(
                "unexpected byte `{}` at offset {} (only objects, arrays, strings, and \
                 unsigned integers appear in a store manifest)",
                *b as char, self.pos
            )),
            None => Err("unexpected end of manifest".into()),
        }
    }

    fn parse_object(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> std::result::Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "non-UTF8 string".to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    return Err(format!(
                        "escape sequence at offset {} (store manifests never contain them)",
                        self.pos
                    ))
                }
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| format!("number `{text}` does not fit u64"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "awb-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn clustered(n: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for c in 0..4.min(n) {
            for r in 0..10 {
                coo.push(r % n, c, (r as f32) - 4.5).unwrap();
            }
        }
        for c in 4..n {
            coo.push(c % n, c, 0.25 * c as f32).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn roundtrip_is_bit_identical_across_chunk_sizes() {
        let a = clustered(32);
        for chunk_nnz in [1, 3, 7, 1000] {
            let dir = temp_dir(&format!("rt{chunk_nnz}"));
            let store = SparseStore::write_with_chunk_nnz(&dir, &a, chunk_nnz).unwrap();
            assert_eq!(store.shape(), (32, 32));
            let back = store.read_csc().unwrap();
            assert_eq!(back, a);
            assert_eq!(
                back.values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                a.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let csr = store.read_csr().unwrap();
            assert_eq!(csr, a.to_csr());
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    impl SparseStore {
        fn shape(&self) -> (usize, usize) {
            (self.rows, self.cols)
        }
    }

    #[test]
    fn col_ranges_match_resident_slices() {
        let a = clustered(24);
        let dir = temp_dir("ranges");
        let store = SparseStore::write_with_chunk_nnz(&dir, &a, 5).unwrap();
        for range in [0..24, 0..1, 23..24, 3..17, 8..8] {
            let slice = store.read_col_range(range.clone()).unwrap();
            assert_eq!(slice, a.col_range(range.clone()), "{range:?}");
            assert_eq!(
                store.resident_bytes(range.clone()),
                slice.heap_bytes(),
                "{range:?}"
            );
        }
        for range in [0..8, 10..24, 2..3] {
            assert_eq!(
                store.read_row_range(range.clone()).unwrap(),
                a.to_csr().row_range(range)
            );
        }
        assert!(matches!(
            store.read_col_range(5..30),
            Err(StoreError::InvalidInput(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunks_tile_and_profile_the_matrix() {
        let a = clustered(24);
        let dir = temp_dir("profiles");
        let store = SparseStore::write_with_chunk_nnz(&dir, &a, 6).unwrap();
        let chunks = store.column_chunks();
        assert!(chunks.len() > 1, "expected multiple chunks");
        assert_eq!(chunks.first().unwrap().lines.start, 0);
        assert_eq!(chunks.last().unwrap().lines.end, 24);
        assert_eq!(chunks.iter().map(|c| c.nnz).sum::<usize>(), a.nnz());
        for c in chunks {
            let nnz = store.range_nnz(c.lines.clone());
            assert_eq!(nnz, c.nnz);
            let max = c.lines.clone().map(|l| a.col_nnz(l)).max().unwrap();
            assert_eq!(max, c.max_line_nnz);
            assert!(c.disk_bytes > 0);
            assert_eq!(
                c.resident_bytes(),
                a.col_range(c.lines.clone()).heap_bytes()
            );
        }
        assert!(store.column_disk_bytes() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_zero_matrices() {
        for (rows, cols) in [(0, 0), (4, 0), (0, 4), (5, 3)] {
            let dir = temp_dir(&format!("empty{rows}x{cols}"));
            let a = Csc::empty(rows, cols);
            let store = SparseStore::write(&dir, &a).unwrap();
            assert_eq!(store.read_csc().unwrap(), a);
            assert_eq!(store.read_csr().unwrap(), a.to_csr());
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn refuses_overwrite_and_zero_chunk_target() {
        let a = clustered(8);
        let dir = temp_dir("overwrite");
        SparseStore::write(&dir, &a).unwrap();
        assert!(matches!(
            SparseStore::write(&dir, &a),
            Err(StoreError::InvalidInput(_))
        ));
        assert!(matches!(
            SparseStore::write_with_chunk_nnz(temp_dir("zc"), &a, 0),
            Err(StoreError::InvalidInput(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_truncated_chunks() {
        let a = clustered(16);
        let dir = temp_dir("trunc");
        SparseStore::write_with_chunk_nnz(&dir, &a, 4).unwrap();
        let victim = dir.join("by_column").join("data").join(chunk_file(0));
        let bytes = fs::read(&victim).unwrap();
        // Cut the payload short: typed Corrupt, not a panic.
        fs::write(&victim, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        // Header-only truncation too.
        fs::write(&victim, &bytes[..10]).unwrap();
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_corrupted_payloads() {
        let a = clustered(16);
        let dir = temp_dir("flip");
        SparseStore::write_with_chunk_nnz(&dir, &a, 4).unwrap();
        let victim = dir.join("by_column").join("data").join(chunk_file(1));
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // checksum must catch a payload bit flip
        fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_manifest_nnz_mismatch() {
        let a = clustered(16);
        let dir = temp_dir("nnz");
        SparseStore::write_with_chunk_nnz(&dir, &a, 4).unwrap();
        let manifest = dir.join("manifest.json");
        let text = fs::read_to_string(&manifest).unwrap();
        // Bump the declared total nnz: chunk sums no longer reconcile.
        let bumped = text.replace(
            &format!("\"nnz\": {},", a.nnz()),
            &format!("\"nnz\": {},", a.nnz() + 1),
        );
        assert_ne!(text, bumped);
        fs::write(&manifest, bumped).unwrap();
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Manifest { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_out_of_bounds_indices() {
        let a = clustered(16);
        let dir = temp_dir("oob");
        SparseStore::write_with_chunk_nnz(&dir, &a, 4).unwrap();
        let victim = dir.join("by_column").join("indices").join(chunk_file(0));
        let raw = read_blob(&victim).unwrap();
        let mut idx = bytes_to_u32(&raw, &victim).unwrap();
        idx[0] = 1_000_000; // far past `rows`
        let bytes: Vec<u8> = idx.iter().flat_map(|i| i.to_le_bytes()).collect();
        write_blob(&victim, &bytes).unwrap();
        let err = SparseStore::open(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { ref detail, .. } if detail.contains("out of bounds")),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_non_finite_values() {
        let a = clustered(16);
        let dir = temp_dir("nan");
        SparseStore::write_with_chunk_nnz(&dir, &a, 4).unwrap();
        let victim = dir.join("by_column").join("data").join(chunk_file(0));
        let raw = read_blob(&victim).unwrap();
        let mut vals = bytes_to_f32(&raw, &victim).unwrap();
        vals[0] = f32::NAN;
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        write_blob(&victim, &bytes).unwrap();
        let err = SparseStore::open(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { ref detail, .. } if detail.contains("non-finite")),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_and_garbage_manifests() {
        let dir = temp_dir("missing");
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Manifest { .. })
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.json"), "not json at all").unwrap();
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Manifest { .. })
        ));
        fs::write(
            dir.join("manifest.json"),
            "{\"format\": \"something-else\", \"version\": 1}",
        )
        .unwrap();
        assert!(matches!(
            SparseStore::open(&dir),
            Err(StoreError::Manifest { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rle_roundtrips_and_compresses_runs() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![7],
            vec![0; 1000],
            (0..=255u8).collect(),
            (0..1000).map(|i| (i % 3) as u8).collect(),
            [vec![1u8; 200], (0..130).map(|i| i as u8).collect()].concat(),
        ];
        for raw in cases {
            let comp = rle_encode(&raw);
            assert_eq!(rle_decode(&comp, raw.len()).unwrap(), raw);
            // Worst-case bound: one control byte per 128 literals.
            assert!(comp.len() <= raw.len() + raw.len() / 128 + 1);
        }
        // A constant run compresses hard.
        assert!(rle_encode(&vec![0u8; 1000]).len() < 20);
        // Declared-length mismatches are detected.
        let comp = rle_encode(&[1, 2, 3, 4]);
        assert!(rle_decode(&comp, 3).is_none());
        assert!(rle_decode(&comp, 5).is_none());
    }

    #[test]
    fn manifest_renders_and_parses_back() {
        let chunks = vec![
            ChunkProfile {
                lines: 0..3,
                nnz: 10,
                max_line_nnz: 4,
                disk_bytes: 99,
            },
            ChunkProfile {
                lines: 3..8,
                nnz: 2,
                max_line_nnz: 1,
                disk_bytes: 17,
            },
        ];
        let text = render_manifest(9, 8, 12, 6, &[("by_column", &chunks), ("by_row", &chunks)]);
        let parsed = parse_manifest(&text).unwrap();
        assert_eq!(parsed.rows, 9);
        assert_eq!(parsed.cols, 8);
        assert_eq!(parsed.nnz, 12);
        assert_eq!(parsed.chunk_target_nnz, 6);
        assert_eq!(parsed.by_column, chunks);
        assert_eq!(parsed.by_row, chunks);
        // Unsupported version is a parse error, not a misread.
        let future = text.replace("\"version\": 1", "\"version\": 2");
        assert!(parse_manifest(&future).is_err());
    }

    #[test]
    fn plan_chunks_cover_all_lines() {
        for (ptr, target) in [
            (vec![0usize, 2, 2, 5, 9, 9, 10], 3),
            (vec![0, 0, 0, 0], 1),
            (vec![0, 100], 5),
            (vec![0], 4),
        ] {
            let chunks = plan_chunks(&ptr, target);
            let n = ptr.len() - 1;
            if n == 0 {
                assert!(chunks.is_empty());
                continue;
            }
            assert_eq!(chunks.first().unwrap().start, 0);
            assert_eq!(chunks.last().unwrap().end, n);
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
