use std::error::Error;
use std::fmt;

/// Errors produced by sparse-matrix construction and kernels.
///
/// # Example
///
/// ```
/// use awb_sparse::{DenseMatrix, SparseError};
///
/// let err = DenseMatrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]).unwrap_err();
/// assert!(matches!(err, SparseError::RaggedRows { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// Two matrices had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Shape of the left-hand operand.
        left: (usize, usize),
        /// Shape of the right-hand operand.
        right: (usize, usize),
        /// The operation that was attempted (e.g. `"spmm"`).
        op: &'static str,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// Rows supplied to a dense constructor had differing lengths.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the first row with a different length.
        row: usize,
        /// Length of that row.
        found: usize,
    },
    /// A compressed format's internal arrays were inconsistent.
    MalformedFormat(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { left, right, op } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::RaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "ragged rows: row {row} has {found} entries, expected {expected}"
            ),
            SparseError::MalformedFormat(msg) => write!(f, "malformed sparse format: {msg}"),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "spmm",
        };
        assert_eq!(e.to_string(), "dimension mismatch in spmm: 2x3 vs 4x5");
        let e = SparseError::IndexOutOfBounds {
            index: (9, 1),
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 1)"));
        let e = SparseError::RaggedRows {
            expected: 2,
            row: 1,
            found: 1,
        };
        assert!(e.to_string().contains("row 1"));
        let e = SparseError::MalformedFormat("col_ptr not monotone".into());
        assert!(e.to_string().contains("col_ptr"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
