use crate::csr::validate_compressed;
use crate::{Coo, Csr, DenseMatrix, Result};

/// Compressed-sparse-column matrix — the accelerator's native format.
///
/// The paper's Fig. 4 stores a sparse matrix as three arrays: `Val` (the
/// non-zero values in column-major order), `Row ID` (the row index of each
/// value), and `Col Ptr` (the offset of each column's first value). TDQ-2
/// streams `Val`/`Row ID` directly, which is why ultra-sparse matrices pay
/// no cost for their zeros.
///
/// # Example
///
/// The matrix of the paper's Fig. 4:
///
/// ```
/// use awb_sparse::Csc;
///
/// # fn main() -> Result<(), awb_sparse::SparseError> {
/// let m = Csc::from_parts(
///     5,
///     5,
///     vec![0, 2, 4, 5, 7, 8],
///     vec![0, 3, 1, 4, 0, 1, 4, 2],
///     vec![1.0, 3.0, 6.0, 5.0, 9.0, 2.0, 3.0, 7.0],
/// )?;
/// assert_eq!(m.nnz(), 8);
/// assert_eq!(m.col_nnz(0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csc {
    /// Builds a CSC matrix from its raw arrays (`Col Ptr`, `Row ID`, `Val`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SparseError::MalformedFormat`] if the arrays are
    /// inconsistent (see [`Csr::from_parts`] for the mirrored conditions).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        validate_compressed(cols, rows, &col_ptr, &row_idx, values.len(), "col_ptr")?;
        Ok(Csc {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// An empty `rows x cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Csc {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Fraction of entries that are non-zero.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Number of non-zeros in `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    #[inline]
    pub fn col_nnz(&self, col: usize) -> usize {
        assert!(col < self.cols, "column {col} out of bounds");
        self.col_ptr[col + 1] - self.col_ptr[col]
    }

    /// The vector of per-column non-zero counts (the per-round delivery
    /// workload when this matrix is the sparse operand: column `c` of `A`
    /// streams once per dense `B` column).
    pub fn col_nnz_counts(&self) -> Vec<usize> {
        (0..self.cols).map(|c| self.col_nnz(c)).collect()
    }

    /// Iterates over the `(row, value)` entries of `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_entries(&self, col: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(col < self.cols, "column {col} out of bounds");
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Row indices of the non-zeros in `col` (no values) — what TDQ-2's
    /// Omega network routes on.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_row_indices(&self, col: usize) -> &[u32] {
        assert!(col < self.cols, "column {col} out of bounds");
        &self.row_idx[self.col_ptr[col]..self.col_ptr[col + 1]]
    }

    /// Per-row non-zero counts (the per-PE workload under row
    /// partitioning). O(nnz).
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows];
        for &r in &self.row_idx {
            counts[r as usize] += 1;
        }
        counts
    }

    /// The raw column-pointer array (`Col Ptr`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The raw row-index array (`Row ID`).
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// The raw values array (`Val`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Heap bytes held by the three storage arrays (`Col Ptr` at
    /// `size_of::<usize>()` per entry, `Row ID` at 4, `Val` at 4) — the
    /// size-estimate input for plan-cache memory budgeting.
    pub fn heap_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }

    /// Iterates over all `(row, col, value)` triplets in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.cols).flat_map(move |c| self.col_entries(c).map(move |(r, v)| (r, c, v)))
    }

    /// Extracts the column block `range` as a standalone matrix without
    /// re-bucketing: because CSC stores entries in column-major order, a
    /// contiguous column range is a contiguous slice of `Row ID`/`Val`, so
    /// the cut is three slice copies plus a rebased `Col Ptr` — O(slice),
    /// never O(nnz of the whole matrix). This is the primitive the
    /// [`partition`](crate::partition) module shards graphs with.
    ///
    /// Row indices are preserved (the slice keeps the full row space), so
    /// `A = [A[:, 0..k] | A[:, k..cols]]` column-concatenates back exactly.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > self.cols()` or `range.start > range.end`.
    pub fn col_range(&self, range: std::ops::Range<usize>) -> Csc {
        assert!(
            range.start <= range.end && range.end <= self.cols,
            "column range {range:?} out of bounds for {} columns",
            self.cols
        );
        let lo = self.col_ptr[range.start];
        let hi = self.col_ptr[range.end];
        let col_ptr = self.col_ptr[range.start..=range.end]
            .iter()
            .map(|&p| p - lo)
            .collect();
        Csc {
            rows: self.rows,
            cols: range.len(),
            col_ptr,
            row_idx: self.row_idx[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Converts to CSR by re-bucketing entries by row.
    pub fn to_csr(&self) -> Csr {
        let mut counts = vec![0usize; self.rows + 1];
        for &r in &self.row_idx {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts.clone();
        for (r, c, v) in self.iter() {
            let p = cursor[r];
            col_idx[p] = c as u32;
            values[p] = v;
            cursor[r] += 1;
        }
        Csr::from_parts(self.rows, self.cols, counts, col_idx, values)
            .expect("re-bucketing preserves validity")
    }

    /// Converts to COO triplets.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.rows, self.cols);
        coo.reserve(self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("indices valid by construction");
        }
        coo
    }

    /// Materializes as a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact matrix of the paper's Fig. 4.
    fn fig4() -> Csc {
        Csc::from_parts(
            5,
            5,
            vec![0, 2, 4, 5, 7, 8],
            vec![0, 3, 1, 4, 0, 1, 4, 2],
            vec![1.0, 3.0, 6.0, 5.0, 9.0, 2.0, 3.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn fig4_dense_matches_paper() {
        // Paper Fig. 4 shows the dense matrix:
        // [0 6 0 9 0; 0 0 0 2 0; 3(row2?)...] — we verify via CSC semantics.
        let d = fig4().to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(3, 0), 3.0);
        assert_eq!(d.get(1, 1), 6.0);
        assert_eq!(d.get(4, 1), 5.0);
        assert_eq!(d.get(0, 2), 9.0);
        assert_eq!(d.get(1, 3), 2.0);
        assert_eq!(d.get(4, 3), 3.0);
        assert_eq!(d.get(2, 4), 7.0);
        assert_eq!(d.nnz(), 8);
    }

    #[test]
    fn col_access() {
        let m = fig4();
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(2), 1);
        assert_eq!(m.col_row_indices(3), &[1, 4]);
        let entries: Vec<_> = m.col_entries(1).collect();
        assert_eq!(entries, vec![(1, 6.0), (4, 5.0)]);
    }

    #[test]
    fn row_nnz_counts_correct() {
        let m = fig4();
        assert_eq!(m.row_nnz_counts(), vec![2, 2, 1, 1, 2]);
    }

    #[test]
    fn csr_roundtrip() {
        let m = fig4();
        assert_eq!(m.to_csr().to_csc(), m);
        assert_eq!(m.to_csr().to_dense(), m.to_dense());
    }

    #[test]
    fn coo_roundtrip() {
        let m = fig4();
        assert_eq!(m.to_coo().to_csc(), m);
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csc::from_parts(2, 2, vec![0, 0], vec![], vec![]).is_err());
        assert!(Csc::from_parts(2, 2, vec![0, 1, 1], vec![9], vec![1.0]).is_err());
        assert!(Csc::from_parts(2, 2, vec![0, 0, 0], vec![], vec![]).is_ok());
    }

    #[test]
    fn col_range_slices_without_rebuild() {
        let m = fig4();
        let left = m.col_range(0..2);
        assert_eq!(left.shape(), (5, 2));
        assert_eq!(left.nnz(), 4);
        assert_eq!(left.to_dense().get(3, 0), 3.0);
        let right = m.col_range(2..5);
        assert_eq!(right.shape(), (5, 3));
        assert_eq!(right.nnz(), 4);
        // Column j of the slice is column lo + j of the original.
        assert_eq!(right.col_row_indices(1), m.col_row_indices(3));
        // Full range is the identity; empty range is a 0-column matrix.
        assert_eq!(m.col_range(0..5), m);
        assert_eq!(m.col_range(3..3).nnz(), 0);
        assert_eq!(m.col_range(3..3).shape(), (5, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_range_rejects_out_of_bounds() {
        fig4().col_range(2..6);
    }

    #[test]
    fn empty_matrix() {
        let m = Csc::empty(4, 3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_nnz(2), 0);
        assert_eq!(m.row_nnz_counts(), vec![0; 4]);
    }
}
