use crate::rng::Pcg64;

/// Walker alias table for O(1) sampling from a discrete distribution.
///
/// Used by the Chung–Lu edge generator, where every one of the (up to tens
/// of millions of) edge endpoints is drawn proportionally to a node weight.
///
/// # Example
///
/// ```
/// use awb_datasets::AliasTable;
/// use awb_datasets::rng::Pcg64;
///
/// let table = AliasTable::new(&[1.0, 0.0, 3.0]);
/// let mut rng = Pcg64::seed_from_u64(1);
/// let s = table.sample(&mut rng);
/// assert!(s == 0 || s == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers are certainties.
        for &s in small.iter().chain(large.iter()) {
            prob[s as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1).
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 4]);
        let mut rng = Pcg64::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts = {counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let table = AliasTable::new(&[1.0, 9.0]);
        let mut rng = Pcg64::seed_from_u64(12);
        let hits1 = (0..50_000).filter(|_| table.sample(&mut rng) == 1).count();
        let frac = hits1 as f64 / 50_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn zero_weight_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = Pcg64::seed_from_u64(13);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = Pcg64::seed_from_u64(14);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        assert_eq!(table.sample(&mut rng), 0);
    }
}
