//! A small, self-contained, deterministic PCG-64 generator.
//!
//! Dataset generation must be bit-reproducible across platforms and over
//! time, so we avoid external RNG crates whose stream definitions may change
//! between versions. The implementation is the standard PCG XSL-RR 128/64
//! variant.

/// Deterministic PCG-64 (XSL-RR 128/64) pseudo-random generator.
///
/// # Example
///
/// ```
/// use awb_datasets::rng::Pcg64;
///
/// let mut a = Pcg64::seed_from_u64(7);
/// let mut b = Pcg64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64 {
    /// Creates a generator from a 64-bit seed (stream constant fixed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: (0xda3e_39cb_94b9_5bdb_u128 << 1) | 1,
        };
        rng.state = rng
            .inc
            .wrapping_add(seed as u128)
            .wrapping_mul(PCG_MULT)
            .wrapping_add(rng.inc);
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Standard-normal sample (Box–Muller; one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Poisson sample with the given mean (Knuth for small means, normal
    /// approximation above 30 for speed).
    pub fn next_poisson(&mut self, mean: f64) -> usize {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let v = mean + mean.sqrt() * self.next_gaussian();
            return v.max(0.0).round() as usize;
        }
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Pcg64::seed_from_u64(123);
        let mut b = Pcg64::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = Pcg64::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = rng.next_below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg64::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn range_usize_inclusive_exclusive() {
        let mut rng = Pcg64::seed_from_u64(5);
        for _ in 0..200 {
            let v = rng.range_usize(10, 13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Pcg64::seed_from_u64(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn poisson_mean_tracks_parameter() {
        let mut rng = Pcg64::seed_from_u64(7);
        for &lambda in &[0.5, 3.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.next_poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.1,
                "lambda = {lambda}, mean = {mean}"
            );
        }
        assert_eq!(rng.next_poisson(0.0), 0);
        assert_eq!(rng.next_poisson(-1.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::seed_from_u64(8);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }
}
