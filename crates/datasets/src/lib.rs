//! Synthetic dataset generation for the AWB-GCN reproduction.
//!
//! The paper evaluates on Cora, Citeseer, Pubmed, Nell, and Reddit. Those
//! datasets are not redistributable here, so this crate generates **seeded
//! synthetic equivalents** that match the published statistics (paper
//! Table 1): node counts, feature dimensions, densities of `A` and `X1`,
//! and — critically for workload-balancing experiments — the *shape* of the
//! per-row non-zero distribution (paper Figs. 1 and 13):
//!
//! * citation graphs (Cora/Citeseer/Pubmed) → power-law degrees,
//! * Nell → extreme clustered hubs (a few rows holding a large share of all
//!   non-zeros, adjacent in index space),
//! * Reddit → high average degree with comparatively even rows.
//!
//! All generation is deterministic given a seed (self-contained PCG-64, no
//! external RNG dependency).
//!
//! # Example
//!
//! ```
//! use awb_datasets::{DatasetSpec, GeneratedDataset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = DatasetSpec::cora().with_nodes(512);
//! let data = GeneratedDataset::generate(&spec, 42)?;
//! assert_eq!(data.adjacency.rows(), 512);
//! // Density tracks the spec within sampling noise.
//! assert!(data.adjacency.density() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
pub mod rng;
mod sample;
mod spec;

pub use generate::GeneratedDataset;
pub use sample::AliasTable;
pub use spec::{DatasetSpec, DegreeShape, PaperDataset, RowOrdering};
