use crate::rng::Pcg64;
use crate::sample::AliasTable;
use crate::spec::{DatasetSpec, DegreeShape, RowOrdering};
use awb_sparse::{Csr, DenseMatrix, SparseError};

/// A fully generated dataset: adjacency, input features, and layer weights.
///
/// Generation is deterministic given `(spec, seed)`.
///
/// # Example
///
/// ```
/// use awb_datasets::{DatasetSpec, GeneratedDataset};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = GeneratedDataset::generate(&DatasetSpec::cora().with_nodes(256), 1)?;
/// assert_eq!(data.features.rows(), 256);
/// assert_eq!(data.weights[0].shape(), (1433, 16));
/// assert_eq!(data.weights[1].shape(), (16, 7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// Raw 0/1 adjacency matrix (no self-loops; normalization adds `A + I`).
    pub adjacency: Csr,
    /// Sparse input feature matrix `X1` (`nodes × f1`).
    pub features: Csr,
    /// Dense layer weights `[W1 (f1×f2), W2 (f2×f3)]`, Xavier-initialized
    /// with a slight positive bias so that post-ReLU hidden features reach
    /// the density range the paper reports for `X2`.
    pub weights: Vec<DenseMatrix>,
}

impl GeneratedDataset {
    /// Generates a dataset from `spec` with the given `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`SparseError`] if internal matrix assembly fails (this
    /// indicates a bug in the generator rather than bad input; spec
    /// validation is handled by [`DatasetSpec`] itself).
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Result<Self, SparseError> {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0xae5b_21c4_9d0f_7e63);
        let node_weights = node_weight_sequence(spec, &mut rng);
        let adjacency = generate_adjacency(spec, &node_weights, &mut rng)?;
        let features = generate_features(spec, &mut rng)?;
        let weights = vec![
            generate_weight(spec.f1, spec.f2, 0.05, &mut rng),
            generate_weight(spec.f2, spec.f3, 0.05, &mut rng),
        ];
        Ok(GeneratedDataset {
            spec: spec.clone(),
            adjacency,
            features,
            weights,
        })
    }

    /// Builds a dataset around an externally supplied adjacency matrix
    /// (e.g. loaded from a Matrix Market file via `awb-sparse::io`),
    /// generating features and weights to the spec's statistics.
    ///
    /// The spec's `nodes` and `a_density` are overridden by the supplied
    /// matrix; feature dimensions and densities are kept.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `adjacency` is not
    /// square.
    ///
    /// # Example
    ///
    /// ```
    /// use awb_datasets::{DatasetSpec, GeneratedDataset};
    /// use awb_sparse::Coo;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut a = Coo::new(64, 64);
    /// for i in 0..63 { a.push(i, i + 1, 1.0)?; }
    /// let spec = DatasetSpec::custom("mine", 64, (32, 8, 4), 0.01, 0.2);
    /// let data = GeneratedDataset::with_adjacency(&spec, a.to_csr(), 7)?;
    /// assert_eq!(data.spec.nodes, 64);
    /// assert_eq!(data.features.rows(), 64);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_adjacency(
        spec: &DatasetSpec,
        adjacency: Csr,
        seed: u64,
    ) -> Result<Self, SparseError> {
        if adjacency.rows() != adjacency.cols() {
            return Err(SparseError::DimensionMismatch {
                left: adjacency.shape(),
                right: adjacency.shape(),
                op: "with_adjacency",
            });
        }
        let mut spec = spec.clone();
        spec.nodes = adjacency.rows();
        spec.a_density = adjacency.density();
        let mut rng = Pcg64::seed_from_u64(seed ^ 0xae5b_21c4_9d0f_7e63);
        let features = generate_features(&spec, &mut rng)?;
        let weights = vec![
            generate_weight(spec.f1, spec.f2, 0.05, &mut rng),
            generate_weight(spec.f2, spec.f3, 0.05, &mut rng),
        ];
        Ok(GeneratedDataset {
            spec,
            adjacency,
            features,
            weights,
        })
    }

    /// Achieved adjacency density (collision-deduplication makes this fall
    /// slightly below the spec target).
    pub fn a_density(&self) -> f64 {
        self.adjacency.density()
    }

    /// Achieved feature density.
    pub fn x1_density(&self) -> f64 {
        self.features.density()
    }
}

/// Expected-degree weight per node, ordered per the spec's [`RowOrdering`].
fn node_weight_sequence(spec: &DatasetSpec, rng: &mut Pcg64) -> Vec<f64> {
    let n = spec.nodes;
    let mut weights: Vec<f64> = match spec.degree_shape {
        DegreeShape::PowerLaw { alpha, max_ratio } => {
            let mut w: Vec<f64> = (0..n).map(|_| pareto(alpha, rng)).collect();
            cap_to_ratio(&mut w, max_ratio);
            w
        }
        DegreeShape::ClusteredHubs {
            hub_fraction,
            hub_mass,
            tail_alpha,
        } => {
            let n_hubs = ((n as f64 * hub_fraction).round() as usize).clamp(1, n);
            let mut w: Vec<f64> = (0..n).map(|_| pareto(tail_alpha, rng)).collect();
            // Scale the first n_hubs weights so they hold `hub_mass` of the
            // total. HubsFirst ordering keeps them adjacent.
            let tail_sum: f64 = w[n_hubs..].iter().sum();
            let target_hub_sum = tail_sum * hub_mass / (1.0 - hub_mass);
            let hub_sum: f64 = w[..n_hubs].iter().sum();
            let scale = if hub_sum > 0.0 {
                target_hub_sum / hub_sum
            } else {
                1.0
            };
            for v in &mut w[..n_hubs] {
                *v *= scale;
            }
            w
        }
        DegreeShape::Even { cv } => (0..n)
            .map(|_| (1.0 + cv * rng.next_gaussian()).max(0.05))
            .collect(),
    };
    match spec.ordering {
        RowOrdering::HubsFirst => {
            weights.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
        }
        RowOrdering::Shuffled => rng.shuffle(&mut weights),
        RowOrdering::Correlated { rho_percent } => {
            let rho = f64::from(rho_percent.min(100)) / 100.0;
            // Sort descending, then re-sort by a blend of rank and noise.
            weights.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
            let n_f = weights.len().max(1) as f64;
            let mut keyed: Vec<(f64, f64)> = weights
                .iter()
                .enumerate()
                .map(|(rank, &w)| (rho * rank as f64 / n_f + (1.0 - rho) * rng.next_f64(), w))
                .collect();
            keyed.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("keys are finite"));
            weights = keyed.into_iter().map(|(_, w)| w).collect();
        }
    }
    weights
}

/// Pareto(1, alpha) sample, capped to avoid a single node swallowing the
/// whole edge budget.
fn pareto(alpha: f64, rng: &mut Pcg64) -> f64 {
    let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    u.powf(-1.0 / (alpha - 1.0)).min(1e6)
}

/// Clamps weights to `max_ratio` times their mean (see
/// [`DegreeShape::PowerLaw`]).
fn cap_to_ratio(weights: &mut [f64], max_ratio: f64) {
    if weights.is_empty() {
        return;
    }
    let mean: f64 = weights.iter().sum::<f64>() / weights.len() as f64;
    let cap = mean * max_ratio;
    for w in weights.iter_mut() {
        if *w > cap {
            *w = cap;
        }
    }
}

/// Chung–Lu style edge sampling: both endpoints drawn from the node-weight
/// alias table (columns get a uniform admixture so that the pattern shows
/// row clustering without collapsing onto hub×hub cells).
fn generate_adjacency(
    spec: &DatasetSpec,
    node_weights: &[f64],
    rng: &mut Pcg64,
) -> Result<Csr, SparseError> {
    let n = spec.nodes;
    let target = spec.expected_a_nnz().max(n); // at least ~1 edge per node
    let row_table = AliasTable::new(node_weights);
    // Column endpoint: 60% weight-proportional (clustering), 40% uniform.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(target);
    for _ in 0..target {
        let i = row_table.sample(rng) as u32;
        let j = if rng.next_f64() < 0.6 {
            row_table.sample(rng) as u32
        } else {
            rng.next_below(n as u64) as u32
        };
        if i != j {
            pairs.push((i, j));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    csr_from_sorted_pairs(n, n, &pairs)
}

/// Builds a CSR with unit values from sorted, deduplicated (row, col) pairs.
fn csr_from_sorted_pairs(
    rows: usize,
    cols: usize,
    pairs: &[(u32, u32)],
) -> Result<Csr, SparseError> {
    let mut row_ptr = vec![0usize; rows + 1];
    for &(r, _) in pairs {
        row_ptr[r as usize + 1] += 1;
    }
    for i in 0..rows {
        row_ptr[i + 1] += row_ptr[i];
    }
    let col_idx: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();
    let values = vec![1.0f32; pairs.len()];
    Csr::from_parts(rows, cols, row_ptr, col_idx, values)
}

/// Sparse bag-of-words-like feature matrix: per-row nnz ~ Poisson(mean),
/// distinct uniform columns, positive values.
fn generate_features(spec: &DatasetSpec, rng: &mut Pcg64) -> Result<Csr, SparseError> {
    let (n, f1) = (spec.nodes, spec.f1);
    let mean = f1 as f64 * spec.x1_density;
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    // Reusable membership bitmap; touched entries cleared after each row.
    let mut used = vec![false; f1];
    let mut touched: Vec<u32> = Vec::new();
    for _ in 0..n {
        let k = rng.next_poisson(mean).min(f1);
        if k * 3 >= f1 {
            // Dense row: Bernoulli per column with p = k / f1.
            let p = k as f64 / f1 as f64;
            for c in 0..f1 {
                if rng.next_f64() < p {
                    col_idx.push(c as u32);
                    values.push(0.1 + 0.9 * rng.next_f32());
                }
            }
        } else {
            // Sparse row: rejection-sample distinct columns, then sort.
            touched.clear();
            while touched.len() < k {
                let c = rng.next_below(f1 as u64) as u32;
                if !used[c as usize] {
                    used[c as usize] = true;
                    touched.push(c);
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                used[c as usize] = false;
                col_idx.push(c);
                values.push(0.1 + 0.9 * rng.next_f32());
            }
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(n, f1, row_ptr, col_idx, values)
}

/// Xavier-uniform weights with a positive bias fraction: entries uniform in
/// `[-(1 - bias)·b, b]` with `b = sqrt(6 / (fan_in + fan_out))`.
fn generate_weight(fan_in: usize, fan_out: usize, bias: f64, rng: &mut Pcg64) -> DenseMatrix {
    let b = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let lo = -(1.0 - bias) * b;
    let mut data = Vec::with_capacity(fan_in * fan_out);
    for _ in 0..fan_in * fan_out {
        data.push((lo + (b - lo) * rng.next_f64()) as f32);
    }
    DenseMatrix::from_vec(fan_in, fan_out, data).expect("length is rows*cols by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_sparse::profile::row_nnz_stats;

    fn small(spec: DatasetSpec) -> GeneratedDataset {
        GeneratedDataset::generate(&spec, 7).expect("generation succeeds")
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = DatasetSpec::cora().with_nodes(300);
        let a = GeneratedDataset::generate(&spec, 5).unwrap();
        let b = GeneratedDataset::generate(&spec, 5).unwrap();
        assert_eq!(a.adjacency, b.adjacency);
        assert_eq!(a.features, b.features);
        assert_eq!(a.weights, b.weights);
        let c = GeneratedDataset::generate(&spec, 6).unwrap();
        assert_ne!(a.adjacency, c.adjacency);
    }

    #[test]
    fn adjacency_density_near_target() {
        let spec = DatasetSpec::cora().with_nodes(1024);
        let data = small(spec.clone());
        let target = spec.a_density;
        let got = data.a_density();
        assert!(
            (got - target).abs() / target < 0.35,
            "target {target}, got {got}"
        );
    }

    #[test]
    fn feature_density_near_target() {
        let spec = DatasetSpec::pubmed().with_nodes(512);
        let data = small(spec.clone());
        let got = data.x1_density();
        assert!(
            (got - spec.x1_density).abs() / spec.x1_density < 0.1,
            "target {}, got {got}",
            spec.x1_density
        );
    }

    #[test]
    fn no_self_loops() {
        let data = small(DatasetSpec::cora().with_nodes(256));
        for (r, c, _) in data.adjacency.iter() {
            assert_ne!(r, c);
        }
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let data = small(DatasetSpec::cora().with_nodes(2048));
        let stats = row_nnz_stats(&data.adjacency);
        assert!(
            stats.imbalance_factor > 3.0,
            "imbalance {}",
            stats.imbalance_factor
        );
        assert!(stats.gini > 0.3, "gini {}", stats.gini);
    }

    #[test]
    fn clustered_hubs_concentrate_mass_in_leading_rows() {
        let spec = DatasetSpec::nell().with_nodes(4096);
        let data = small(spec);
        let counts = data.adjacency.row_nnz_counts();
        let total: usize = counts.iter().sum();
        // Hubs are the first ~0.3% of rows under HubsFirst ordering and
        // hold ~30% of all edge endpoints; take the first 1% of rows and
        // require they hold far more than a proportionate share.
        let lead: usize = counts[..counts.len() / 100].iter().sum();
        assert!(
            lead as f64 / total as f64 > 0.20,
            "lead share {}",
            lead as f64 / total as f64
        );
    }

    #[test]
    fn even_shape_is_balanced() {
        let spec = DatasetSpec::reddit().with_nodes(4096);
        let data = small(spec);
        let stats = row_nnz_stats(&data.adjacency);
        assert!(stats.cv < 1.0, "cv {}", stats.cv);
        assert!(stats.gini < 0.45, "gini {}", stats.gini);
    }

    #[test]
    fn shuffled_ordering_spreads_hubs() {
        let spec = DatasetSpec::nell()
            .with_nodes(4096)
            .with_ordering(RowOrdering::Shuffled);
        let data = small(spec);
        let counts = data.adjacency.row_nnz_counts();
        let total: usize = counts.iter().sum();
        let lead: usize = counts[..counts.len() / 100].iter().sum();
        // With shuffling, the leading 1% of rows holds roughly 1% of mass
        // unless a hub happens to land there; allow generous slack.
        assert!(
            (lead as f64 / total as f64) < 0.30,
            "lead share {}",
            lead as f64 / total as f64
        );
    }

    #[test]
    fn hubs_first_sorts_by_degree_weight() {
        let data = small(DatasetSpec::cora().with_nodes(1024));
        let counts = data.adjacency.row_nnz_counts();
        let first_half: usize = counts[..512].iter().sum();
        let second_half: usize = counts[512..].iter().sum();
        assert!(first_half > second_half);
    }

    #[test]
    fn weights_are_bounded_and_biased() {
        let data = small(DatasetSpec::cora().with_nodes(128));
        let w1 = &data.weights[0];
        let b = (6.0 / (w1.rows() + w1.cols()) as f64).sqrt() as f32;
        let mut sum = 0.0f64;
        for &v in w1.as_slice() {
            assert!(v <= b && v >= -b);
            sum += v as f64;
        }
        // Positive bias: mean should be positive.
        assert!(sum / w1.as_slice().len() as f64 > 0.0);
    }

    #[test]
    fn feature_columns_strictly_sorted_per_row() {
        let data = small(DatasetSpec::citeseer().with_nodes(256));
        for r in 0..data.features.rows() {
            let cols: Vec<usize> = data.features.row_entries(r).map(|(c, _)| c).collect();
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "row {r} has unsorted/duplicate columns");
            }
        }
    }
}

#[cfg(test)]
mod external_adjacency_tests {
    use super::*;
    use awb_sparse::Coo;

    #[test]
    fn with_adjacency_respects_supplied_matrix() {
        let mut a = Coo::new(32, 32);
        for i in 0..31 {
            a.push(i, i + 1, 1.0).unwrap();
        }
        let spec = DatasetSpec::custom("ext", 999, (16, 4, 2), 0.5, 0.25);
        let data = GeneratedDataset::with_adjacency(&spec, a.to_csr(), 3).unwrap();
        assert_eq!(data.spec.nodes, 32); // overridden by the matrix
        assert_eq!(data.adjacency.nnz(), 31);
        assert_eq!(data.features.shape(), (32, 16));
        assert_eq!(data.weights[0].shape(), (16, 4));
    }

    #[test]
    fn with_adjacency_rejects_non_square() {
        let a = Coo::new(4, 5).to_csr();
        let spec = DatasetSpec::custom("bad", 4, (8, 4, 2), 0.1, 0.1);
        assert!(GeneratedDataset::with_adjacency(&spec, a, 1).is_err());
    }

    #[test]
    fn with_adjacency_deterministic() {
        let mut a = Coo::new(16, 16);
        a.push(0, 1, 1.0).unwrap();
        let spec = DatasetSpec::custom("det", 16, (8, 4, 2), 0.1, 0.3);
        let d1 = GeneratedDataset::with_adjacency(&spec, a.to_csr(), 9).unwrap();
        let d2 = GeneratedDataset::with_adjacency(&spec, a.to_csr(), 9).unwrap();
        assert_eq!(d1.features, d2.features);
        assert_eq!(d1.weights, d2.weights);
    }
}
